//! Contention control (the paper's headline motivation): maintenance
//! transaction size is a tuning knob that trades maintenance overhead
//! against interference with concurrent updaters.
//!
//! This example runs foreground updater threads against the same tables a
//! maintenance process is reading, in three modes:
//!
//! 1. no maintenance at all (baseline latency),
//! 2. one **atomic synchronous refresh** (Eq. 1 — the long transaction the
//!    paper complains about),
//! 3. **rolling propagation** with small steps.
//!
//! Watch the updater p99: the atomic refresh blocks updaters for its whole
//! duration; rolling steps only block them briefly.
//!
//! Run with: `cargo run --release --example contention_control`

use rolljoin::core::{
    materialize, spawn_capture_driver, spawn_rolling_driver, sync_propagate_eq1, UniformInterval,
};
use rolljoin::workload::{aggregate, int_pair_stream, run_updaters, TwoWay, UpdateMix};
use std::time::Duration;

const LOAD: usize = 30_000;
const THREADS: usize = 3;
const OPS: u64 = 400;

fn setup(name: &str) -> rolljoin::Result<TwoWay> {
    let w = TwoWay::setup(name)?;
    // Big base tables so maintenance reads take real time.
    int_pair_stream(
        w.r,
        11,
        UpdateMix {
            delete_frac: 0.0,
            update_frac: 0.0,
        },
        500,
    )
    .load(&w.engine, LOAD)?;
    int_pair_stream(
        w.s,
        12,
        UpdateMix {
            delete_frac: 0.0,
            update_frac: 0.0,
        },
        500,
    )
    .load(&w.engine, LOAD)?;
    Ok(w)
}

fn updater_streams(w: &TwoWay) -> Vec<Vec<rolljoin::workload::TableStream>> {
    (0..THREADS)
        .map(|k| {
            vec![
                int_pair_stream(w.r, 100 + k as u64, UpdateMix::default(), 500),
                int_pair_stream(w.s, 200 + k as u64, UpdateMix::default(), 500),
            ]
        })
        .collect()
}

fn main() -> rolljoin::Result<()> {
    // --- Mode 1: no maintenance --------------------------------------
    let w = setup("none")?;
    let rep = aggregate(&run_updaters(
        &w.engine,
        updater_streams(&w),
        OPS,
        Duration::from_secs(30),
        None,
    ));
    println!(
        "no maintenance    : {:>7.0} txn/s  p50 {:>8.0?}  p99 {:>8.0?}  max {:>8.0?}",
        rep.throughput(),
        rep.p50,
        rep.p99,
        rep.max
    );

    // --- Mode 2: atomic synchronous refresh (Eq. 1) -------------------
    let w = setup("sync")?;
    let ctx = w.ctx();
    let mat = materialize(&ctx)?;
    let e2 = w.engine.clone();
    let ctx2 = ctx.clone();
    let refresher = std::thread::spawn(move || {
        // Keep doing atomic full-interval refreshes while updaters run.
        let mut from = mat;
        while let Ok(out) = sync_propagate_eq1(&ctx2, from) {
            from = out.to;
            if out.rows_written == 0 && e2.current_csn() <= out.to {
                break;
            }
        }
    });
    let rep = aggregate(&run_updaters(
        &w.engine,
        updater_streams(&w),
        OPS,
        Duration::from_secs(60),
        None,
    ));
    println!(
        "atomic sync (Eq.1): {:>7.0} txn/s  p50 {:>8.0?}  p99 {:>8.0?}  max {:>8.0?}  aborts {}",
        rep.throughput(),
        rep.p50,
        rep.p99,
        rep.max,
        rep.aborts
    );
    refresher.join().ok();

    // --- Mode 3: rolling propagation, small steps ---------------------
    let w = setup("rolling")?;
    let ctx = w
        .ctx()
        .with_blocking_capture(Duration::from_millis(1), Duration::from_secs(30));
    let mat = materialize(&ctx)?;
    let capture = spawn_capture_driver(w.engine.clone(), Duration::from_millis(1), 2048);
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(UniformInterval(8)),
        Duration::from_millis(1),
    );
    let rep = aggregate(&run_updaters(
        &w.engine,
        updater_streams(&w),
        OPS,
        Duration::from_secs(60),
        None,
    ));
    println!(
        "rolling (δ=8)     : {:>7.0} txn/s  p50 {:>8.0?}  p99 {:>8.0?}  max {:>8.0?}  aborts {}",
        rep.throughput(),
        rep.p50,
        rep.p99,
        rep.max,
        rep.aborts
    );
    prop.stop()?;
    capture.stop()?;
    let s = ctx.stats.snapshot();
    println!(
        "rolling issued {} maintenance transactions while updaters ran (HWM {})",
        s.transactions,
        ctx.mv.hwm()
    );
    Ok(())
}
