//! Crash recovery: the WAL is the only durable artifact. After a "crash",
//! the engine rebuilds its catalog, table contents, indexes, and delta
//! history from the log; the persistent control table restores the view's
//! materialization time; and maintenance simply resumes.
//!
//! Run with: `cargo run --example crash_recovery`

use rolljoin::common::tup;
use rolljoin::core::{
    materialize, oracle, roll_to, MaintCtx, MaterializedView, Propagator, ViewDef,
};
use rolljoin::storage::Engine;
use rolljoin::workload::TwoWay;

fn main() -> rolljoin::Result<()> {
    // --- Before the crash -------------------------------------------------
    let w = TwoWay::setup("orders")?;
    let ctx = w.ctx();
    let mut txn = ctx.engine.begin();
    txn.insert(w.r, tup![1, 5])?;
    txn.insert(w.s, tup![5, 50])?;
    txn.commit()?;
    let mat = materialize(&ctx)?;
    for i in 0..30i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 3])?;
        txn.commit()?;
        if i % 3 == 0 {
            let mut txn = ctx.engine.begin();
            txn.insert(w.s, tup![i % 3, 100 + i])?;
            txn.commit()?;
        }
    }
    let mid = ctx.engine.current_csn();
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(mid, 8)?;
    roll_to(&ctx, mid)?;
    println!(
        "before crash: view materialized at CSN {} with {} rows",
        ctx.mv.mat_time(),
        oracle::mv_state(&ctx.engine, &ctx.mv)?.len()
    );

    // A transaction is in flight when the lights go out…
    let mut doomed = ctx.engine.begin();
    doomed.insert(w.r, tup![999, 999])?;
    let wal_image = ctx.engine.wal().snapshot_bytes();
    std::mem::forget(doomed);
    drop((w, prop, ctx));

    // --- After the crash ---------------------------------------------------
    println!(
        "\n-- crash: only the {}-byte WAL survives --\n",
        wal_image.len()
    );
    let engine = Engine::recover_from_bytes(&wal_image)?;
    let r = engine.table_id("orders_r")?;
    let s = engine.table_id("orders_s")?;
    println!(
        "recovered: {} rows in orders_r, {} in orders_s, CSN clock at {}",
        engine.table_len(r)?,
        engine.table_len(s)?,
        engine.current_csn()
    );

    // Re-attach the view: its materialization time comes back from the
    // persistent control table; the (soft) view delta re-propagates.
    let view = ViewDef::new(
        &engine,
        "orders",
        vec![r, s],
        rolljoin::relalg::JoinSpec {
            slot_schemas: vec![engine.schema(r)?, engine.schema(s)?],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )?;
    let mv = MaterializedView::reattach(&engine, view)?;
    println!("view re-attached at materialization time {}", mv.mat_time());
    assert_eq!(mv.mat_time(), mid);
    let ctx = MaintCtx::new(engine.clone(), mv);

    // The in-flight transaction vanished; the MV still matches the oracle.
    let mut check = engine.begin();
    assert_eq!(check.count_of(r, &tup![999, 999])?, 0);
    drop(check);
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, mid)?
    );
    println!("uncommitted work discarded; MV equals the oracle ✓");

    // Business as usual.
    for i in 0..10i64 {
        let mut txn = engine.begin();
        txn.insert(r, tup![100 + i, i % 3])?;
        txn.commit()?;
    }
    let end = engine.current_csn();
    let mut prop = Propagator::new(ctx.clone(), mid);
    prop.propagate_to(end, 8)?;
    roll_to(&ctx, end)?;
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, end)?
    );
    println!("maintenance resumed and rolled to CSN {end} ✓");
    Ok(())
}
