//! Point-in-time refresh (paper §1): "It is not possible to decide at
//! 8:00 pm to refresh a materialized view from its 4:00 pm state to its
//! 5:00 pm state" — with synchronous maintenance. With rolling propagation
//! it is: the view delta is timestamped, so the apply process can pick any
//! roll target up to the high-water mark, long after the fact, including
//! by wallclock via the unit-of-work table.
//!
//! Run with: `cargo run --example point_in_time`

use rolljoin::common::{tup, ColumnType, Schema};
use rolljoin::core::{
    materialize, oracle, roll_to, roll_to_wallclock, MaintCtx, MaterializedView, Propagator,
    ViewDef,
};
use rolljoin::relalg::JoinSpec;
use rolljoin::storage::Engine;

fn main() -> rolljoin::Result<()> {
    let engine = Engine::new();
    let trades = engine.create_table(
        "trades",
        Schema::new([("trade_id", ColumnType::Int), ("sym", ColumnType::Int)]),
    )?;
    let symbols = engine.create_table(
        "symbols",
        Schema::new([("sym", ColumnType::Int), ("sector", ColumnType::Str)]),
    )?;
    let view = ViewDef::new(
        &engine,
        "trades_by_sector",
        vec![trades, symbols],
        JoinSpec {
            slot_schemas: vec![engine.schema(trades)?, engine.schema(symbols)?],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )?;
    let mv = MaterializedView::register(&engine, view)?;
    let ctx = MaintCtx::new(engine.clone(), mv);

    let mut txn = engine.begin();
    txn.insert(symbols, tup![1, "tech"])?;
    txn.insert(symbols, tup![2, "energy"])?;
    txn.commit()?;
    let t0 = materialize(&ctx)?;

    // "The trading day": a stream of commits, with a wallclock marker
    // taken at "5:00 pm" (mid-stream).
    let mut five_pm_wallclock = 0u64;
    let mut five_pm_csn = 0u64;
    for i in 0..100i64 {
        let mut txn = engine.begin();
        txn.insert(trades, tup![i, 1 + (i % 2)])?;
        let csn = txn.commit()?;
        if i == 49 {
            five_pm_csn = csn;
            five_pm_wallclock = engine.now_micros();
        }
    }
    let close_csn = engine.current_csn();

    // "8:00 pm": propagation runs now, long after the interval it covers —
    // that is the asynchrony the paper contributes.
    let mut prop = Propagator::new(ctx.clone(), t0);
    prop.propagate_to(close_csn, 10)?;
    println!(
        "propagated to HWM {} (5:00 pm was CSN {five_pm_csn})",
        ctx.mv.hwm()
    );

    // Refresh the view to exactly its 5:00 pm state, decided at "8:00 pm".
    let out = roll_to_wallclock(&ctx, five_pm_wallclock)?;
    println!(
        "rolled to wallclock target → CSN {} ({} tuples changed)",
        out.rolled_to, out.tuples_changed
    );
    assert_eq!(out.rolled_to, five_pm_csn);
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, five_pm_csn)?
    );
    let n_at_5pm = oracle::mv_state(&engine, &ctx.mv)?.len();
    println!("view has {n_at_5pm} rows as of 5:00 pm ✓");

    // Later, roll the rest of the way to the close.
    roll_to(&ctx, close_csn)?;
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, close_csn)?
    );
    println!(
        "view has {} rows at the close ✓",
        oracle::mv_state(&engine, &ctx.mv)?.len()
    );

    // Rolling backward is refused — the apply process only moves forward.
    assert!(roll_to(&ctx, five_pm_csn).is_err());
    println!("backward roll correctly refused ✓");
    Ok(())
}
