//! Parallel propagation in a nutshell: run one `ComputeDelta` over a
//! 4-way chain view with a worker pool, then print the executor
//! instrumentation — worker busy time, queue depth, and the hit rates of
//! the step-scoped delta-scan and join-build caches.
//!
//! ```sh
//! cargo run --example parallel_propagation
//! ```

use rolljoin::common::tup;
use rolljoin::core::{compute_delta, materialize, PropQuery};
use rolljoin::workload::Chain;

fn main() {
    let c = Chain::setup("parallel_demo", 4).unwrap();
    let ctx = c.ctx().with_workers(4);
    let mat = materialize(&ctx).unwrap();

    // A little churn across all four chain tables.
    for i in 0..12i64 {
        let t = i as usize % 4;
        let mut txn = ctx.engine.begin();
        txn.insert(c.tables[t], tup![i % 3, i % 3]).unwrap();
        txn.commit().unwrap();
    }

    let end = ctx.engine.current_csn();
    compute_delta(&ctx, &PropQuery::all_base(4), 1, &[mat; 4], end).unwrap();

    let s = ctx.stats.snapshot();
    println!("constituent queries    {}", s.total_queries());
    println!("vd rows written        {}", s.vd_rows_written);
    println!("max queue depth        {}", s.max_queue_depth);
    println!(
        "worker busy / query wall  {:.2} ms / {:.2} ms",
        s.worker_busy_nanos as f64 / 1e6,
        s.query_wall_nanos as f64 / 1e6
    );
    println!(
        "scan cache             {} hits / {} misses ({} rows served)",
        s.scan_cache_hits, s.scan_cache_misses, s.scan_cache_rows
    );
    let b = ctx.build_cache.stats();
    println!(
        "build cache            {} hits / {} misses ({} live)",
        b.hits, b.misses, b.entries
    );
}
