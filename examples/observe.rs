//! Observability tour + smoke checker: run a rolling propagation under
//! `ObsConfig::Full`, then verify the three exported artifacts — a
//! Chrome-loadable span trace showing the compensation recursion tree, a
//! Prometheus snapshot whose `propagation_lag` / `view_staleness` gauges
//! drop to 0 after a quiesced roll, and a journal with one entry per
//! propagation step.
//!
//! Run with: `cargo run --release --example observe`
//!
//! Artifacts land in `target/observe/` (`trace.json` loads in
//! `chrome://tracing` / Perfetto).

use rolljoin::core::{materialize, oracle, roll_to, ObsConfig, RollingPropagator, UniformInterval};
use rolljoin::workload::{int_pair_stream, TwoWay, UpdateMix};

fn main() -> rolljoin::Result<()> {
    // 1. A two-way join view with full observability enabled.
    let w = TwoWay::setup("obs_demo")?;
    let ctx = w.ctx().with_obs_config(ObsConfig::Full);

    let load = UpdateMix {
        delete_frac: 0.0,
        update_frac: 0.0,
    };
    int_pair_stream(w.r, 1, load, 64).load(&w.engine, 200)?;
    int_pair_stream(w.s, 2, load, 64).load(&w.engine, 200)?;
    let t0 = materialize(&ctx)?;

    // 2. Interleave updater churn with single-relation rolling steps so the
    //    forward frontiers diverge and compensation queries actually fire.
    let churn = UpdateMix {
        delete_frac: 0.25,
        update_frac: 0.25,
    };
    let mut sr = int_pair_stream(w.r, 7, churn, 64);
    let mut ss = int_pair_stream(w.s, 8, churn, 64);
    let mut roller = RollingPropagator::new(ctx.clone(), t0);
    let mut policy = UniformInterval(4);
    const ROUNDS: usize = 12;
    for _ in 0..ROUNDS {
        for _ in 0..6 {
            sr.step(&w.engine)?;
            ss.step(&w.engine)?;
        }
        roller.step(&mut policy)?;
    }

    // 3. Quiesce: catch capture up, drain propagation to the last commit,
    //    then roll the materialized view all the way to the HWM.
    w.engine.capture_catch_up()?;
    let now = w.engine.current_csn();
    // Propagation transactions commit too, so the drained HWM lands at or
    // past `now` — wherever the database quiesced.
    let hwm = roller.drain_to(now, &mut policy)?;
    assert!(hwm >= now, "drain_to must reach the last pre-drain commit");
    roll_to(&ctx, hwm)?;
    assert_eq!(
        oracle::mv_state(&w.engine, &ctx.mv)?,
        oracle::view_at(&w.engine, &ctx.mv.view, hwm)?,
        "materialized view must match the oracle at the HWM"
    );

    // 4. Export the three artifacts.
    let trace = ctx.obs.spans.chrome_trace_json();
    let prom = ctx.prometheus()?;
    let journal = ctx.obs.journal.json();
    let dir = std::path::Path::new("target/observe");
    std::fs::create_dir_all(dir).expect("create target/observe");
    std::fs::write(dir.join("trace.json"), &trace).expect("write trace.json");
    std::fs::write(dir.join("metrics.prom"), &prom).expect("write metrics.prom");
    std::fs::write(dir.join("journal.json"), &journal).expect("write journal.json");

    // 5. Checker — trace: structurally balanced JSON, and every
    //    compensation query span hangs off a parent (the recursion tree).
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert!(trace.starts_with("{\"displayTimeUnit\""));
    assert!(trace.trim_end().ends_with("]}"), "trace array must close");
    let spans = ctx.obs.spans.finished();
    let comp: Vec<_> = spans.iter().filter(|s| s.name == "comp").collect();
    assert!(!comp.is_empty(), "expected compensation query spans");
    for s in &comp {
        assert_ne!(s.parent, 0, "comp span {} must have a parent", s.id);
        let depth = s.args.iter().find(|(k, _)| *k == "depth").map(|(_, v)| *v);
        assert!(depth >= Some(1), "comp span {} must sit at depth ≥ 1", s.id);
    }
    assert!(spans.iter().any(|s| s.name == "rolling_step"));
    assert!(spans.iter().any(|s| s.name == "roll_to"));

    // 6. Checker — metrics: both headline gauges are 0 once quiesced and
    //    rolled, and the comp-query counter matches the trace.
    assert!(
        prom.contains("rolljoin_propagation_lag_csn 0\n"),
        "propagation lag must be 0 after a drained quiesce"
    );
    assert!(
        prom.contains("rolljoin_view_staleness_csn 0\n"),
        "view staleness must be 0 after roll_to(hwm)"
    );
    assert!(prom.contains("rolljoin_queries_total{kind=\"comp\"}"));
    assert!(prom.contains("rolljoin_lock_wait_us"));

    // 7. Checker — journal: one entry per rolling step (incl. empty-delta
    //    skips during the drain) plus the final apply.
    let entries = ctx.obs.journal.entries();
    let rolling = entries.iter().filter(|e| e.kind == "rolling").count();
    assert!(
        rolling >= ROUNDS,
        "expected ≥ {ROUNDS} rolling journal entries, got {rolling}"
    );
    assert!(entries.iter().any(|e| e.kind == "apply"));

    println!(
        "observe: {} spans ({} comp), {} journal entries, gauges at 0 — artifacts in target/observe/",
        spans.len(),
        comp.len(),
        entries.len()
    );
    println!("\nslowest spans:\n{}", ctx.obs.spans.format_top_spans(8));
    Ok(())
}
