//! The star-schema scenario that motivates rolling propagation (paper
//! §3.4): a hot fact table and cold dimension tables. Per-relation
//! propagation intervals let the dimensions be swept in a few wide strides
//! while the fact table is processed in many small transactions — compare
//! the query/row counts against uniform-interval `Propagate`.
//!
//! Run with: `cargo run --release --example star_schema`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolljoin::common::tup;
use rolljoin::core::{
    materialize, oracle, roll_to, PerRelationInterval, Propagator, RollingPropagator,
    UniformInterval,
};
use rolljoin::workload::Star;

const FACTS: i64 = 2_000;
const DIM_TOUCHES: i64 = 4; // rare dimension updates

fn drive_updates(star: &Star, seed: u64) -> rolljoin::Result<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = star.dims.len();
    let mut last = 0;
    for i in 0..FACTS {
        let mut txn = star.engine.begin();
        let mut vals: Vec<rolljoin::Value> = (0..d)
            .map(|_| rolljoin::Value::Int(rng.gen_range(0..star.dim_size as i64)))
            .collect();
        vals.push(rolljoin::Value::Int(i));
        txn.insert(star.fact, rolljoin::Tuple::from(vals))?;
        last = txn.commit()?;
        // A handful of rare dimension changes, spread through the run.
        if i % (FACTS / DIM_TOUCHES) == FACTS / DIM_TOUCHES - 1 {
            let dim = star.dims[rng.gen_range(0..d)];
            let pk = rng.gen_range(0..star.dim_size as i64);
            let mut txn = star.engine.begin();
            // Update = delete + insert with a new attr value.
            txn.delete_one(dim, &tup![pk, pk * 10]).ok();
            txn.insert(dim, tup![pk, pk * 10])?;
            last = txn.commit()?;
        }
    }
    Ok(last)
}

fn main() -> rolljoin::Result<()> {
    println!("== uniform intervals (Propagate, Fig. 5) ==");
    {
        let star = Star::setup("star_uni", 2, 100)?;
        let ctx = star.ctx();
        let mat = materialize(&ctx)?;
        let end = drive_updates(&star, 7)?;
        let mut prop = Propagator::new(ctx.clone(), mat);
        prop.propagate_to(end, 50)?; // every relation steps in 50-CSN strides
        let s = ctx.stats.snapshot();
        println!(
            "queries: {} fwd + {} comp; rows read: {} base + {} delta; vd rows: {}",
            s.forward_queries,
            s.comp_queries,
            s.base_rows_read,
            s.delta_rows_read,
            s.vd_rows_written
        );
        roll_to(&ctx, ctx.mv.hwm().min(end))?;
        assert_eq!(
            oracle::mv_state(&star.engine, &ctx.mv)?,
            oracle::view_at(&star.engine, &ctx.mv.view, ctx.mv.mat_time())?
        );
    }

    println!("\n== per-relation intervals (RollingPropagate, Fig. 10) ==");
    {
        let star = Star::setup("star_roll", 2, 100)?;
        let ctx = star.ctx();
        let mat = materialize(&ctx)?;
        let end = drive_updates(&star, 7)?;
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        // Hot fact: 50-CSN strides. Cold dimensions: sweep everything in
        // a couple of giant strides.
        let mut policy = PerRelationInterval(vec![50, 2 * FACTS as u64, 2 * FACTS as u64]);
        rp.drain_to(end, &mut policy)?;
        let s = ctx.stats.snapshot();
        println!(
            "queries: {} fwd + {} comp; rows read: {} base + {} delta; vd rows: {}",
            s.forward_queries,
            s.comp_queries,
            s.base_rows_read,
            s.delta_rows_read,
            s.vd_rows_written
        );
        roll_to(&ctx, end)?;
        assert_eq!(
            oracle::mv_state(&star.engine, &ctx.mv)?,
            oracle::view_at(&star.engine, &ctx.mv.view, end)?
        );
        println!("rolled view matches oracle ✓");
    }

    println!("\n== degenerate rolling (uniform policy) for reference ==");
    {
        let star = Star::setup("star_rolluni", 2, 100)?;
        let ctx = star.ctx();
        let mat = materialize(&ctx)?;
        let end = drive_updates(&star, 7)?;
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        rp.drain_to(end, &mut UniformInterval(50))?;
        let s = ctx.stats.snapshot();
        println!(
            "queries: {} fwd + {} comp; rows read: {} base + {} delta; vd rows: {}",
            s.forward_queries,
            s.comp_queries,
            s.base_rows_read,
            s.delta_rows_read,
            s.vd_rows_written
        );
    }
    Ok(())
}
