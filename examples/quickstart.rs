//! Quickstart: create a join view, update its base tables, propagate the
//! view delta asynchronously, and roll the materialized view to a chosen
//! point in time.
//!
//! Run with: `cargo run --example quickstart`

use rolljoin::common::{tup, ColumnType, Schema};
use rolljoin::core::{
    materialize, oracle, roll_to, MaintCtx, MaterializedView, Propagator, ViewDef,
};
use rolljoin::relalg::JoinSpec;
use rolljoin::storage::Engine;

fn main() -> rolljoin::Result<()> {
    // 1. An embedded engine with two base tables.
    let engine = Engine::new();
    let orders = engine.create_table(
        "orders",
        Schema::new([("order_id", ColumnType::Int), ("cust_id", ColumnType::Int)]),
    )?;
    let customers = engine.create_table(
        "customers",
        Schema::new([("cust_id", ColumnType::Int), ("region", ColumnType::Str)]),
    )?;

    // 2. A select-project-join view:
    //    SELECT o.order_id, c.region FROM orders o JOIN customers c USING (cust_id)
    let view = ViewDef::new(
        &engine,
        "orders_by_region",
        vec![orders, customers],
        JoinSpec {
            slot_schemas: vec![engine.schema(orders)?, engine.schema(customers)?],
            equi: vec![(1, 2)], // orders.cust_id = customers.cust_id
            filter: None,
            projection: vec![0, 3], // (order_id, region)
        },
    )?;
    let mv = MaterializedView::register(&engine, view)?;
    let ctx = MaintCtx::new(engine.clone(), mv);

    // 3. Load some data and materialize the view.
    let mut txn = engine.begin();
    txn.insert(customers, tup![1, "east"])?;
    txn.insert(customers, tup![2, "west"])?;
    txn.insert(orders, tup![100, 1])?;
    txn.commit()?;
    let t0 = materialize(&ctx)?;
    println!(
        "materialized at CSN {t0}: {:?}",
        oracle::mv_state(&engine, &ctx.mv)?
    );

    // 4. The database keeps evolving…
    let mut txn = engine.begin();
    txn.insert(orders, tup![101, 2])?;
    let t1 = txn.commit()?;
    let mut txn = engine.begin();
    txn.insert(orders, tup![102, 1])?;
    txn.delete_one(orders, &tup![100, 1])?;
    let t2 = txn.commit()?;
    println!("updates committed at CSNs {t1} and {t2}");

    // 5. …and propagation runs *afterwards*, in small asynchronous steps.
    //    No snapshot of the old base tables is ever needed.
    let mut prop = Propagator::new(ctx.clone(), t0);
    let hwm = prop.step_available(1)?; // one-CSN-wide propagation steps
    println!("view delta propagated; high-water mark = {hwm}");

    // 6. Point-in-time refresh: roll the view to t1 — *between* two
    //    propagation boundaries — then to the high-water mark.
    roll_to(&ctx, t1)?;
    println!("rolled to {t1}: {:?}", oracle::mv_state(&engine, &ctx.mv)?);
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, t1)?
    );

    roll_to(&ctx, hwm)?;
    println!("rolled to {hwm}: {:?}", oracle::mv_state(&engine, &ctx.mv)?);
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv)?,
        oracle::view_at(&engine, &ctx.mv.view, hwm)?
    );
    println!("materialized view matches the oracle at both stops ✓");
    Ok(())
}
