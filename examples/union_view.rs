//! Union views — the paper's §2 extension: "rolling propagation … can be
//! extended easily to accommodate views involving union". Each SPJ branch
//! runs its own propagator (with its own interval tuning) into a shared
//! view delta table; point-in-time refresh works to the minimum branch
//! high-water mark.
//!
//! Run with: `cargo run --example union_view`

use rolljoin::common::{tup, ColumnType, Schema};
use rolljoin::core::{RollingPropagator, TargetRows, UniformInterval, UnionView, ViewDef};
use rolljoin::relalg::JoinSpec;
use rolljoin::storage::Engine;

fn main() -> rolljoin::Result<()> {
    let engine = Engine::new();
    // Two regional order feeds with identical shapes.
    let mk = |n: &str| {
        engine.create_table(
            n,
            Schema::new([("k", ColumnType::Int), ("v", ColumnType::Int)]),
        )
    };
    let (east_o, east_c) = (mk("east_orders")?, mk("east_cust")?);
    let (west_o, west_c) = (mk("west_orders")?, mk("west_cust")?);

    let branch = |name: &str, o, c| {
        ViewDef::new(
            &engine,
            name,
            vec![o, c],
            JoinSpec {
                slot_schemas: vec![engine.schema(o).unwrap(), engine.schema(c).unwrap()],
                equi: vec![(1, 2)],
                filter: None,
                projection: vec![0, 3],
            },
        )
    };
    let union = UnionView::register(
        &engine,
        "all_orders",
        vec![
            branch("east", east_o, east_c)?,
            branch("west", west_o, west_c)?,
        ],
    )?;

    // Load + materialize.
    let mut txn = engine.begin();
    for i in 0..5i64 {
        txn.insert(east_c, tup![i, 100 + i])?;
        txn.insert(west_c, tup![i, 200 + i])?;
    }
    txn.commit()?;
    let mat = union.materialize(&engine)?;
    println!("union materialized at CSN {mat}");

    // East is hot, west is cold.
    for i in 0..50i64 {
        let mut txn = engine.begin();
        txn.insert(east_o, tup![i, i % 5])?;
        txn.commit()?;
        if i % 10 == 0 {
            let mut txn = engine.begin();
            txn.insert(west_o, tup![i, i % 5])?;
            txn.commit()?;
        }
    }
    let end = engine.current_csn();

    // One propagator per branch, tuned independently.
    let mut east = RollingPropagator::new(union.branch_ctx(&engine, 0), mat);
    let mut west = RollingPropagator::new(union.branch_ctx(&engine, 1), mat);
    east.drain_to(end, &mut TargetRows { target_rows: 8 })?;
    println!(
        "east branch propagated (hwm {}); union hwm still {} — west lags",
        union.branches[0].hwm(),
        union.hwm()
    );
    west.drain_to(end, &mut UniformInterval(100))?;
    println!("west branch propagated; union hwm {}", union.hwm());

    // Roll the union and verify against the per-branch oracles.
    union.roll_to(&engine, end)?;
    engine.capture_catch_up()?;
    let got = union.mv_state(&engine)?;
    let want = union.oracle_at(&engine, end)?;
    assert_eq!(got, want);
    println!(
        "union rolled to {end}: {} rows, matches the branch-union oracle ✓",
        got.len()
    );
    Ok(())
}
