//! The [`Strategy`] trait and the generator implementations the test
//! suite uses: integer ranges, `Just`, mapped strategies, weighted
//! unions, tuples, and a character-class regex string strategy.

use crate::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// yields a concrete value directly.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

/// Types with a canonical strategy, targeted by [`any`].
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<u64>()`, …).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-width strategy for a primitive, created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

impl<T> Default for AnyPrim<T> {
    fn default() -> Self {
        AnyPrim(std::marker::PhantomData)
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, mixing magnitudes; avoids NaN/inf which
        // the real crate also skips by default.
        let mag = match rng.gen_range(0u8..4) {
            0 => 0.0,
            1 => rng.gen::<f64>(),
            2 => rng.gen::<f64>() * 1e6,
            _ => rng.gen::<f64>() * 1e-6,
        };
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

/// Type-erased strategy, for heterogeneous [`Union`] arms.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Box a strategy for use in [`union`] / `prop_oneof!`.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Weighted choice among strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

/// Build a [`Union`]; used by `prop_oneof!`.
pub fn union<T: Debug>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
    let total = arms.iter().map(|(w, _)| *w).sum();
    assert!(total > 0, "prop_oneof! needs at least one positive weight");
    Union { arms, total }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Regex string strategy for the `"[class]{m,n}"` subset.
///
/// Real proptest interprets `&str` strategies as full regexes; the test
/// suite only uses a single character class with a `{m,n}` repetition, so
/// that is what this parses. Unsupported patterns panic at strategy
/// construction (i.e. on first generate), loudly, rather than silently
/// generating wrong data.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[class]{m,n}` into (alphabet, m, n); `None` if unsupported.
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = find_unescaped(rest, ']')?;
    let class = &rest[..close];
    let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }

    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let c = if c == '\\' { it.next()? } else { c };
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next(); // consume '-'
            match ahead.peek() {
                // `a-z` range (a literal `-` escaped or trailing is handled below).
                Some(&end) if end != ']' => {
                    it = ahead;
                    let end = if end == '\\' {
                        it.next();
                        it.next()?
                    } else {
                        it.next()?
                    };
                    if (c as u32) > (end as u32) {
                        return None;
                    }
                    chars.extend((c as u32..=end as u32).filter_map(char::from_u32));
                    continue;
                }
                // Trailing `-` is a literal.
                None => {
                    chars.push(c);
                    chars.push('-');
                    it = ahead;
                    continue;
                }
                _ => {}
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == target {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(11)
    }

    #[test]
    fn regex_class_generates_only_class_chars() {
        let pat = "[a-zA-Z0-9 _\\-]{0,24}";
        let mut r = rng();
        for _ in 0..500 {
            let s = pat.generate(&mut r);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = union(vec![(9, boxed(Just(true))), (1, boxed(Just(false)))]);
        let mut r = rng();
        let hits = (0..1000).filter(|_| u.generate(&mut r)).count();
        assert!((800..1000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0i64..10, 0i64..10).prop_map(|(a, b)| a + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((0..19).contains(&v));
        }
    }
}
