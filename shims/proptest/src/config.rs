//! Runner configuration.

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // on the single-core CI box while still exploring broadly.
        // Override per-test with `ProptestConfig::with_cases`, or globally
        // with the PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}
