//! Property-failure reporting.

use std::fmt;

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; message explains why.
    Fail(String),
    /// The generated inputs were unusable; case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
