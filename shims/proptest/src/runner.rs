//! The case-loop driver behind the `proptest!` macro.

use crate::{ProptestConfig, TestRng};
use rand::SeedableRng;

/// FNV-1a, for deriving a stable per-test seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cases` instantiations of a property. `f` returns `Err(report)` on
/// failure; the report already contains the failing inputs.
///
/// Seeds are a pure function of the test name and case number, so any
/// failure reproduces exactly by re-running the same test binary.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let base = fnv1a(name);
    for case in 0..cfg.cases {
        let seed = base
            .wrapping_add(case as u64)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(report) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{} (seed {seed:#x}):\n{report}",
                cfg.cases
            );
        }
    }
}
