//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::{AnyPrim, Arbitrary, Strategy};
use crate::TestRng;
use rand::Rng;

/// An opaque index into a collection whose size is unknown at generation
/// time; resolved against a concrete size with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Resolve against a collection of `size` elements. Panics on 0,
    /// matching real proptest.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        self.0 % size
    }
}

impl Strategy for AnyPrim<Index> {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.gen::<usize>())
    }
}

impl Arbitrary for Index {
    type Strategy = AnyPrim<Index>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim::default()
    }
}
