//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the slice of proptest the test suite uses: the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_oneof!` macros, `any`,
//! `Just`, `Strategy::prop_map`, `prop::collection::vec`,
//! `prop::sample::Index`, and a character-class regex string strategy.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! - **No shrinking.** A failing case reports the case number and the
//!   `Debug` of every generated input instead of a minimized example.
//! - **Deterministic seeds.** Case seeds derive from the test name, so a
//!   failure reproduces exactly on re-run (no `proptest-regressions`
//!   files are read or written).
//! - Regex strategies support the single-character-class form actually
//!   used (`"[class]{m,n}"`) and panic on anything fancier.

pub mod collection;
pub mod sample;
pub mod strategy;

mod config;
mod error;
pub mod runner;

pub use config::ProptestConfig;
pub use error::TestCaseError;
pub use strategy::{any, Arbitrary, Just, Strategy};

/// The RNG handed to strategies; a deterministic xoshiro generator.
pub type TestRng = rand::rngs::StdRng;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property; failure reports the generated inputs rather
/// than panicking, so the runner can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::runner::run(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __out: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __out.map_err(|e| format!("{e}\nfailing inputs:\n{__inputs}"))
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
