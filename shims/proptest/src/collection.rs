//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec size range");
        SizeRange { lo, hi }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generate a `Vec` of values from `elem`, sized by `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(0i64..5, 2..6);
        let mut r = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
