//! Offline drop-in subset of the `crossbeam` API.
//!
//! Only [`channel`] is provided — a multi-producer multi-consumer FIFO
//! channel with the crossbeam semantics the workspace relies on: cloneable
//! senders *and* receivers, disconnection when the last sender (or last
//! receiver) drops, and blocking `recv`. Backed by a `Mutex<VecDeque>` +
//! `Condvar`; fine for the coarse work-distribution use here, where each
//! queue item is an entire maintenance transaction.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cond: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Create a "bounded" channel. The bound is advisory in this shim
    /// (sends never block); capacity is used only as an initial allocation.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = unbounded();
        s.lock_state().queue.reserve(cap);
        (s, r)
    }

    impl<T> Sender<T> {
        fn lock_state(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Enqueue `t`, failing if every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.lock_state();
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.queue.push_back(t);
            drop(st);
            self.inner.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.lock_state().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.lock_state();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn lock_state(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Dequeue, blocking while the channel is empty and senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.lock_state();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.lock_state();
            match st.queue.pop_front() {
                Some(t) => Ok(t),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.lock_state().queue.len()
        }

        /// True iff no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.lock_state().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.lock_state().receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_fan_out_fan_in() {
            let (tx, rx) = unbounded::<u32>();
            let (otx, orx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                let otx = otx.clone();
                handles.push(thread::spawn(move || {
                    for v in rx.iter() {
                        otx.send(v * 2).unwrap();
                    }
                }));
            }
            drop((rx, otx));
            for v in 0..100 {
                tx.send(v).unwrap();
            }
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<u32> = orx.iter().collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..100).map(|v| v * 2).collect();
            assert_eq!(got, want);
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
