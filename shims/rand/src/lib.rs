//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! Provides exactly what the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, `Rng::gen::<f64>()` (and the
//! other primitive `Standard` distributions), and `gen_bool`. The
//! generator is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast, and of adequate quality for workload generation and tests.
//! Stream values differ from the real `rand` crate; nothing in the
//! workspace depends on specific streams, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types sampleable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Uniform in `[0, span)` via Lemire's widening-multiply method
/// (single-pass, negligible bias repaired by rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Mirrors `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let w = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits} not ~2500");
    }
}
