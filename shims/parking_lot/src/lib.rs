//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! `Mutex`, `RwLock`, and `Condvar::wait_until`. Semantics follow
//! parking_lot, not std: no lock poisoning — a panic while holding a lock
//! simply releases it (poison errors from std are unwrapped into their
//! inner guards).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait_until`] can take
/// the guard by value (as std requires) and put it back, while presenting
/// parking_lot's `&mut guard` signature.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True iff the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`] / [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let dur = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .0
            .wait_timeout(g, dur)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            let timed_out = cv
                .wait_until(&mut g, Instant::now() + Duration::from_secs(5))
                .timed_out();
            assert!(!timed_out, "worker should notify well within 5s");
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
