//! Offline drop-in subset of the `criterion` API.
//!
//! Provides the structural API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `Bencher::iter` /
//! `iter_batched` — with a deliberately simple measurement loop: a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, reporting min/median/mean per iteration (and
//! throughput when set). No plotting, no saved baselines, no statistics
//! beyond that; this shim exists so `cargo bench` runs offline, not to
//! replace criterion's analysis.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are grouped (advisory in this shim: every batch is
/// one iteration, which matches `PerIteration` — the only variant the
/// workspace uses with setup costs worth isolating).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: batching would be allowed.
    SmallInput,
    /// Large input: prefer fewer iterations per batch.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards extra args; ignore flags
        // (e.g. `--bench` which cargo itself appends).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Re-read CLI configuration (already applied by `default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, None, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        report(id, &b.samples, throughput);
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        let (n, t) = (self.sample_size, self.throughput);
        self.c.run_one(&id, n, t, f);
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so one sample
        // costs ~2ms (bounds total runtime on slow benches).
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Time `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64().max(1e-12))
        }
        Throughput::Bytes(n) => format!("  {:.0} B/s", n as f64 / median.as_secs_f64().max(1e-12)),
    });
    println!(
        "{id:<50} min {min:>10.3?}  median {median:>10.3?}  mean {mean:>10.3?}{}",
        rate.unwrap_or_default()
    );
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_applies_filter() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            sample_size: 3,
        };
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.sample_size(2).throughput(Throughput::Elements(1));
        g.bench_function("skipped", |b| b.iter(|| ran = true));
        g.finish();
        assert!(!ran);
    }
}
