//! `rolljoin` — asynchronous incremental view maintenance via rolling join
//! propagation, a from-scratch Rust reproduction of Salem, Beyer, Lindsay &
//! Cochrane, *"How To Roll a Join: Asynchronous Incremental View
//! Maintenance"*, SIGMOD 2000.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`common`] — values, tuples, schemas, commit-sequence-number time.
//! * [`storage`] — the embedded multiset storage engine: slotted pages, WAL,
//!   strict-2PL transactions, asynchronous log capture (the DPropR
//!   analogue), delta stores, unit-of-work table.
//! * [`relalg`] — Volcano-style operators and the propagation-query executor
//!   (min-timestamp / product-count join semantics, net-effect `φ`).
//! * [`core`] — the paper's algorithms: `ComputeDelta` (Fig. 4), `Propagate`
//!   (Fig. 5), `RollingPropagate` (Fig. 10), synchronous baselines
//!   (Eqs. 1–2), the apply process with point-in-time refresh, interval
//!   policies, background drivers, and the summary-delta aggregation
//!   extension.
//! * [`workload`] — seeded workload generators and a concurrent scenario
//!   runner used by the experiment harness.
//! * [`obs`] — the observability layer: span tracing for the propagation
//!   recursion (Chrome `trace_event` export), a metrics registry with
//!   `propagation_lag` / `view_staleness` gauges (Prometheus text + JSON
//!   exporters), and an append-only per-interval propagation journal.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction inventory.

pub use rolljoin_common as common;
pub use rolljoin_core as core;
pub use rolljoin_obs as obs;
pub use rolljoin_relalg as relalg;
pub use rolljoin_storage as storage;
pub use rolljoin_workload as workload;

pub use rolljoin_common::{
    ColumnType, Csn, DeltaRow, Error, Result, Schema, TableId, TimeInterval, Tuple, TxnId, Value,
};
