#!/usr/bin/env bash
# Local CI: everything a reviewer runs before trusting a change.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== observability smoke (example + self-checker) =="
cargo run --release --example observe

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== observability overhead bench =="
cargo bench -p rolljoin-bench --bench obs_overhead

echo "== docs =="
cargo doc --no-deps --workspace

echo "CI OK"
