//! Property tests for the storage substrate: codec round-trips, WAL
//! record round-trips and recovery, slotted-page behavior under arbitrary
//! insert/delete sequences, and delta-store range consistency.

use proptest::prelude::*;
use rolljoin::common::{TableId, Tuple, TxnId, Value};
use rolljoin::storage::{Wal, WalRecord};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-]{0,24}".prop_map(|s| Value::str(&s)),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Tuple::from)
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        any::<u64>().prop_map(|t| WalRecord::Begin { txn: TxnId(t) }),
        (any::<u64>(), any::<u32>(), arb_tuple()).prop_map(|(t, tb, tuple)| WalRecord::Insert {
            txn: TxnId(t),
            table: TableId(tb),
            tuple,
        }),
        (any::<u64>(), any::<u32>(), arb_tuple()).prop_map(|(t, tb, tuple)| WalRecord::Delete {
            txn: TxnId(t),
            table: TableId(tb),
            tuple,
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(t, c, w)| WalRecord::Commit {
            txn: TxnId(t),
            csn: c,
            wallclock_micros: w,
        }),
        any::<u64>().prop_map(|t| WalRecord::Abort { txn: TxnId(t) }),
    ]
}

proptest! {
    /// Tuple codec: encode∘decode = id, for arbitrary value mixes
    /// (including NaN floats and empty strings).
    #[test]
    fn tuple_codec_round_trip(t in arb_tuple()) {
        let enc = rolljoin::storage::codec::encode_tuple(&t);
        let dec = rolljoin::storage::codec::decode_tuple(&enc).unwrap();
        prop_assert_eq!(dec, t);
    }

    /// WAL records round-trip through their binary form.
    #[test]
    fn wal_record_round_trip(r in arb_record()) {
        prop_assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
    }

    /// Recovery of any log image truncated at any byte boundary yields a
    /// prefix of the records, never an error or panic.
    #[test]
    fn wal_recovery_of_torn_logs(
        records in prop::collection::vec(arb_record(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let wal = Wal::new();
        for r in &records {
            wal.append(r);
        }
        let bytes = wal.snapshot_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let recovered = Wal::recover(&bytes[..cut]).unwrap();
        prop_assert!(recovered.len() <= records.len());
        prop_assert_eq!(&records[..recovered.len()], &recovered[..]);
    }

    /// Slotted pages under arbitrary insert/delete interleavings behave
    /// like a map from issued slots to payloads.
    #[test]
    fn page_model_check(ops in prop::collection::vec(
        prop_oneof![
            4 => (1usize..300).prop_map(|n| (true, n)),
            1 => (0usize..40).prop_map(|n| (false, n)),
        ],
        0..120,
    )) {
        use rolljoin::storage::page::Page;
        use std::collections::HashMap;
        let mut page = Page::new();
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut counter = 0u8;
        for (is_insert, n) in ops {
            if is_insert {
                counter = counter.wrapping_add(1);
                let payload = vec![counter; n];
                if let Some(slot) = page.insert(&payload) {
                    model.insert(slot, payload);
                }
            } else if let Some(&slot) = model.keys().nth(n % model.len().max(1)) {
                page.delete(slot).unwrap();
                model.remove(&slot);
            }
            // Invariants after every op.
            prop_assert_eq!(page.live_count() as usize, model.len());
            for (slot, payload) in &model {
                prop_assert_eq!(page.get(*slot).unwrap(), &payload[..]);
            }
        }
    }

    /// Delta-store ranges partition: count(0,t] = count(0,s] + count(s,t].
    #[test]
    fn delta_range_partition(
        commits in prop::collection::vec(0i64..100, 1..30),
        split in any::<prop::sample::Index>(),
    ) {
        use rolljoin::storage::DeltaStore;
        use rolljoin::common::{tup, TimeInterval};
        let d = DeltaStore::new(TableId(1));
        for (i, v) in commits.iter().enumerate() {
            d.append_commit(i as u64 + 1, [(1, tup![*v])]);
        }
        let t = commits.len() as u64;
        let s = split.index(t as usize + 1) as u64;
        let whole = d.count_in(TimeInterval::new(0, t));
        let left = d.count_in(TimeInterval::new(0, s));
        let right = d.count_in(TimeInterval::new(s, t));
        prop_assert_eq!(whole, left + right);
        // And reconstruct_at is consistent with a manual fold.
        let rec = d.reconstruct_at(t).unwrap();
        let total: i64 = rec.values().sum();
        prop_assert_eq!(total, commits.len() as i64);
    }
}
