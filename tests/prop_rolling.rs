//! The flagship property test: rolling propagation under **arbitrary**
//! update histories and **arbitrary** (even non-argmin) step schedules
//! must produce a timed view delta (Definition 4.2 / Theorem 4.3), and
//! point-in-time refresh must land the MV exactly on the oracle state.

use proptest::prelude::*;
use rolljoin::common::{tup, TableId, Tuple};
use rolljoin::core::{
    compute_delta, materialize, oracle, roll_to, MaintCtx, PropQuery, RollingPropagator,
    UniformInterval,
};
use rolljoin::workload::{Chain, TwoWay};

/// One base-table operation in a generated history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (table_idx, key, payload).
    Insert(usize, i64, i64),
    /// Delete an arbitrary live tuple of table_idx (by index).
    Delete(usize, usize),
}

fn arb_ops(tables: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..tables, 0i64..4, 0i64..50).prop_map(|(t, k, p)| Op::Insert(t, k, p)),
            1 => (0..tables, any::<prop::sample::Index>())
                .prop_map(|(t, i)| Op::Delete(t, i.index(1 << 20))),
        ],
        0..len,
    )
}

/// A propagation schedule: (relation, width) pairs, widths small.
fn arb_schedule(tables: usize, len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0..tables, 1u64..8), 0..len)
}

/// Apply ops; tuples per table tracked so deletes are valid. Chain tables
/// have schema (k_i, k_{i+1}) — we use (key, payload) for slot 0-style
/// pairs; for chains the "key" column is position-dependent, handled by
/// the caller's tuple builder.
fn apply_ops(
    ctx: &MaintCtx,
    tables: &[TableId],
    ops: &[Op],
    make: impl Fn(usize, i64, i64) -> Tuple,
) {
    let mut live: Vec<Vec<Tuple>> = vec![Vec::new(); tables.len()];
    for op in ops {
        match op {
            Op::Insert(t, k, p) => {
                let tuple = make(*t, *k, *p);
                let mut txn = ctx.engine.begin();
                txn.insert(tables[*t], tuple.clone()).unwrap();
                txn.commit().unwrap();
                live[*t].push(tuple);
            }
            Op::Delete(t, i) => {
                if live[*t].is_empty() {
                    continue;
                }
                let idx = i % live[*t].len();
                let victim = live[*t].swap_remove(idx);
                let mut txn = ctx.engine.begin();
                txn.delete_one(tables[*t], &victim).unwrap();
                txn.commit().unwrap();
            }
        }
    }
}

fn check_all_subintervals(ctx: &MaintCtx, from: u64, to: u64) -> Result<(), TestCaseError> {
    ctx.engine.capture_catch_up().unwrap();
    for a in from..to {
        for b in (a + 1)..=to {
            prop_assert!(
                oracle::timed_delta_holds(&ctx.engine, &ctx.mv, a, b).unwrap(),
                "Definition 4.2 violated on ({},{}]",
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-way rolling under random histories and random schedules.
    #[test]
    fn rolling_two_way_is_a_timed_delta(
        ops in arb_ops(2, 30),
        schedule in arb_schedule(2, 16),
    ) {
        let w = TwoWay::setup("p2").unwrap();
        let ctx = w.ctx();
        let mat = materialize(&ctx).unwrap();
        let tables = [w.r, w.s];
        // Interleave: apply a chunk of ops, then a schedule step, repeat.
        let chunk = (ops.len() / (schedule.len() + 1)).max(1);
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        let mut op_iter = ops.chunks(chunk);
        if let Some(first) = op_iter.next() {
            apply_ops(&ctx, &tables, first, |t, k, p| {
                if t == 0 { tup![p, k] } else { tup![k, p] }
            });
        }
        for (rel, width) in &schedule {
            let avail = ctx.engine.current_csn().saturating_sub(rp.tfwd()[*rel]);
            if avail > 0 {
                rp.step_relation(*rel, (*width).min(avail)).unwrap();
            }
            if let Some(more) = op_iter.next() {
                apply_ops(&ctx, &tables, more, |t, k, p| {
                    if t == 0 { tup![p, k] } else { tup![k, p] }
                });
            }
        }
        for rest in op_iter {
            apply_ops(&ctx, &tables, rest, |t, k, p| {
                if t == 0 { tup![p, k] } else { tup![k, p] }
            });
        }
        let target = ctx.engine.current_csn();
        rp.drain_to(target, &mut UniformInterval(5)).unwrap();
        check_all_subintervals(&ctx, mat, target)?;
    }

    /// Three-way chain rolling, fewer/heavier cases.
    #[test]
    fn rolling_three_way_is_a_timed_delta(
        ops in arb_ops(3, 24),
        schedule in arb_schedule(3, 12),
    ) {
        let c = Chain::setup("p3", 3).unwrap();
        let ctx = c.ctx();
        let mat = materialize(&ctx).unwrap();
        let tables: Vec<TableId> = c.tables.clone();
        let chunk = (ops.len() / (schedule.len() + 1)).max(1);
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        let mut op_iter = ops.chunks(chunk);
        // Chain slot t has columns (k_t, k_{t+1}): key joins both sides.
        let mk = |_t: usize, k: i64, p: i64| tup![k, p % 4];
        if let Some(first) = op_iter.next() {
            apply_ops(&ctx, &tables, first, mk);
        }
        for (rel, width) in &schedule {
            let avail = ctx.engine.current_csn().saturating_sub(rp.tfwd()[*rel]);
            if avail > 0 {
                rp.step_relation(*rel, (*width).min(avail)).unwrap();
            }
            if let Some(more) = op_iter.next() {
                apply_ops(&ctx, &tables, more, mk);
            }
        }
        for rest in op_iter {
            apply_ops(&ctx, &tables, rest, mk);
        }
        let target = ctx.engine.current_csn();
        rp.drain_to(target, &mut UniformInterval(6)).unwrap();
        check_all_subintervals(&ctx, mat, target)?;
    }

    /// ComputeDelta alone over random histories, then apply to random
    /// points: the MV must equal the oracle everywhere.
    #[test]
    fn compute_delta_and_apply_hit_oracle(
        ops in arb_ops(2, 25),
        stops in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
    ) {
        let w = TwoWay::setup("pa").unwrap();
        let ctx = w.ctx();
        let mat = materialize(&ctx).unwrap();
        apply_ops(&ctx, &[w.r, w.s], &ops, |t, k, p| {
            if t == 0 { tup![p, k] } else { tup![k, p] }
        });
        let end = ctx.engine.current_csn();
        compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat, mat], end).unwrap();
        ctx.mv.set_hwm(end);
        ctx.engine.capture_catch_up().unwrap();
        // Roll through a sorted set of random stops.
        let mut targets: Vec<u64> = stops
            .iter()
            .map(|i| mat + (i.index((end - mat) as usize + 1)) as u64)
            .collect();
        targets.sort();
        for t in targets {
            if t <= ctx.mv.mat_time() { continue; }
            roll_to(&ctx, t).unwrap();
            let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
            let want = oracle::view_at(&ctx.engine, &ctx.mv.view, t).unwrap();
            prop_assert_eq!(got, want, "MV diverged at t={}", t);
        }
    }
}
