//! Multiple views over shared base tables, filtered/projected views, a
//! self-join view, and a four-way view — all maintained concurrently and
//! checked against the oracle.

use rolljoin::common::{tup, ColumnType, Schema, TableId};
use rolljoin::core::{
    materialize, oracle, roll_to, MaintCtx, MaterializedView, Propagator, RollingPropagator,
    UniformInterval, ViewDef,
};
use rolljoin::relalg::{Expr, JoinSpec};
use rolljoin::storage::Engine;
use rolljoin::workload::Chain;

fn base_pair(e: &Engine) -> (TableId, TableId) {
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    e.create_index(r, 1).unwrap();
    e.create_index(s, 0).unwrap();
    (r, s)
}

fn churn(e: &Engine, r: TableId, s: TableId, n: i64) -> u64 {
    let mut last = 0;
    for i in 0..n {
        let mut txn = e.begin();
        txn.insert(r, tup![i, i % 5]).unwrap();
        last = txn.commit().unwrap();
        if i % 2 == 0 {
            let mut txn = e.begin();
            txn.insert(s, tup![i % 5, i * 10]).unwrap();
            last = txn.commit().unwrap();
        }
        if i % 7 == 6 {
            let mut txn = e.begin();
            txn.delete_one(r, &tup![i, i % 5]).unwrap();
            last = txn.commit().unwrap();
        }
    }
    last
}

#[test]
fn two_views_share_bases_with_independent_schedules() {
    let e = Engine::new();
    let (r, s) = base_pair(&e);

    // View 1: plain join, project (a, c).
    let v1 = ViewDef::new(
        &e,
        "plain",
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    // View 2: filtered (c >= 200), projected to (c, a) in swapped order.
    let v2 = ViewDef::new(
        &e,
        "filtered",
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: Some(Expr::col(3).ge(Expr::lit(200))),
            projection: vec![3, 0],
        },
    )
    .unwrap();
    let mv1 = MaterializedView::register(&e, v1).unwrap();
    let mv2 = MaterializedView::register(&e, v2).unwrap();
    let ctx1 = MaintCtx::new(e.clone(), mv1);
    let ctx2 = MaintCtx::new(e.clone(), mv2);
    let mat1 = materialize(&ctx1).unwrap();
    let mat2 = materialize(&ctx2).unwrap();

    let end = churn(&e, r, s, 25);

    // Independent maintenance: v1 uses Propagate in small steps, v2 uses
    // rolling with skewed per-relation widths.
    let mut p1 = Propagator::new(ctx1.clone(), mat1);
    p1.propagate_to(end, 6).unwrap();
    let mut p2 = RollingPropagator::new(ctx2.clone(), mat2);
    p2.drain_to(end, &mut UniformInterval(11)).unwrap();

    // Roll the two views to *different* points in time.
    e.capture_catch_up().unwrap();
    let stop1 = mat1 + (end - mat1) / 2;
    roll_to(&ctx1, stop1).unwrap();
    roll_to(&ctx2, end).unwrap();
    assert_eq!(
        oracle::mv_state(&e, &ctx1.mv).unwrap(),
        oracle::view_at(&e, &ctx1.mv.view, stop1).unwrap()
    );
    assert_eq!(
        oracle::mv_state(&e, &ctx2.mv).unwrap(),
        oracle::view_at(&e, &ctx2.mv.view, end).unwrap()
    );
    // The filter actually filtered.
    let v2_state = oracle::mv_state(&e, &ctx2.mv).unwrap();
    assert!(v2_state.keys().all(|t| t[0].as_int().unwrap() >= 200));
    assert!(!v2_state.is_empty());
}

#[test]
fn self_join_view_is_maintained_correctly() {
    // V = R ⋈ R on r1.b = r2.a — the same table in both slots. The delta
    // framework never assumes slot distinctness; verify that holds.
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "self",
        vec![r, r],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(r).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    let ctx = MaintCtx::new(e.clone(), mv);
    let mat = materialize(&ctx).unwrap();

    let mut last = mat;
    for i in 0..14i64 {
        let mut txn = e.begin();
        txn.insert(r, tup![i, (i + 1) % 7]).unwrap();
        last = txn.commit().unwrap();
        if i % 5 == 4 {
            let mut txn = e.begin();
            txn.delete_one(r, &tup![i, (i + 1) % 7]).unwrap();
            last = txn.commit().unwrap();
        }
    }
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(last, 3).unwrap();
    e.capture_catch_up().unwrap();
    for stop in [mat + 5, last] {
        roll_to(&ctx, stop).unwrap();
        assert_eq!(
            oracle::mv_state(&e, &ctx.mv).unwrap(),
            oracle::view_at(&e, &ctx.mv.view, stop).unwrap(),
            "self-join diverged at t={stop}"
        );
    }
}

#[test]
fn four_way_chain_rolls_correctly() {
    let c = Chain::setup("m4", 4).unwrap();
    let ctx = c.ctx();
    let mat = materialize(&ctx).unwrap();
    let mut last = mat;
    for i in 0..20i64 {
        for (k, t) in c.tables.iter().enumerate() {
            if i % (k as i64 + 1) == 0 {
                let mut txn = ctx.engine.begin();
                txn.insert(*t, tup![i % 4, (i + 1) % 4]).unwrap();
                last = txn.commit().unwrap();
            }
        }
    }
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    assert_eq!(
        rp.mode(),
        rolljoin::core::rolling::CompensationMode::ImmediateBox
    );
    rp.drain_to(last, &mut rolljoin::core::TargetRows { target_rows: 6 })
        .unwrap();
    ctx.engine.capture_catch_up().unwrap();
    for stop in [mat + 7, mat + 19, last] {
        if stop <= ctx.mv.mat_time() {
            continue;
        }
        roll_to(&ctx, stop).unwrap();
        assert_eq!(
            oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
            oracle::view_at(&ctx.engine, &ctx.mv.view, stop).unwrap(),
            "4-way diverged at t={stop}"
        );
    }
}
