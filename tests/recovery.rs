//! Crash recovery: the engine rebuilds its catalog, table contents,
//! indexes, delta history, and unit-of-work table from the WAL alone; the
//! control-table layer restores each view's materialization time; and
//! maintenance resumes — re-propagating the (soft) view delta from the
//! restored materialization time — with oracle-exact results.

use rolljoin::common::{tup, TimeInterval};
use rolljoin::core::{
    materialize, oracle, roll_to, MaintCtx, MaterializedView, Propagator, RollingPropagator,
    UniformInterval,
};
use rolljoin::storage::Engine;
use rolljoin::workload::TwoWay;

fn crash(engine: &Engine) -> Engine {
    // A "crash" is: take the current WAL image, drop everything else.
    Engine::recover_from_bytes(&engine.wal().snapshot_bytes()).unwrap()
}

#[test]
fn catalog_and_contents_survive_recovery() {
    let w = TwoWay::setup("rec").unwrap();
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![1, 10]).unwrap();
    txn.insert(w.r, tup![1, 10]).unwrap();
    txn.insert(w.s, tup![10, 100]).unwrap();
    txn.commit().unwrap();
    // An in-flight transaction at crash time must vanish.
    let mut doomed = w.engine.begin();
    doomed.insert(w.r, tup![666, 666]).unwrap();
    std::mem::forget(doomed); // simulate dying mid-transaction

    let e2 = crash(&w.engine);
    let r2 = e2.table_id("rec_r").unwrap();
    let s2 = e2.table_id("rec_s").unwrap();
    assert_eq!(r2, w.r);
    assert_eq!(e2.schema(r2).unwrap(), w.engine.schema(w.r).unwrap());
    assert_eq!(e2.table_len(r2).unwrap(), 2);
    assert_eq!(e2.table_len(s2).unwrap(), 1);
    // Indexes were re-created (TwoWay::setup made them).
    assert!(e2.has_index(r2, 1).unwrap());
    assert!(e2.has_index(s2, 0).unwrap());
    // The uncommitted row is gone.
    let mut txn = e2.begin();
    assert_eq!(txn.count_of(r2, &tup![666, 666]).unwrap(), 0);
    // CSN clock continues, not restarts.
    assert_eq!(e2.current_csn(), w.engine.current_csn());
}

#[test]
fn delta_history_and_time_travel_survive() {
    let w = TwoWay::setup("rec2").unwrap();
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![1, 1]).unwrap();
    let c1 = txn.commit().unwrap();
    let mut txn = w.engine.begin();
    txn.delete_one(w.r, &tup![1, 1]).unwrap();
    let c2 = txn.commit().unwrap();

    let e2 = crash(&w.engine);
    // Recovery replays capture over the whole log.
    assert_eq!(e2.capture_hwm(), c2);
    let rows = e2.delta_range(w.r, TimeInterval::new(0, c2)).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1].count, -1);
    let at1 = e2.scan_asof(w.r, c1).unwrap();
    assert_eq!(at1[&tup![1, 1]], 1);
    assert!(e2.scan_asof(w.r, c2).unwrap().is_empty());
    // Unit-of-work survived.
    assert!(e2.uow().wallclock_of_csn(c1).is_some());
}

#[test]
fn maintenance_resumes_after_crash() {
    // Full lifecycle: materialize, propagate, roll, crash, reattach,
    // continue updating/propagating/rolling — always oracle-exact.
    let w = TwoWay::setup("rec3").unwrap();
    let ctx = w.ctx();
    let mut txn = ctx.engine.begin();
    txn.insert(w.r, tup![1, 5]).unwrap();
    txn.insert(w.s, tup![5, 50]).unwrap();
    txn.commit().unwrap();
    let mat = materialize(&ctx).unwrap();
    for i in 0..10i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 4]).unwrap();
        txn.commit().unwrap();
        let mut txn = ctx.engine.begin();
        txn.insert(w.s, tup![i % 4, 100 + i]).unwrap();
        txn.commit().unwrap();
    }
    let mid = ctx.engine.current_csn();
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(mid, 4).unwrap();
    roll_to(&ctx, mid).unwrap();

    // CRASH. The view delta and in-memory control state evaporate; the
    // WAL (and therefore MV contents + the persistent control row) remain.
    let e2 = crash(&ctx.engine);
    let view2 = rolljoin::core::ViewDef::new(
        &e2,
        "rec3",
        vec![
            e2.table_id("rec3_r").unwrap(),
            e2.table_id("rec3_s").unwrap(),
        ],
        (*ctx.mv.view).clone().spec,
    )
    .unwrap();
    let mv2 = MaterializedView::reattach(&e2, view2).unwrap();
    assert_eq!(mv2.mat_time(), mid, "materialization time restored");
    assert_eq!(mv2.hwm(), mid, "view delta is soft state; HWM resets");
    let ctx2 = MaintCtx::new(e2.clone(), mv2);

    // The recovered MV contents equal the oracle at the restored time.
    assert_eq!(
        oracle::mv_state(&e2, &ctx2.mv).unwrap(),
        oracle::view_at(&e2, &ctx2.mv.view, mid).unwrap()
    );

    // Life goes on: more updates, rolling propagation, roll to the end.
    let (r2, s2) = (ctx2.mv.view.bases[0], ctx2.mv.view.bases[1]);
    for i in 0..8i64 {
        let mut txn = e2.begin();
        txn.insert(r2, tup![100 + i, i % 4]).unwrap();
        txn.commit().unwrap();
        if i % 2 == 0 {
            let mut txn = e2.begin();
            txn.delete_one(s2, &tup![i % 4, 100 + i]).unwrap();
            txn.commit().unwrap();
        }
    }
    let end = e2.current_csn();
    let mut rp = RollingPropagator::new(ctx2.clone(), mid);
    rp.drain_to(end, &mut UniformInterval(3)).unwrap();
    roll_to(&ctx2, end).unwrap();
    e2.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&e2, &ctx2.mv).unwrap(),
        oracle::view_at(&e2, &ctx2.mv.view, end).unwrap()
    );
}

#[test]
fn wal_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("rolljoin_rec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.wal");

    let w = TwoWay::setup("recf").unwrap();
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![7, 7]).unwrap();
    txn.commit().unwrap();
    w.engine.save_wal(&path).unwrap();

    let e2 = Engine::open(&path).unwrap();
    let r2 = e2.table_id("recf_r").unwrap();
    assert_eq!(e2.table_len(r2).unwrap(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_tolerates_torn_tail() {
    let w = TwoWay::setup("rect").unwrap();
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![1, 1]).unwrap();
    txn.commit().unwrap();
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![2, 2]).unwrap();
    txn.commit().unwrap();
    let bytes = w.engine.wal().snapshot_bytes();
    // Tear mid-way through the final frame (the last commit record).
    let torn = &bytes[..bytes.len() - 3];
    let e2 = Engine::recover_from_bytes(torn).unwrap();
    let r2 = e2.table_id("rect_r").unwrap();
    // The torn commit's transaction is treated as uncommitted.
    assert_eq!(e2.table_len(r2).unwrap(), 1);
}
