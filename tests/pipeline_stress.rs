//! Long-running concurrent pipeline stress: multiple updater threads, a
//! background capture driver, a rolling propagate driver, an apply driver,
//! and a foreground checker that repeatedly point-in-time-verifies the
//! materialized view against the oracle while everything is moving.

use rolljoin::common::tup;
use rolljoin::core::{
    materialize, oracle, roll_to, spawn_apply_driver, spawn_capture_driver, spawn_rolling_driver,
    TargetRows,
};
use rolljoin::workload::{int_pair_stream, TwoWay, UpdateMix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn concurrent_pipeline_stays_oracle_exact() {
    let w = TwoWay::setup("stress").unwrap();
    let ctx = w
        .ctx()
        .with_blocking_capture(Duration::from_micros(500), Duration::from_secs(30));
    let mat = materialize(&ctx).unwrap();

    let capture = spawn_capture_driver(w.engine.clone(), Duration::from_micros(500), 4096);
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(TargetRows { target_rows: 48 }),
        Duration::from_micros(500),
    );
    let apply = spawn_apply_driver(ctx.clone(), Duration::from_millis(3));

    // Updater threads.
    let stop = Arc::new(AtomicBool::new(false));
    let mut updaters = Vec::new();
    for k in 0..3u64 {
        let engine = w.engine.clone();
        let (r, s) = (w.r, w.s);
        let stop = stop.clone();
        updaters.push(std::thread::spawn(move || {
            let mix = UpdateMix {
                delete_frac: 0.25,
                update_frac: 0.25,
            };
            let mut sr = int_pair_stream(r, 1000 + k, mix, 64);
            let mut ss = int_pair_stream(s, 2000 + k, mix, 64);
            let mut ops = 0u64;
            while !stop.load(Ordering::Acquire) {
                sr.step(&engine).unwrap();
                ss.step(&engine).unwrap();
                ops += 2;
                std::thread::sleep(Duration::from_micros(200));
            }
            ops
        }));
    }

    // Foreground checker: while the world churns, repeatedly verify that
    // the MV at its (moving) materialization time equals φ(V_t) — reading
    // MV and mat_time under one S lock so they are consistent.
    let deadline = Instant::now() + Duration::from_secs(4);
    let mut checks = 0;
    while Instant::now() < deadline {
        let mut txn = ctx.engine.begin();
        txn.lock(ctx.mv.mv_table, rolljoin::storage::LockMode::Shared)
            .unwrap();
        let t = ctx.mv.mat_time();
        let got: rolljoin::relalg::NetEffect = txn
            .scan_counts(ctx.mv.mv_table)
            .unwrap()
            .into_iter()
            .collect();
        drop(txn);
        // The oracle needs capture ≥ t; the background capture driver is
        // running, so wait for it rather than stepping inline.
        while ctx.engine.capture_hwm() < t {
            std::thread::sleep(Duration::from_micros(200));
        }
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, t).unwrap();
        assert_eq!(got, want, "MV inconsistent with oracle at t={t}");
        checks += 1;
        std::thread::sleep(Duration::from_millis(40));
    }
    assert!(checks >= 20, "expected many live checks, got {checks}");

    stop.store(true, Ordering::Release);
    let total_ops: u64 = updaters.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 1_000, "stress too small: {total_ops} ops");

    // Drain: stop drivers, roll to the final commit, verify once more.
    prop.stop().unwrap();
    apply.stop().unwrap();
    capture.stop().unwrap();
    ctx.engine.capture_catch_up().unwrap();
    let end = ctx.engine.current_csn();
    // Finish propagation inline (driver stopped mid-flight) — continuing
    // from the existing HWM; the view delta below it is already complete
    // and must not be re-propagated. The capture driver is gone, so switch
    // back to inline capture.
    let ctx_inline = rolljoin::core::MaintCtx {
        capture_wait: rolljoin::core::CaptureWait::Inline,
        ..ctx.clone()
    };
    let mut rp = rolljoin::core::RollingPropagator::new(ctx_inline.clone(), ctx.mv.hwm());
    rp.drain_to(end, &mut rolljoin::core::UniformInterval(64))
        .unwrap();
    roll_to(&ctx, end).unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap()
    );
    // Sanity: tables aren't trivially empty.
    let mut txn = ctx.engine.begin();
    assert!(txn.scan(w.r).unwrap().len() > 100);
    drop(txn);
    let _ = tup![0];
}
