//! Failure injection: aborted update transactions, capture lag, suspended
//! drivers, deadlock-resolution aborts during maintenance — the system
//! must stay correct through all of them.

use rolljoin::common::{tup, TimeInterval};
use rolljoin::core::{
    materialize, oracle, roll_to, spawn_capture_driver, spawn_rolling_driver, CaptureWait,
    MaintCtx, Propagator, TargetRows, UniformInterval,
};
use rolljoin::storage::LockMode;
use rolljoin::workload::TwoWay;
use std::time::Duration;

#[test]
fn aborted_updates_never_reach_the_view() {
    let w = TwoWay::setup("abort").unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();

    // Interleave committed and aborted transactions.
    for i in 0..20i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 3]).unwrap();
        txn.commit().unwrap();

        let mut doomed = ctx.engine.begin();
        doomed.insert(w.r, tup![1000 + i, i % 3]).unwrap();
        doomed.insert(w.s, tup![i % 3, 7777]).unwrap();
        doomed.abort();

        if i % 2 == 0 {
            let mut txn = ctx.engine.begin();
            txn.insert(w.s, tup![i % 3, 100 + i]).unwrap();
            txn.commit().unwrap();
        }
    }
    let end = ctx.engine.current_csn();
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(end, 4).unwrap();
    roll_to(&ctx, end).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap();
    assert_eq!(got, want);
    // Aborted payloads must be nowhere.
    assert!(got.keys().all(|t| t[1] != rolljoin::Value::Int(7777)));
}

#[test]
fn capture_lag_delays_hwm_but_not_correctness() {
    let w = TwoWay::setup("lag").unwrap();
    let ctx = w
        .ctx()
        .with_blocking_capture(Duration::from_millis(1), Duration::from_secs(30));
    let mat = materialize(&ctx).unwrap();

    // A deliberately slow capture: 3 records per 5 ms.
    let capture = spawn_capture_driver(w.engine.clone(), Duration::from_millis(5), 3);
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(TargetRows { target_rows: 8 }),
        Duration::from_millis(2),
    );

    for i in 0..40i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 4]).unwrap();
        txn.commit().unwrap();
        if i % 2 == 0 {
            let mut txn = ctx.engine.begin();
            txn.insert(w.s, tup![i % 4, i]).unwrap();
            txn.commit().unwrap();
        }
    }
    let last = ctx.engine.current_csn();
    // The lagging capture must eventually deliver everything; wait for the
    // pipeline to pass `last`.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while ctx.mv.hwm() < last {
        assert!(
            std::time::Instant::now() < deadline,
            "hwm stuck at {} (capture hwm {})",
            ctx.mv.hwm(),
            ctx.engine.capture_hwm()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    prop.stop().unwrap();
    capture.stop().unwrap();

    roll_to(&ctx, last).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, last).unwrap()
    );
}

#[test]
fn suspended_propagation_freezes_hwm_then_recovers() {
    let w = TwoWay::setup("suspend").unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(UniformInterval(2)),
        Duration::from_millis(1),
    );

    // Phase 1: propagation running.
    for i in 0..10i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, 0]).unwrap();
        txn.commit().unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ctx.mv.hwm() == mat {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Phase 2: suspend (high-load shedding, paper §1); HWM freezes.
    prop.suspend();
    std::thread::sleep(Duration::from_millis(10));
    let frozen = ctx.mv.hwm();
    for i in 10..20i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, 0]).unwrap();
        txn.commit().unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(ctx.mv.hwm(), frozen);

    // Phase 3: resume; everything catches up and stays correct.
    prop.resume();
    let last = ctx.engine.current_csn();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ctx.mv.hwm() < last {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    prop.stop().unwrap();
    roll_to(&ctx, last).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, last).unwrap()
    );
}

#[test]
fn maintenance_survives_lock_timeouts() {
    // A hostile writer holds an X lock on a base table long enough for the
    // propagation transaction to time out; the driver must retry and
    // eventually finish correctly.
    let w = TwoWay::setup("timeout").unwrap();
    let engine = rolljoin::storage::Engine::with_lock_timeout(Duration::from_millis(40));
    // Rebuild the scenario on the short-timeout engine.
    let r = engine
        .create_table(
            "r",
            rolljoin::Schema::new([
                ("a", rolljoin::ColumnType::Int),
                ("b", rolljoin::ColumnType::Int),
            ]),
        )
        .unwrap();
    let s = engine
        .create_table(
            "s",
            rolljoin::Schema::new([
                ("b", rolljoin::ColumnType::Int),
                ("c", rolljoin::ColumnType::Int),
            ]),
        )
        .unwrap();
    drop(w);
    let view = rolljoin::core::ViewDef::new(
        &engine,
        "v",
        vec![r, s],
        rolljoin::relalg::JoinSpec {
            slot_schemas: vec![engine.schema(r).unwrap(), engine.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    let mv = rolljoin::core::MaterializedView::register(&engine, view).unwrap();
    let ctx = MaintCtx::new(engine.clone(), mv);
    let mat = materialize(&ctx).unwrap();

    let mut txn = engine.begin();
    txn.insert(r, tup![1, 1]).unwrap();
    txn.commit().unwrap();
    let mut txn = engine.begin();
    txn.insert(s, tup![1, 10]).unwrap();
    let end = txn.commit().unwrap();

    // Hostile writer grabs X on r for 150 ms in a background thread.
    let e2 = engine.clone();
    let blocker = std::thread::spawn(move || {
        let mut hog = e2.begin();
        hog.lock(r, LockMode::Exclusive).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        hog.commit().unwrap();
    });
    std::thread::sleep(Duration::from_millis(10));

    // Direct propagation hits the timeout at least once…
    let mut prop = Propagator::new(ctx.clone(), mat);
    let mut attempts = 0;
    loop {
        attempts += 1;
        match prop.propagate_to(end, 10) {
            Ok(_) => break,
            Err(rolljoin::Error::LockTimeout { .. }) => continue,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    blocker.join().unwrap();
    assert!(attempts >= 1);

    roll_to(&ctx, end).unwrap();
    engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&engine, &ctx.mv).unwrap(),
        oracle::view_at(&engine, &ctx.mv.view, end).unwrap()
    );
}

#[test]
fn vd_prune_reclaims_applied_history() {
    let w = TwoWay::setup("prune").unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    for i in 0..10i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, 0]).unwrap();
        txn.commit().unwrap();
        let mut txn = ctx.engine.begin();
        txn.insert(w.s, tup![0, i]).unwrap();
        txn.commit().unwrap();
    }
    let end = ctx.engine.current_csn();
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(end, 5).unwrap();
    let mid = mat + 10;
    roll_to(&ctx, mid).unwrap();
    // Prune everything already applied.
    let dropped = ctx.engine.vd_prune(ctx.mv.vd_table, mid).unwrap();
    assert!(dropped > 0);
    // Later rolls still work from the remaining suffix.
    roll_to(&ctx, end).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap()
    );
    // Nothing with ts ≤ mid remains.
    assert!(ctx
        .engine
        .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, mid))
        .unwrap()
        .is_empty());
}

#[test]
fn blocking_capture_times_out_cleanly_without_driver() {
    let w = TwoWay::setup("noloop").unwrap();
    let ctx = MaintCtx {
        capture_wait: CaptureWait::Block {
            poll: Duration::from_millis(1),
            timeout: Duration::from_millis(30),
        },
        ..w.ctx()
    };
    let mut txn = ctx.engine.begin();
    txn.insert(w.r, tup![1, 1]).unwrap();
    let end = txn.commit().unwrap();
    // No capture driver running → ensure_captured must give up with an
    // error, not hang.
    let err = ctx.ensure_captured(end).unwrap_err();
    assert!(matches!(err, rolljoin::Error::Internal(_)));
}

#[test]
fn delta_history_pruning_reclaims_space_without_breaking_maintenance() {
    let w = TwoWay::setup("gc").unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    let mut prop = Propagator::new(ctx.clone(), mat);
    for i in 0..30i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 3]).unwrap();
        txn.commit().unwrap();
        let mut txn = ctx.engine.begin();
        txn.insert(w.s, tup![i % 3, i]).unwrap();
        txn.commit().unwrap();
    }
    let mid = ctx.engine.current_csn();
    prop.propagate_to(mid, 8).unwrap();
    roll_to(&ctx, mid).unwrap();

    // Everything below `mid` is applied and behind every frontier: prune.
    let before = ctx.engine.delta_store(w.r).unwrap().len();
    let dropped = ctx.engine.prune_delta_history(w.r, mid).unwrap()
        + ctx.engine.prune_delta_history(w.s, mid).unwrap();
    assert!(dropped > 0);
    assert!(ctx.engine.delta_store(w.r).unwrap().len() < before);

    // Reads below the prune point now fail loudly…
    assert!(matches!(
        ctx.engine
            .delta_range(w.r, TimeInterval::new(mat, mid))
            .unwrap_err(),
        rolljoin::Error::HistoryPruned { .. }
    ));
    assert!(ctx.engine.scan_asof(w.r, mat).is_err());

    // …while maintenance continues above it, oracle-exact.
    for i in 30..45i64 {
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![i, i % 3]).unwrap();
        txn.commit().unwrap();
    }
    let end = ctx.engine.current_csn();
    prop.propagate_to(end, 8).unwrap();
    roll_to(&ctx, end).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap()
    );
}
