//! Bounded-exhaustive verification ("small scope hypothesis"): enumerate
//! **every** update history of bounded length over a tiny domain and,
//! for each, several propagation schedules — and require Definition 4.2 on
//! every subinterval. Unlike the randomized property tests, this leaves no
//! sampling gaps within the bound.

use rolljoin::common::{tup, Tuple};
use rolljoin::core::{materialize, oracle, RollingPropagator, UniformInterval};
use rolljoin::workload::TwoWay;

/// The op alphabet: inserts with key 0/1 on either table, and
/// delete-oldest on either table (no-op if empty — those histories are
/// equivalent to shorter ones already enumerated).
#[derive(Clone, Copy, Debug)]
enum Op {
    InsR(i64),
    InsS(i64),
    DelR,
    DelS,
}

const ALPHABET: [Op; 6] = [
    Op::InsR(0),
    Op::InsR(1),
    Op::InsS(0),
    Op::InsS(1),
    Op::DelR,
    Op::DelS,
];

fn run_history(ops: &[Op], schedule: &[(usize, u64)]) {
    let w = TwoWay::setup("x").unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let mut live_r: Vec<Tuple> = Vec::new();
    let mut live_s: Vec<Tuple> = Vec::new();
    let mut seq = 0i64;

    // Interleave: one schedule step after each op when the schedule allows.
    let mut sched = schedule.iter();
    for op in ops {
        let mut txn = ctx.engine.begin();
        match op {
            Op::InsR(k) => {
                seq += 1;
                let t = tup![seq, *k];
                txn.insert(w.r, t.clone()).unwrap();
                live_r.push(t);
            }
            Op::InsS(k) => {
                seq += 1;
                let t = tup![*k, seq];
                txn.insert(w.s, t.clone()).unwrap();
                live_s.push(t);
            }
            Op::DelR => {
                if live_r.is_empty() {
                    txn.abort();
                    continue;
                }
                let t = live_r.remove(0);
                txn.delete_one(w.r, &t).unwrap();
            }
            Op::DelS => {
                if live_s.is_empty() {
                    txn.abort();
                    continue;
                }
                let t = live_s.remove(0);
                txn.delete_one(w.s, &t).unwrap();
            }
        }
        txn.commit().unwrap();
        if let Some(&(rel, width)) = sched.next() {
            let avail = ctx.engine.current_csn().saturating_sub(rp.tfwd()[rel]);
            if avail > 0 {
                rp.step_relation(rel, width.min(avail)).unwrap();
            }
        }
    }
    let target = ctx.engine.current_csn();
    rp.drain_to(target, &mut UniformInterval(2)).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    for a in mat..target {
        for b in (a + 1)..=target {
            assert!(
                oracle::timed_delta_holds(&ctx.engine, &ctx.mv, a, b).unwrap(),
                "Def 4.2 violated on ({a},{b}] for ops {ops:?} schedule {schedule:?}"
            );
        }
    }
}

#[test]
fn all_histories_of_length_four_under_three_schedules() {
    // 6^4 = 1296 histories × 3 schedules = 3888 exhaustive runs.
    let schedules: [&[(usize, u64)]; 3] = [
        &[],                       // propagate only at the end
        &[(0, 1), (1, 2), (0, 1)], // eager tiny steps, leapfrogging
        &[(1, 3), (0, 1)],         // wide R2 stride first (Fig. 9 shape)
    ];
    let n = ALPHABET.len();
    for idx in 0..n.pow(4) {
        let ops: Vec<Op> = (0..4).map(|d| ALPHABET[(idx / n.pow(d)) % n]).collect();
        for schedule in schedules {
            run_history(&ops, schedule);
        }
    }
}

#[test]
fn all_histories_of_length_three_with_interleaved_steps() {
    // 6^3 = 216 histories; a step after *every* op, alternating relations.
    let n = ALPHABET.len();
    for idx in 0..n.pow(3) {
        let ops: Vec<Op> = (0..3).map(|d| ALPHABET[(idx / n.pow(d)) % n]).collect();
        run_history(&ops, &[(0, 1), (1, 1), (0, 2)]);
        run_history(&ops, &[(1, 1), (0, 1), (1, 2)]);
    }
}
