//! Determinism oracle for the parallel propagation executor: under any
//! update history, `ComputeDelta` run by the worker pool must produce a
//! view delta with the same net effect (`φ`, Definition 4.1) as the
//! sequential executor, and point-in-time refresh from the parallel
//! delta must land the MV exactly on the oracle state at random roll
//! targets (Definition 4.2 / Theorem 4.1).
//!
//! This is the property that makes the parallelism safe to ship: unit
//! execution order changes each constituent query's execution time, but
//! every drift is compensated relative to that unit's *own* commit CSN,
//! so the interleavings differ only by compensation pairs that cancel
//! under `φ`.

use proptest::prelude::*;
use rolljoin::common::{tup, Csn, TableId, TimeInterval, Tuple};
use rolljoin::core::{compute_delta, materialize, oracle, roll_to, MaintCtx, PropQuery};
use rolljoin::relalg::{net_effect, NetEffect};
use rolljoin::workload::{Chain, TwoWay};

/// One base-table operation in a generated history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (table_idx, key, payload).
    Insert(usize, i64, i64),
    /// Delete an arbitrary live tuple of table_idx (by index).
    Delete(usize, usize),
}

fn arb_ops(tables: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..tables, 0i64..4, 0i64..50).prop_map(|(t, k, p)| Op::Insert(t, k, p)),
            1 => (0..tables, any::<prop::sample::Index>())
                .prop_map(|(t, i)| Op::Delete(t, i.index(1 << 20))),
        ],
        0..len,
    )
}

fn apply_ops(
    ctx: &MaintCtx,
    tables: &[TableId],
    ops: &[Op],
    make: impl Fn(usize, i64, i64) -> Tuple,
) {
    let mut live: Vec<Vec<Tuple>> = vec![Vec::new(); tables.len()];
    for op in ops {
        match op {
            Op::Insert(t, k, p) => {
                let tuple = make(*t, *k, *p);
                let mut txn = ctx.engine.begin();
                txn.insert(tables[*t], tuple.clone()).unwrap();
                txn.commit().unwrap();
                live[*t].push(tuple);
            }
            Op::Delete(t, i) => {
                if live[*t].is_empty() {
                    continue;
                }
                let idx = i % live[*t].len();
                let victim = live[*t].swap_remove(idx);
                let mut txn = ctx.engine.begin();
                txn.delete_one(tables[*t], &victim).unwrap();
                txn.commit().unwrap();
            }
        }
    }
}

/// Replay `ops` on a fresh n-way chain engine and run one `ComputeDelta`
/// over the whole history with the given worker count. Returns the
/// context, the materialization time, the history end, and `φ` of the
/// produced view delta over `(mat, end]`.
fn run_chain(n: usize, ops: &[Op], workers: usize) -> (MaintCtx, Csn, Csn, NetEffect) {
    let c = Chain::setup("pp", n).unwrap();
    let ctx = c.ctx().with_workers(workers);
    let mat = materialize(&ctx).unwrap();
    apply_ops(&ctx, &c.tables, ops, |_t, k, p| tup![k, p % 4]);
    let end = ctx.engine.current_csn();
    compute_delta(&ctx, &PropQuery::all_base(n), 1, &vec![mat; n], end).unwrap();
    ctx.mv.set_hwm(end);
    let vd = ctx
        .engine
        .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
        .unwrap();
    (ctx, mat, end, net_effect(vd))
}

/// Roll the MV to random targets and compare against the oracle state.
fn check_roll_targets(
    ctx: &MaintCtx,
    mat: Csn,
    end: Csn,
    stops: &[prop::sample::Index],
) -> Result<(), TestCaseError> {
    ctx.engine.capture_catch_up().unwrap();
    let mut targets: Vec<Csn> = stops
        .iter()
        .map(|i| mat + i.index((end - mat) as usize + 1) as Csn)
        .collect();
    targets.sort();
    for t in targets {
        if t <= ctx.mv.mat_time() {
            continue;
        }
        roll_to(ctx, t).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, t).unwrap();
        prop_assert_eq!(got, want, "parallel MV diverged from oracle at t={}", t);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two-way: parallel `ComputeDelta` φ-matches sequential, and refresh
    /// from the parallel delta hits the oracle at random targets.
    #[test]
    fn parallel_matches_sequential_two_way(
        ops in arb_ops(2, 30),
        workers in 2usize..9,
        stops in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let run = |workers: usize| {
            let w = TwoWay::setup("pp2").unwrap();
            let ctx = w.ctx().with_workers(workers);
            let mat = materialize(&ctx).unwrap();
            apply_ops(&ctx, &[w.r, w.s], &ops, |t, k, p| {
                if t == 0 { tup![p, k] } else { tup![k, p] }
            });
            let end = ctx.engine.current_csn();
            compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat, mat], end).unwrap();
            ctx.mv.set_hwm(end);
            let vd = ctx
                .engine
                .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
                .unwrap();
            (ctx, mat, end, net_effect(vd))
        };
        let (_, mat_s, end_s, phi_seq) = run(1);
        let (ctx, mat, end, phi_par) = run(workers);
        prop_assert_eq!((mat_s, end_s), (mat, end), "identical histories");
        prop_assert_eq!(phi_seq, phi_par, "φ(parallel) ≠ φ(sequential)");
        check_roll_targets(&ctx, mat, end, &stops)?;
    }

    /// Three-way chain.
    #[test]
    fn parallel_matches_sequential_chain3(
        ops in arb_ops(3, 24),
        workers in 2usize..9,
        stops in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let (_, mat_s, end_s, phi_seq) = run_chain(3, &ops, 1);
        let (ctx, mat, end, phi_par) = run_chain(3, &ops, workers);
        prop_assert_eq!((mat_s, end_s), (mat, end), "identical histories");
        prop_assert_eq!(phi_seq, phi_par, "φ(parallel) ≠ φ(sequential)");
        check_roll_targets(&ctx, mat, end, &stops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Four-way chain — T(4) = 64 constituent queries per case, so fewer
    /// cases.
    #[test]
    fn parallel_matches_sequential_chain4(
        ops in arb_ops(4, 18),
        workers in 2usize..9,
        stops in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let (_, mat_s, end_s, phi_seq) = run_chain(4, &ops, 1);
        let (ctx, mat, end, phi_par) = run_chain(4, &ops, workers);
        prop_assert_eq!((mat_s, end_s), (mat, end), "identical histories");
        prop_assert_eq!(phi_seq, phi_par, "φ(parallel) ≠ φ(sequential)");
        check_roll_targets(&ctx, mat, end, &stops)?;
    }
}
