//! Property tests for the net-effect operator `φ` (paper §4): the
//! algebraic laws the correctness framework rests on, checked over
//! arbitrary delta tables.

use proptest::prelude::*;
use rolljoin::common::{DeltaRow, Tuple, Value};
use rolljoin::relalg::{add, is_multiset, negate, net_effect, to_rows};

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    // Small domains so collisions (groups with several rows) are common.
    (0i64..5, 0i64..3).prop_map(|(a, b)| Tuple::new([Value::Int(a), Value::Int(b)]))
}

fn arb_row() -> impl Strategy<Value = DeltaRow> {
    (any::<bool>(), 1u64..50, -3i64..=3, arb_tuple()).prop_map(|(has_ts, ts, count, tuple)| {
        DeltaRow {
            ts: has_ts.then_some(ts),
            count,
            tuple,
        }
    })
}

fn arb_table() -> impl Strategy<Value = Vec<DeltaRow>> {
    prop::collection::vec(arb_row(), 0..40)
}

proptest! {
    /// φ(φ(R)) = φ(R)
    #[test]
    fn idempotence(r in arb_table()) {
        let once = net_effect(r);
        let twice = net_effect(to_rows(&once));
        prop_assert_eq!(once, twice);
    }

    /// φ(R + S) = φ(φ(R) + φ(S))
    #[test]
    fn union_distributes(r in arb_table(), s in arb_table()) {
        let both: Vec<DeltaRow> = r.iter().chain(s.iter()).cloned().collect();
        let lhs = net_effect(both);
        let rhs = add(&net_effect(r), &net_effect(s));
        prop_assert_eq!(lhs, rhs);
    }

    /// Union on canonical forms is commutative and associative.
    #[test]
    fn union_comm_assoc(r in arb_table(), s in arb_table(), t in arb_table()) {
        let (nr, ns, nt) = (net_effect(r), net_effect(s), net_effect(t));
        prop_assert_eq!(add(&nr, &ns), add(&ns, &nr));
        prop_assert_eq!(add(&add(&nr, &ns), &nt), add(&nr, &add(&ns, &nt)));
    }

    /// -(-R) = R and R + (-R) = ∅
    #[test]
    fn negation_laws(r in arb_table()) {
        let n = net_effect(r);
        prop_assert_eq!(negate(&negate(&n)), n.clone());
        prop_assert!(add(&n, &negate(&n)).is_empty());
    }

    /// φ never keeps zero counts, and `is_multiset` detects negatives.
    #[test]
    fn canonical_form_properties(r in arb_table()) {
        let n = net_effect(r);
        prop_assert!(n.values().all(|&c| c != 0));
        prop_assert_eq!(is_multiset(&n), n.values().all(|&c| c > 0));
    }

    /// φ(R ⋈ S) = φ(φ(R) ⋈ φ(S)) — the join law, with ⋈ as count product
    /// over a shared key (paper §4's φ(RS) = φ(φ(R)φ(S))).
    #[test]
    fn join_law(r in arb_table(), s in arb_table()) {
        // Join on the first column; concatenate tuples; multiply counts.
        let join = |xs: &[DeltaRow], ys: &[DeltaRow]| -> Vec<DeltaRow> {
            let mut out = Vec::new();
            for x in xs {
                for y in ys {
                    if x.tuple[0] == y.tuple[0] {
                        out.push(x.join_combine(y));
                    }
                }
            }
            out
        };
        let lhs = net_effect(join(&r, &s));
        let rn = to_rows(&net_effect(r));
        let sn = to_rows(&net_effect(s));
        let rhs = net_effect(join(&rn, &sn));
        prop_assert_eq!(lhs, rhs);
    }
}
