//! Scalar expressions over tuples.
//!
//! Selection conditions for propagation queries are expressions over the
//! *global column space* of a join (the concatenation of the slot schemas).
//! Per paper §4, selection conditions must not involve the count or
//! timestamp attributes — this is enforced structurally: expressions can
//! only reference columns.

use rolljoin_common::{Tuple, Value};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators (integer/float).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Mod,
}

/// A scalar expression evaluated against one (joined) tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (index into the global column space).
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison; NULL operands yield SQL-unknown, which selection treats
    /// as false.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation (three-valued: NOT unknown = unknown).
    Not(Box<Expr>),
    /// Arithmetic on Int/Float.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// IS NULL test.
    IsNull(Box<Expr>),
}

impl Expr {
    /// `Expr::col(i)` — column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluate to a value. Arithmetic on NULL yields NULL.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            Expr::Col(i) => tuple[*i].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(l, op, r) => {
                let lv = l.eval(tuple);
                let rv = r.eval(tuple);
                match lv.sql_cmp(&rv) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    }),
                }
            }
            Expr::And(l, r) => match (l.eval(tuple), r.eval(tuple)) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            Expr::Or(l, r) => match (l.eval(tuple), r.eval(tuple)) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            Expr::Not(e) => match e.eval(tuple) {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Null,
            },
            Expr::Arith(l, op, r) => {
                let lv = l.eval(tuple);
                let rv = r.eval(tuple);
                match (lv, rv) {
                    (Value::Int(a), Value::Int(b)) => match op {
                        ArithOp::Add => Value::Int(a.wrapping_add(b)),
                        ArithOp::Sub => Value::Int(a.wrapping_sub(b)),
                        ArithOp::Mul => Value::Int(a.wrapping_mul(b)),
                        ArithOp::Mod => {
                            if b == 0 {
                                Value::Null
                            } else {
                                Value::Int(a.rem_euclid(b))
                            }
                        }
                    },
                    (Value::Float(a), Value::Float(b)) => match op {
                        ArithOp::Add => Value::Float(a + b),
                        ArithOp::Sub => Value::Float(a - b),
                        ArithOp::Mul => Value::Float(a * b),
                        ArithOp::Mod => Value::Float(a % b),
                    },
                    _ => Value::Null,
                }
            }
            Expr::IsNull(e) => Value::Bool(e.eval(tuple).is_null()),
        }
    }

    /// Evaluate as a selection predicate: SQL-unknown is *not selected*.
    pub fn eval_bool(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Value::Bool(true))
    }

    /// Shift every column reference by `offset` (used when an expression
    /// written against one slot's schema is placed into the global column
    /// space of a join).
    pub fn shift_cols(&self, offset: usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(i + offset),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(l, op, r) => Expr::Cmp(
                Box::new(l.shift_cols(offset)),
                *op,
                Box::new(r.shift_cols(offset)),
            ),
            Expr::And(l, r) => Expr::And(
                Box::new(l.shift_cols(offset)),
                Box::new(r.shift_cols(offset)),
            ),
            Expr::Or(l, r) => Expr::Or(
                Box::new(l.shift_cols(offset)),
                Box::new(r.shift_cols(offset)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.shift_cols(offset))),
            Expr::Arith(l, op, r) => Expr::Arith(
                Box::new(l.shift_cols(offset)),
                *op,
                Box::new(r.shift_cols(offset)),
            ),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.shift_cols(offset))),
        }
    }

    /// Highest column index referenced, if any (for validation).
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Lit(_) => None,
            Expr::Cmp(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(l, _, r) => {
                match (l.max_col(), r.max_col()) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
            Expr::Not(e) | Expr::IsNull(e) => e.max_col(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    #[test]
    fn comparisons() {
        let t = tup![3, 5];
        assert!(Expr::col(0).lt(Expr::col(1)).eval_bool(&t));
        assert!(!Expr::col(0).eq(Expr::col(1)).eval_bool(&t));
        assert!(Expr::col(0).le(Expr::lit(3)).eval_bool(&t));
        assert!(Expr::col(1).ge(Expr::lit(5)).eval_bool(&t));
        assert!(Expr::col(1).gt(Expr::lit(4)).eval_bool(&t));
    }

    #[test]
    fn null_propagates_and_predicate_rejects_unknown() {
        let t = tup![Value::Null, 5];
        let p = Expr::col(0).eq(Expr::lit(5));
        assert_eq!(p.eval(&t), Value::Null);
        assert!(!p.eval_bool(&t));
        assert!(!p.clone().not().eval_bool(&t), "NOT unknown is unknown");
        assert!(Expr::IsNull(Box::new(Expr::col(0))).eval_bool(&t));
    }

    #[test]
    fn three_valued_and_or() {
        let t = tup![Value::Null];
        let unknown = Expr::col(0).eq(Expr::lit(1));
        let tru = Expr::lit(1).eq(Expr::lit(1));
        let fls = Expr::lit(1).eq(Expr::lit(2));
        assert_eq!(
            unknown.clone().and(fls.clone()).eval(&t),
            Value::Bool(false)
        );
        assert_eq!(unknown.clone().and(tru.clone()).eval(&t), Value::Null);
        assert_eq!(unknown.clone().or(tru).eval(&t), Value::Bool(true));
        assert_eq!(unknown.or(fls).eval(&t), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let t = tup![7, 3];
        let modexp = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Mod, Box::new(Expr::col(1)));
        assert_eq!(modexp.eval(&t), Value::Int(1));
        let div0 = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Mod, Box::new(Expr::lit(0)));
        assert_eq!(div0.eval(&t), Value::Null);
        let add = Expr::Arith(Box::new(Expr::col(0)), ArithOp::Add, Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t), Value::Int(10));
    }

    #[test]
    fn shift_and_max_col() {
        let e = Expr::col(1)
            .eq(Expr::col(3))
            .and(Expr::col(0).lt(Expr::lit(9)));
        assert_eq!(e.max_col(), Some(3));
        let s = e.shift_cols(10);
        assert_eq!(s.max_col(), Some(13));
    }
}
