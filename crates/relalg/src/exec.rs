//! Propagation-query execution: SPJ joins over slot row sets.
//!
//! A propagation query has the same *shape* as the view definition — `n`
//! slots joined by equi predicates, an optional selection, and a projection
//! — with each slot bound to either a base table or a delta range (paper
//! §2). This module plans and executes that shape over already-fetched slot
//! row sets: a left-deep hash-join pipeline with residual predicates as
//! filters, then selection, then projection.

use crate::expr::Expr;
use crate::ops::{self, JoinIndex};
use parking_lot::RwLock;
use rolljoin_common::{DeltaRow, Error, Result, Schema, TableId, TimeInterval};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The join shape shared by a view definition and all its propagation
/// queries.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Per-slot schemas; slot `i`'s columns occupy the global index range
    /// `[offset(i), offset(i) + arity_i)`.
    pub slot_schemas: Vec<Schema>,
    /// Equi-join predicates as global column index pairs.
    pub equi: Vec<(usize, usize)>,
    /// Optional selection over the global column space.
    pub filter: Option<Expr>,
    /// Projection (global column indexes). Count and timestamp are always
    /// carried through (paper §4's projection requirement).
    pub projection: Vec<usize>,
}

impl JoinSpec {
    /// Number of join slots.
    pub fn arity(&self) -> usize {
        self.slot_schemas.len()
    }

    /// Global column offset of each slot (plus one past the end).
    pub fn offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.slot_schemas.len() + 1);
        let mut acc = 0;
        for s in &self.slot_schemas {
            offs.push(acc);
            acc += s.arity();
        }
        offs.push(acc);
        offs
    }

    /// Total width of the global column space.
    pub fn total_cols(&self) -> usize {
        self.slot_schemas.iter().map(Schema::arity).sum()
    }

    /// Which slot owns global column `col`.
    fn slot_of(&self, col: usize, offsets: &[usize]) -> usize {
        offsets
            .windows(2)
            .position(|w| col >= w[0] && col < w[1])
            .expect("column index validated")
    }

    /// Output schema after projection.
    pub fn output_schema(&self) -> Schema {
        let mut global = Schema::empty();
        for s in &self.slot_schemas {
            global = global.concat(s);
        }
        global.project(&self.projection)
    }

    /// Validate column references.
    pub fn validate(&self) -> Result<()> {
        if self.slot_schemas.is_empty() {
            return Err(Error::Invalid("join needs at least one slot".into()));
        }
        let total = self.total_cols();
        for &(a, b) in &self.equi {
            if a >= total || b >= total {
                return Err(Error::Invalid(format!(
                    "equi pair ({a},{b}) out of range (total {total})"
                )));
            }
        }
        for &c in &self.projection {
            if c >= total {
                return Err(Error::Invalid(format!(
                    "projection column {c} out of range (total {total})"
                )));
            }
        }
        if let Some(f) = &self.filter {
            if let Some(m) = f.max_col() {
                if m >= total {
                    return Err(Error::Invalid(format!(
                        "filter references column {m}, total {total}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Execution statistics, consumed by the experiment harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows fetched per slot.
    pub rows_in: Vec<usize>,
    /// Rows produced after join+selection+projection.
    pub rows_out: usize,
}

impl ExecStats {
    /// Total input rows across slots.
    pub fn total_in(&self) -> usize {
        self.rows_in.iter().sum()
    }

    /// Merge another query's stats into this one (accumulators).
    pub fn absorb(&mut self, other: &ExecStats) {
        if self.rows_in.len() < other.rows_in.len() {
            self.rows_in.resize(other.rows_in.len(), 0);
        }
        for (a, b) in self.rows_in.iter_mut().zip(&other.rows_in) {
            *a += b;
        }
        self.rows_out += other.rows_out;
    }
}

/// One slot's fetched rows, owned or shared.
///
/// Shared slots come from the step-scoped scan cache: several constituent
/// queries of one propagation step read the same delta range, so the rows
/// arrive as a shared `Arc` with the `(table, interval, store version)`
/// identity that produced them — which doubles as the [`BuildCache`] key
/// when the slot lands on the build side of a join. The version is the
/// delta store's content version at fetch time: a φ-compaction between
/// build and reuse bumps it, so a stale prebuilt hash index can never be
/// served against a recompacted range.
pub enum SlotInput {
    /// Rows owned by this query alone.
    Owned(Vec<DeltaRow>),
    /// Rows shared across queries, with their delta-range identity and the
    /// delta store's content version at fetch time.
    Shared(Arc<Vec<DeltaRow>>, TableId, TimeInterval, u64),
}

impl SlotInput {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            SlotInput::Owned(v) => v.len(),
            SlotInput::Shared(v, ..) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[DeltaRow] {
        match self {
            SlotInput::Owned(v) => v,
            SlotInput::Shared(v, ..) => v,
        }
    }

    /// Rows by value (clones shared rows — cheap `Arc` bumps).
    fn into_rows(self) -> Vec<DeltaRow> {
        match self {
            SlotInput::Owned(v) => v,
            SlotInput::Shared(v, ..) => Arc::try_unwrap(v).unwrap_or_else(|arc| (*arc).clone()),
        }
    }
}

/// Counters of the build-side cache (point-in-time copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildCacheStats {
    /// Join build sides served from the cache.
    pub hits: u64,
    /// Join build sides hashed fresh.
    pub misses: u64,
    /// Live indexes.
    pub entries: u64,
}

impl BuildCacheStats {
    /// Hit fraction in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Step-scoped cache of hash-join build sides.
///
/// Keyed by `(table, interval, store version, build columns)`: the same
/// delta range used as a build side with the same join columns across
/// constituent queries is hashed once and probed many times. Entries are
/// immutable for the same reason scan-cache entries are (delta ranges at
/// or below the capture HWM never change *for a given store version*); the
/// version in the key makes the cache φ-compaction-safe — compacting a
/// store between build and reuse changes the version, so the next lookup
/// misses and rebuilds instead of probing a stale index.
/// [`BuildCache::advance_epoch`] bounds memory to one propagation step's
/// working set.
#[derive(Default)]
pub struct BuildCache {
    inner: RwLock<BuildCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct BuildCacheInner {
    epoch: u64,
    indexes: HashMap<(TableId, TimeInterval, u64, Vec<usize>), Arc<JoinIndex>>,
}

impl BuildCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all entries materialized under a capture HWM below `hwm`
    /// (same step-scoping rule as the scan cache).
    pub fn advance_epoch(&self, hwm: u64) {
        if self.inner.read().epoch >= hwm {
            return;
        }
        let mut inner = self.inner.write();
        if inner.epoch < hwm {
            inner.epoch = hwm;
            inner.indexes.clear();
        }
    }

    /// Get the index for `(table, interval, version, keys)`, building it
    /// from `rows` on a miss. `version` is the delta store's content
    /// version at fetch time — a compaction bumps it and invalidates
    /// entries built over the pre-compaction rows.
    pub fn get_or_build(
        &self,
        table: TableId,
        interval: TimeInterval,
        version: u64,
        keys: &[usize],
        rows: &[DeltaRow],
    ) -> Arc<JoinIndex> {
        let key = (table, interval, version, keys.to_vec());
        if let Some(idx) = self.inner.read().indexes.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return idx.clone();
        }
        let idx = Arc::new(JoinIndex::build(rows, keys.to_vec()));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        inner
            .indexes
            .entry(key)
            .or_insert_with(|| idx.clone())
            .clone()
    }

    /// Number of live indexes.
    pub fn len(&self) -> usize {
        self.inner.read().indexes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> BuildCacheStats {
        BuildCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// Execute the join over per-slot row sets. `sign` scales output counts
/// (−1 for compensation queries).
pub fn execute(
    slot_rows: Vec<Vec<DeltaRow>>,
    spec: &JoinSpec,
    sign: i64,
) -> Result<(Vec<DeltaRow>, ExecStats)> {
    execute_shared(
        slot_rows.into_iter().map(SlotInput::Owned).collect(),
        spec,
        sign,
        None,
    )
}

/// Execute the join over owned or shared per-slot row sets, optionally
/// consulting `build_cache` for prebuilt hash indexes on shared build
/// sides. Semantics are identical to [`execute`].
pub fn execute_shared(
    slot_rows: Vec<SlotInput>,
    spec: &JoinSpec,
    sign: i64,
    build_cache: Option<&BuildCache>,
) -> Result<(Vec<DeltaRow>, ExecStats)> {
    spec.validate()?;
    if slot_rows.len() != spec.arity() {
        return Err(Error::Invalid(format!(
            "{} slot row sets for {}-way join",
            slot_rows.len(),
            spec.arity()
        )));
    }
    let offsets = spec.offsets();
    let rows_in: Vec<usize> = slot_rows.iter().map(SlotInput::len).collect();

    // Assign each equi pair to the first left-deep step where both sides
    // are available; pairs within a single slot become residual filters.
    let n = spec.arity();
    let mut step_keys: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (acc_col, local_col)
    let mut residual: Vec<(usize, usize)> = Vec::new();
    for &(a, b) in &spec.equi {
        let (sa, sb) = (spec.slot_of(a, &offsets), spec.slot_of(b, &offsets));
        if sa == sb {
            residual.push((a, b));
            continue;
        }
        // The later slot decides the join step.
        let (acc_col, late_col, late_slot) = if sa < sb { (a, b, sb) } else { (b, a, sa) };
        step_keys[late_slot].push((acc_col, late_col - offsets[late_slot]));
    }

    let mut rows_iter = slot_rows.into_iter();
    let mut pipeline: ops::RowIter = match rows_iter.next().expect("≥1 slot") {
        SlotInput::Owned(rows) => ops::scan(rows),
        SlotInput::Shared(rows, ..) => ops::scan_shared(rows),
    };
    for (k, build) in rows_iter.enumerate() {
        let k = k + 1;
        let (probe_keys, build_keys): (Vec<usize>, Vec<usize>) =
            step_keys[k].iter().copied().unzip();
        pipeline = match (&build, build_cache) {
            // A shared build side with a cache: hash it once per step.
            (SlotInput::Shared(rows, table, interval, version), Some(cache)) => {
                let idx = cache.get_or_build(*table, *interval, *version, &build_keys, rows);
                ops::hash_join_indexed(pipeline, idx, probe_keys)
            }
            _ => ops::hash_join(pipeline, build.into_rows(), probe_keys, build_keys),
        };
    }
    for (a, b) in residual {
        pipeline = ops::filter(pipeline, Expr::col(a).eq(Expr::col(b)));
    }
    if let Some(f) = &spec.filter {
        pipeline = ops::filter(pipeline, f.clone());
    }
    if sign != 1 {
        pipeline = ops::scale(pipeline, sign);
    }
    pipeline = ops::project(pipeline, spec.projection.clone());

    let out: Vec<DeltaRow> = pipeline.collect();
    let stats = ExecStats {
        rows_in,
        rows_out: out.len(),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net_effect::net_effect;
    use rolljoin_common::{tup, ColumnType, Tuple};

    fn schema2(a: &str, b: &str) -> Schema {
        Schema::new([(a, ColumnType::Int), (b, ColumnType::Int)])
    }

    fn base_rows(rows: &[(i64, i64)]) -> Vec<DeltaRow> {
        rows.iter()
            .map(|&(x, y)| DeltaRow::base(tup![x, y]))
            .collect()
    }

    fn spec_rs() -> JoinSpec {
        // R(a,b) ⋈ S(c,d) on b = c, project (a, d).
        JoinSpec {
            slot_schemas: vec![schema2("a", "b"), schema2("c", "d")],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        }
    }

    #[test]
    fn two_way_equi_join() {
        let r = base_rows(&[(1, 10), (2, 20), (3, 30)]);
        let s = base_rows(&[(10, 100), (20, 200), (20, 201)]);
        let (out, stats) = execute(vec![r, s], &spec_rs(), 1).unwrap();
        let net = net_effect(out);
        assert_eq!(net.len(), 3);
        assert_eq!(net[&tup![1, 100]], 1);
        assert_eq!(net[&tup![2, 200]], 1);
        assert_eq!(net[&tup![2, 201]], 1);
        assert_eq!(stats.rows_in, vec![3, 3]);
        assert_eq!(stats.rows_out, 3);
    }

    #[test]
    fn shared_execution_matches_owned_and_reuses_builds() {
        let spec = JoinSpec {
            slot_schemas: vec![schema2("a", "b"), schema2("b", "c"), schema2("c", "d")],
            equi: vec![(1, 2), (3, 4)],
            filter: None,
            projection: vec![0, 5],
        };
        let r = base_rows(&[(1, 10), (2, 11)]);
        let s = base_rows(&[(10, 100), (11, 101)]);
        let t = base_rows(&[(100, 7), (101, 8)]);
        let (owned, owned_stats) =
            execute(vec![r.clone(), s.clone(), t.clone()], &spec, -1).unwrap();

        let cache = BuildCache::new();
        let (t_id, iv) = (TableId(7), TimeInterval::new(0, 5));
        let shared_slots = || {
            vec![
                SlotInput::Owned(r.clone()),
                SlotInput::Shared(Arc::new(s.clone()), TableId(6), iv, 1),
                SlotInput::Shared(Arc::new(t.clone()), t_id, iv, 1),
            ]
        };
        let (shared, shared_stats) =
            execute_shared(shared_slots(), &spec, -1, Some(&cache)).unwrap();
        // Compare φ over borrowed rows: net_effect_ref clones one tuple
        // per group instead of every row.
        assert_eq!(
            crate::net_effect::net_effect_ref(&owned),
            crate::net_effect::net_effect_ref(&shared)
        );
        assert_eq!(owned_stats, shared_stats);
        // Two shared build sides were hashed fresh; re-running hits both.
        assert_eq!(
            cache.stats(),
            BuildCacheStats {
                hits: 0,
                misses: 2,
                entries: 2
            }
        );
        let (again, _) = execute_shared(shared_slots(), &spec, -1, Some(&cache)).unwrap();
        assert_eq!(again.len(), shared_stats.rows_out);
        assert_eq!(cache.stats().hits, 2);
        // Advancing the epoch past the entries clears them.
        cache.advance_epoch(9);
        assert!(cache.is_empty());
        cache.advance_epoch(9);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn build_cache_misses_on_version_change() {
        // A φ-compaction between build and reuse bumps the store version;
        // the same (table, interval, keys) must then rebuild rather than
        // serve the index hashed over the pre-compaction rows.
        let spec = spec_rs();
        let r = base_rows(&[(1, 10)]);
        let (t_id, iv) = (TableId(3), TimeInterval::new(0, 9));
        let cache = BuildCache::new();

        // Pre-compaction build side: +1/−1 churn on (10, 100).
        let churn = vec![
            DeltaRow::change(1, 1, tup![10, 100]),
            DeltaRow::change(2, -1, tup![10, 100]),
            DeltaRow::change(3, 1, tup![10, 101]),
        ];
        let slots = vec![
            SlotInput::Owned(r.clone()),
            SlotInput::Shared(Arc::new(churn), t_id, iv, 1),
        ];
        let (out, _) = execute_shared(slots, &spec, 1, Some(&cache)).unwrap();
        assert_eq!(net_effect(out).len(), 1);
        assert_eq!(cache.stats().misses, 1);

        // Post-compaction rows under a bumped version: the entry for
        // version 1 must not be reused.
        let compacted = vec![DeltaRow::change(3, 1, tup![10, 101])];
        let slots = vec![
            SlotInput::Owned(r),
            SlotInput::Shared(Arc::new(compacted), t_id, iv, 2),
        ];
        let (out, _) = execute_shared(slots, &spec, 1, Some(&cache)).unwrap();
        let net = net_effect(out);
        assert_eq!(net.len(), 1);
        assert_eq!(net[&tup![1, 101]], 1);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, 2, 2),
            "version change is a miss, not a stale hit"
        );
    }

    #[test]
    fn three_way_chain_join() {
        // R(a,b) ⋈ S(b,c) ⋈ T(c,d): global cols R=(0,1) S=(2,3) T=(4,5).
        let spec = JoinSpec {
            slot_schemas: vec![schema2("a", "b"), schema2("b", "c"), schema2("c", "d")],
            equi: vec![(1, 2), (3, 4)],
            filter: None,
            projection: vec![0, 5],
        };
        let r = base_rows(&[(1, 10)]);
        let s = base_rows(&[(10, 100), (10, 101)]);
        let t = base_rows(&[(100, 7), (101, 8), (999, 9)]);
        let (out, _) = execute(vec![r, s, t], &spec, 1).unwrap();
        let net = net_effect(out);
        assert_eq!(net.len(), 2);
        assert_eq!(net[&tup![1, 7]], 1);
        assert_eq!(net[&tup![1, 8]], 1);
    }

    #[test]
    fn selection_and_sign() {
        let spec = JoinSpec {
            filter: Some(Expr::col(0).gt(Expr::lit(1))),
            ..spec_rs()
        };
        let r = base_rows(&[(1, 10), (2, 10)]);
        let s = base_rows(&[(10, 100)]);
        let (out, _) = execute(vec![r, s], &spec, -1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, -1);
        assert_eq!(out[0].tuple, tup![2, 100]);
    }

    #[test]
    fn counts_multiply_and_min_ts_wins() {
        let spec = spec_rs();
        let r = vec![DeltaRow::change(9, -1, tup![1, 10])];
        let s = vec![DeltaRow::change(4, -2, tup![10, 100])];
        let (out, _) = execute(vec![r, s], &spec, 1).unwrap();
        assert_eq!(out[0].count, 2);
        assert_eq!(out[0].ts, Some(4));
    }

    #[test]
    fn residual_same_slot_predicate() {
        // R(a,b) with a = b as an in-slot equi pair.
        let spec = JoinSpec {
            slot_schemas: vec![schema2("a", "b")],
            equi: vec![(0, 1)],
            filter: None,
            projection: vec![0],
        };
        let r = base_rows(&[(1, 1), (2, 3)]);
        let (out, _) = execute(vec![r], &spec, 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple, tup![1]);
    }

    #[test]
    fn cross_join_when_no_keys() {
        let spec = JoinSpec {
            slot_schemas: vec![schema2("a", "b"), schema2("c", "d")],
            equi: vec![],
            filter: None,
            projection: vec![0, 2],
        };
        let r = base_rows(&[(1, 0), (2, 0)]);
        let s = base_rows(&[(7, 0), (8, 0), (9, 0)]);
        let (out, _) = execute(vec![r, s], &spec, 1).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn validation_catches_bad_references() {
        let mut spec = spec_rs();
        spec.equi = vec![(1, 99)];
        assert!(spec.validate().is_err());
        let mut spec = spec_rs();
        spec.projection = vec![99];
        assert!(spec.validate().is_err());
        let mut spec = spec_rs();
        spec.filter = Some(Expr::col(99).eq(Expr::lit(1)));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn output_schema_projects_names() {
        let s = spec_rs().output_schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.name(0), "a");
        assert_eq!(s.name(1), "d");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ExecStats {
            rows_in: vec![1, 2],
            rows_out: 3,
        };
        let b = ExecStats {
            rows_in: vec![10, 20, 30],
            rows_out: 5,
        };
        a.absorb(&b);
        assert_eq!(a.rows_in, vec![11, 22, 30]);
        assert_eq!(a.rows_out, 8);
        assert_eq!(a.total_in(), 63);
    }

    #[test]
    fn join_with_deleted_rows_cancels_in_net_effect() {
        // Insert then delete the same S row: the join contributions cancel.
        let spec = spec_rs();
        let r = base_rows(&[(1, 10)]);
        let s = vec![
            DeltaRow::change(2, 1, tup![10, 100]),
            DeltaRow::change(5, -1, tup![10, 100]),
        ];
        let (out, _) = execute(vec![r, s], &spec, 1).unwrap();
        assert_eq!(out.len(), 2);
        assert!(net_effect(out).is_empty());
        let _ = Tuple::empty();
    }
}
