//! Slot sources: where a propagation query's slots read their rows.
//!
//! A slot is bound to either the **base table** (read transactionally at
//! the query's execution time, under a table-granularity S lock held to
//! commit so "seen at the commit time" is literally true), a **delta
//! range** `R_{a,b}` (an immutable, capture-complete slice — no lock
//! needed), or, for oracles and the paper's unrealizable Equation 2
//! baseline only, a **time-travel** snapshot `R_a` reconstructed from the
//! delta history. A keyed probe ([`SlotSource::BaseKeyed`]) reads the base
//! table restricted to an index key set; under striped lock granularity it
//! takes IS at the table plus S on only the stripes its keys hash to, so
//! it conflicts with updaters of colliding keys instead of the whole table.

use crate::exec::SlotInput;
use rolljoin_common::{Csn, DeltaRow, Result, TableId, TimeInterval, Value};
use rolljoin_storage::{Engine, ScanCache, Txn};
use std::sync::Arc;

/// Binding of one join slot to a row source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotSource {
    /// The base table at the executing transaction's time (`R^i`).
    Base(TableId),
    /// The delta range `R^i_{a,b}` — `σ_{a,b}(Δ^{R^i})`.
    Delta(TableId, TimeInterval),
    /// Snapshot `R^i_a` via time travel (oracle / Eq. 2 only).
    AsOf(TableId, Csn),
    /// The base table restricted by an index probe: only rows whose `col`
    /// matches one of `keys` — a semi-join pushdown from an
    /// already-fetched neighbor slot (a delta, or a base slot itself
    /// fetched keyed), sound because every join result must match the
    /// neighbor on the equi column. This is what makes
    /// maintenance-transaction size — and, under striped locking, the
    /// locked footprint — track the delta size instead of the table size.
    BaseKeyed {
        table: TableId,
        col: usize,
        keys: Arc<Vec<Value>>,
    },
    /// A delta range restricted by a keyed time-range index probe: only
    /// rows of `σ_{a,b}(Δ^{R^i})` whose `col` matches one of `keys` — the
    /// delta-side analogue of [`SlotSource::BaseKeyed`]. Each key resolves
    /// to a binary-search slice of that key's CSN-ordered posting list, so
    /// cost tracks matching rows instead of the whole range. Under striped
    /// granularity the probe takes the same IS + key-stripe S footprint as
    /// a keyed base probe; below the capture HWM the read itself is
    /// lock-free against immutable history.
    DeltaKeyed {
        table: TableId,
        interval: TimeInterval,
        col: usize,
        keys: Arc<Vec<Value>>,
    },
}

impl std::fmt::Display for SlotSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotSource::Base(t) => write!(f, "{t}"),
            SlotSource::BaseKeyed { table, col, keys } => {
                write!(f, "{table}[col{col}∈{} keys]", keys.len())
            }
            SlotSource::Delta(t, iv) => write!(f, "Δ{t}{iv}"),
            SlotSource::DeltaKeyed {
                table,
                interval,
                col,
                keys,
            } => {
                write!(f, "Δ{table}{interval}[col{col}∈{} keys]", keys.len())
            }
            SlotSource::AsOf(t, c) => write!(f, "{t}@{c}"),
        }
    }
}

/// Fetch the rows of one slot. Base reads go through `txn` (acquiring a
/// table S lock for full scans, or — under striped granularity — IS plus
/// key-stripe S locks for keyed probes); delta/as-of reads are lock-free
/// against immutable history.
pub fn fetch(engine: &Engine, txn: &mut Txn, source: &SlotSource) -> Result<Vec<DeltaRow>> {
    match source {
        SlotSource::Base(table) => {
            let counts = txn.scan_counts(*table)?;
            Ok(counts
                .into_iter()
                .map(|(tuple, count)| DeltaRow {
                    ts: None,
                    count,
                    tuple,
                })
                .collect())
        }
        SlotSource::Delta(table, interval) => engine.delta_range(*table, *interval),
        SlotSource::AsOf(table, csn) => {
            let counts = engine.scan_asof(*table, *csn)?;
            Ok(counts
                .into_iter()
                .map(|(tuple, count)| DeltaRow {
                    ts: None,
                    count,
                    tuple,
                })
                .collect())
        }
        SlotSource::BaseKeyed { table, col, keys } => {
            let hits = txn.lookup_keys(*table, *col, keys)?;
            Ok(hits
                .into_iter()
                .map(|(tuple, count)| DeltaRow {
                    ts: None,
                    count,
                    tuple,
                })
                .collect())
        }
        SlotSource::DeltaKeyed {
            table,
            interval,
            col,
            keys,
        } => {
            match txn.delta_lookup_keys(*table, *interval, *col, keys)? {
                Some(rows) => Ok(rows),
                // No keyed index on that column (e.g. a planner race with
                // recovery): fall back to filtering the full range — same
                // rows, scan cost.
                None => {
                    let set: std::collections::HashSet<&Value> = keys.iter().collect();
                    Ok(engine
                        .delta_range(*table, *interval)?
                        .into_iter()
                        .filter(|r| set.contains(r.tuple.get(*col)))
                        .collect())
                }
            }
        }
    }
}

/// Fetch one slot, routing delta-range reads through the step-scoped
/// [`ScanCache`]. The same range requested by several constituent queries
/// of one propagation step is materialized once and shared; cache entries
/// are keyed on the delta store's content version, so a prune or
/// φ-compaction between steps invalidates them instead of serving stale
/// rows. Non-delta sources are fetched fresh each time (base reads are
/// transactional and must see the executing transaction's state).
///
/// With `compact` set, a freshly materialized delta range is φ-reduced
/// ([`crate::net_effect::compact_rows`]) *before* it enters the cache, so
/// every consumer of the entry — join probes, build sides, the cache
/// itself — works on net churn rather than raw churn.
///
/// Returns the slot input, whether the rows came from the cache, and the
/// raw (pre-compaction) row count of the range, for stats.
pub fn fetch_cached(
    engine: &Engine,
    txn: &mut Txn,
    source: &SlotSource,
    cache: &ScanCache,
    compact: bool,
) -> Result<(SlotInput, bool, usize)> {
    match source {
        SlotSource::Delta(table, interval) => {
            let version = engine.delta_store(*table)?.version();
            let mut raw_rows = 0usize;
            let (rows, hit) = cache.get_or_fetch(*table, *interval, version, || {
                let fetched = engine.delta_range(*table, *interval)?;
                raw_rows = fetched.len();
                if compact {
                    Ok(crate::net_effect::compact_rows(&fetched).0)
                } else {
                    Ok(fetched)
                }
            })?;
            if hit {
                raw_rows = rows.len();
            }
            Ok((
                SlotInput::Shared(rows, *table, *interval, version),
                hit,
                raw_rows,
            ))
        }
        // Keyed delta probes are key-set-specific, so they bypass the scan
        // cache (an entry would only ever serve the query that made it) but
        // still get φ-compacted so downstream joins see net churn.
        keyed @ SlotSource::DeltaKeyed { .. } => {
            let fetched = fetch(engine, txn, keyed)?;
            let raw_rows = fetched.len();
            let rows = if compact {
                crate::net_effect::compact_rows(&fetched).0
            } else {
                fetched
            };
            Ok((SlotInput::Owned(rows), false, raw_rows))
        }
        other => {
            let rows = fetch(engine, txn, other)?;
            let n = rows.len();
            Ok((SlotInput::Owned(rows), false, n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::{tup, ColumnType, Schema};

    fn engine() -> (Engine, TableId) {
        let e = Engine::new();
        let t = e
            .create_table("r", Schema::new([("a", ColumnType::Int)]))
            .unwrap();
        (e, t)
    }

    #[test]
    fn base_fetch_compresses_duplicates() {
        let (e, t) = engine();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        w.insert(t, tup![1]).unwrap();
        w.insert(t, tup![2]).unwrap();
        w.commit().unwrap();
        let mut txn = e.begin();
        let rows = fetch(&e, &mut txn, &SlotSource::Base(t)).unwrap();
        assert_eq!(rows.len(), 2);
        let one = rows.iter().find(|r| r.tuple == tup![1]).unwrap();
        assert_eq!(one.count, 2);
        assert_eq!(one.ts, None);
    }

    #[test]
    fn delta_fetch_respects_interval() {
        let (e, t) = engine();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        let c1 = w.commit().unwrap();
        let mut w = e.begin();
        w.delete_one(t, &tup![1]).unwrap();
        let c2 = w.commit().unwrap();
        e.capture_catch_up().unwrap();
        let mut txn = e.begin();
        let rows = fetch(
            &e,
            &mut txn,
            &SlotSource::Delta(t, TimeInterval::new(c1, c2)),
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, -1);
    }

    #[test]
    fn fetch_cached_shares_delta_ranges() {
        let (e, t) = engine();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        let c1 = w.commit().unwrap();
        e.capture_catch_up().unwrap();
        let cache = ScanCache::new();
        let src = SlotSource::Delta(t, TimeInterval::new(0, c1));
        let mut txn = e.begin();
        let (first, hit, raw) = fetch_cached(&e, &mut txn, &src, &cache, false).unwrap();
        assert!(!hit);
        assert_eq!(raw, 1);
        let (second, hit, _) = fetch_cached(&e, &mut txn, &src, &cache, false).unwrap();
        assert!(hit);
        match (&first, &second) {
            (SlotInput::Shared(a, ta, iva, va), SlotInput::Shared(b, tb, ivb, vb)) => {
                assert!(Arc::ptr_eq(a, b));
                assert_eq!((ta, iva, va), (tb, ivb, vb));
                assert_eq!(a.len(), 1);
            }
            _ => panic!("delta fetch should be shared"),
        }
        // Base reads bypass the cache.
        let (base, hit, _) =
            fetch_cached(&e, &mut txn, &SlotSource::Base(t), &cache, false).unwrap();
        assert!(!hit);
        assert!(matches!(base, SlotInput::Owned(_)));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn fetch_cached_compacts_before_caching() {
        let (e, t) = engine();
        // Hot-key churn netting to +1 of tup![1] plus +1 of tup![2].
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        w.commit().unwrap();
        let mut w = e.begin();
        w.delete_one(t, &tup![1]).unwrap();
        w.commit().unwrap();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        w.insert(t, tup![2]).unwrap();
        let c3 = w.commit().unwrap();
        e.capture_catch_up().unwrap();
        let cache = ScanCache::new();
        let src = SlotSource::Delta(t, TimeInterval::new(0, c3));
        let mut txn = e.begin();
        let (input, hit, raw) = fetch_cached(&e, &mut txn, &src, &cache, true).unwrap();
        assert!(!hit);
        assert_eq!(raw, 4, "raw churn reported for stats");
        assert_eq!(input.len(), 2, "cache entry holds the φ-reduced run");
        // The *compacted* rows are what the cache serves from now on.
        let (again, hit, raw) = fetch_cached(&e, &mut txn, &src, &cache, true).unwrap();
        assert!(hit);
        assert_eq!(raw, 2);
        assert_eq!(again.len(), 2);
        // Min-timestamp rule: the surviving tup![1] row carries ts = 1.
        match &input {
            SlotInput::Shared(rows, ..) => {
                let one = rows.iter().find(|r| r.tuple == tup![1]).unwrap();
                assert_eq!((one.ts, one.count), (Some(1), 1));
            }
            _ => panic!("delta fetch should be shared"),
        }
    }

    #[test]
    fn delta_keyed_fetch_matches_filtered_scan() {
        let (e, t) = engine();
        for i in 0..6i64 {
            let mut w = e.begin();
            w.insert(t, tup![i % 3]).unwrap();
            w.commit().unwrap();
        }
        e.capture_catch_up().unwrap();
        e.create_delta_index(t, 0).unwrap();
        let iv = TimeInterval::new(0, e.capture_hwm());
        let keys = Arc::new(vec![Value::Int(0), Value::Int(2)]);
        let src = SlotSource::DeltaKeyed {
            table: t,
            interval: iv,
            col: 0,
            keys: keys.clone(),
        };
        let mut txn = e.begin();
        let keyed = fetch(&e, &mut txn, &src).unwrap();
        let expect: Vec<DeltaRow> = fetch(&e, &mut txn, &SlotSource::Delta(t, iv))
            .unwrap()
            .into_iter()
            .filter(|r| keys.contains(r.tuple.get(0)))
            .collect();
        assert_eq!(keyed, expect);
        assert_eq!(keyed.len(), 4);
    }

    #[test]
    fn delta_keyed_fetch_falls_back_without_index() {
        let (e, t) = engine();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        w.insert(t, tup![2]).unwrap();
        let c = w.commit().unwrap();
        e.capture_catch_up().unwrap();
        // No index on col 0: the keyed source degrades to a filtered scan.
        let src = SlotSource::DeltaKeyed {
            table: t,
            interval: TimeInterval::new(0, c),
            col: 0,
            keys: Arc::new(vec![Value::Int(2)]),
        };
        let mut txn = e.begin();
        let rows = fetch(&e, &mut txn, &src).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tuple, tup![2]);
        assert_eq!(format!("{src}"), format!("Δ{t}(0,{c}][col0∈1 keys]"));
    }

    #[test]
    fn fetch_cached_keyed_delta_is_owned_and_compacted() {
        let (e, t) = engine();
        // Churn on key 1 netting to zero, plus a surviving key-2 row.
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        w.commit().unwrap();
        let mut w = e.begin();
        w.delete_one(t, &tup![1]).unwrap();
        w.insert(t, tup![2]).unwrap();
        let c = w.commit().unwrap();
        e.capture_catch_up().unwrap();
        e.create_delta_index(t, 0).unwrap();
        let cache = ScanCache::new();
        let src = SlotSource::DeltaKeyed {
            table: t,
            interval: TimeInterval::new(0, c),
            col: 0,
            keys: Arc::new(vec![Value::Int(1), Value::Int(2)]),
        };
        let mut txn = e.begin();
        let (input, hit, raw) = fetch_cached(&e, &mut txn, &src, &cache, true).unwrap();
        assert!(!hit, "keyed probes bypass the scan cache");
        assert_eq!(raw, 3, "raw churn reported for stats");
        assert_eq!(input.len(), 1, "φ-compaction nets the key-1 churn away");
        assert!(matches!(input, SlotInput::Owned(_)));
        assert_eq!(cache.stats().misses, 0, "scan cache untouched");
    }

    #[test]
    fn asof_fetch_time_travels() {
        let (e, t) = engine();
        let mut w = e.begin();
        w.insert(t, tup![1]).unwrap();
        let c1 = w.commit().unwrap();
        let mut w = e.begin();
        w.delete_one(t, &tup![1]).unwrap();
        w.commit().unwrap();
        e.capture_catch_up().unwrap();
        let mut txn = e.begin();
        let rows = fetch(&e, &mut txn, &SlotSource::AsOf(t, c1)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 1);
        let rows = fetch(&e, &mut txn, &SlotSource::AsOf(t, 0)).unwrap();
        assert!(rows.is_empty());
    }
}
