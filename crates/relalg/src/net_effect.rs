//! The net-effect operator `φ` (paper Definition 4.1) and multiset-table
//! algebra helpers.
//!
//! `φ(R)` groups a delta table on all attributes except count and
//! timestamp, sums counts within each group, nulls the timestamps, and
//! drops zero-count groups. It is the canonicalization that makes two
//! representations of the same change comparable, and it is the vocabulary
//! of every correctness statement in the paper (Definition 4.2, Lemmas
//! 4.1–4.2, Theorems 4.1–4.3) — so it is also the vocabulary of this
//! reproduction's oracles and property tests.

use rolljoin_common::{DeltaRow, Tuple};
use std::collections::{BTreeMap, HashMap};

/// Canonical net effect: `tuple → summed count`, zero counts dropped.
///
/// A `BTreeMap` so two net effects compare (and print) deterministically.
pub type NetEffect = BTreeMap<Tuple, i64>;

/// `φ(R)` over an iterator of delta rows.
pub fn net_effect<I>(rows: I) -> NetEffect
where
    I: IntoIterator<Item = DeltaRow>,
{
    let mut out = NetEffect::new();
    for row in rows {
        let e = out.entry(row.tuple).or_insert(0);
        *e += row.count;
        // Defer zero-removal to the end: intermediate zeros may be revived.
    }
    out.retain(|_, c| *c != 0);
    out
}

/// `φ` over borrowed rows. Clones each tuple only on its group's first
/// occurrence (a cheap `Arc` bump, but done once per *group*, not per
/// row), never the full row — this is the form hot paths should use.
pub fn net_effect_ref<'a, I>(rows: I) -> NetEffect
where
    I: IntoIterator<Item = &'a DeltaRow>,
{
    let mut out = NetEffect::new();
    for row in rows {
        match out.get_mut(&row.tuple) {
            Some(e) => *e += row.count,
            None => {
                out.insert(row.tuple.clone(), row.count);
            }
        }
    }
    out.retain(|_, c| *c != 0);
    out
}

/// Counters from one scan-level φ-compaction ([`compact_rows`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Rows in the raw stream.
    pub rows_in: usize,
    /// Rows after merging and zero-dropping.
    pub rows_out: usize,
    /// Groups whose counts summed to zero.
    pub zero_groups: usize,
}

impl CompactionOutcome {
    /// Rows eliminated before they could reach a join or cache.
    pub fn rows_saved(&self) -> usize {
        self.rows_in - self.rows_out
    }
}

/// Timestamp-preserving `φ` over a timestamp-ordered delta slice:
/// same-tuple rows merge into one row carrying the summed count and the
/// group's **minimum** timestamp (the §3.3 rule — the first occurrence,
/// since the input is ordered), and zero-sum groups are dropped. Output
/// stays timestamp-ordered.
///
/// Unlike [`net_effect`], which nulls timestamps and produces a canonical
/// map, the result is still a delta-row stream usable as a join input:
/// joined result rows inherit a real (minimum) timestamp, which the
/// propagation executor requires. The trade-off is granularity — within
/// the compacted stream, intermediate per-timestamp states are collapsed,
/// so the stream is exact for consumers reading it whole (a propagation
/// step reads its delta slot whole) but not for sub-interval reads.
pub fn compact_rows(rows: &[DeltaRow]) -> (Vec<DeltaRow>, CompactionOutcome) {
    let mut pos: HashMap<Tuple, usize> = HashMap::with_capacity(rows.len());
    let mut out: Vec<DeltaRow> = Vec::with_capacity(rows.len());
    for r in rows {
        match pos.get(&r.tuple) {
            Some(&i) => out[i].count += r.count,
            None => {
                pos.insert(r.tuple.clone(), out.len());
                out.push(r.clone());
            }
        }
    }
    let groups = out.len();
    out.retain(|r| r.count != 0);
    let outcome = CompactionOutcome {
        rows_in: rows.len(),
        rows_out: out.len(),
        zero_groups: groups - out.len(),
    };
    (out, outcome)
}

/// Multiset union `R + S` on canonical forms: counts add, zeros drop.
pub fn add(a: &NetEffect, b: &NetEffect) -> NetEffect {
    let mut out = a.clone();
    for (t, c) in b {
        let e = out.entry(t.clone()).or_insert(0);
        *e += c;
        if *e == 0 {
            out.remove(t);
        }
    }
    out
}

/// Negation `-R` on canonical form.
pub fn negate(a: &NetEffect) -> NetEffect {
    a.iter().map(|(t, c)| (t.clone(), -c)).collect()
}

/// Render a canonical form back into delta rows (null timestamps).
pub fn to_rows(a: &NetEffect) -> Vec<DeltaRow> {
    a.iter()
        .map(|(t, c)| DeltaRow {
            ts: None,
            count: *c,
            tuple: t.clone(),
        })
        .collect()
}

/// True iff the net effect describes a legal multiset (no negative counts)
/// — the state of a real table must satisfy this.
pub fn is_multiset(a: &NetEffect) -> bool {
    a.values().all(|c| *c > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    fn rows(spec: &[(i64, i64)]) -> Vec<DeltaRow> {
        // (count, key) pairs at arbitrary timestamps.
        spec.iter()
            .enumerate()
            .map(|(i, (c, k))| DeltaRow::change(i as u64 + 1, *c, tup![*k]))
            .collect()
    }

    #[test]
    fn groups_sums_and_drops_zeros() {
        let r = rows(&[(1, 10), (2, 10), (-3, 10), (1, 20)]);
        let n = net_effect(r);
        assert_eq!(n.len(), 1);
        assert_eq!(n[&tup![20]], 1);
    }

    #[test]
    fn ref_form_matches_owned_form() {
        let r = rows(&[(1, 10), (2, 10), (-3, 10), (1, 20), (-1, 30)]);
        assert_eq!(net_effect_ref(&r), net_effect(r.clone()));
        assert_eq!(net_effect_ref(&Vec::new()), NetEffect::new());
    }

    #[test]
    fn compact_rows_merges_at_min_ts_and_drops_zeros() {
        // rows() stamps ts = position + 1.
        let r = rows(&[(1, 10), (1, 20), (2, 10), (-1, 20), (1, 30)]);
        let (c, o) = compact_rows(&r);
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].ts, c[0].count, &c[0].tuple), (Some(1), 3, &tup![10]));
        assert_eq!((c[1].ts, c[1].count, &c[1].tuple), (Some(5), 1, &tup![30]));
        assert_eq!((o.rows_in, o.rows_out, o.zero_groups), (5, 2, 1));
        assert_eq!(o.rows_saved(), 3);
        // φ of the compacted stream equals φ of the raw stream.
        assert_eq!(net_effect_ref(&c), net_effect_ref(&r));
    }

    #[test]
    fn compact_rows_is_idempotent() {
        let r = rows(&[(1, 1), (1, 1), (-2, 2), (1, 2)]);
        let (once, _) = compact_rows(&r);
        let (twice, o) = compact_rows(&once);
        assert_eq!(once, twice);
        assert_eq!(o.rows_saved(), 0);
    }

    #[test]
    fn idempotent() {
        // φ(φ(R)) = φ(R)
        let r = rows(&[(2, 1), (-1, 1), (4, 2)]);
        let once = net_effect(r);
        let twice = net_effect(to_rows(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn distributes_over_union() {
        // φ(R + S) = φ(φ(R) + φ(S))
        let r = rows(&[(1, 1), (1, 2), (-1, 3)]);
        let s = rows(&[(-1, 1), (2, 3), (5, 4)]);
        let both: Vec<_> = r.iter().chain(s.iter()).cloned().collect();
        let lhs = net_effect(both);
        let rhs = add(&net_effect(r), &net_effect(s));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn negation_is_involutive_and_cancels() {
        let n = net_effect(rows(&[(2, 1), (1, 2)]));
        assert_eq!(negate(&negate(&n)), n);
        assert!(add(&n, &negate(&n)).is_empty());
    }

    #[test]
    fn multiset_check() {
        assert!(is_multiset(&net_effect(rows(&[(1, 1)]))));
        assert!(!is_multiset(&net_effect(rows(&[(-1, 1)]))));
        assert!(is_multiset(&NetEffect::new()));
    }
}
