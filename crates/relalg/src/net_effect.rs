//! The net-effect operator `φ` (paper Definition 4.1) and multiset-table
//! algebra helpers.
//!
//! `φ(R)` groups a delta table on all attributes except count and
//! timestamp, sums counts within each group, nulls the timestamps, and
//! drops zero-count groups. It is the canonicalization that makes two
//! representations of the same change comparable, and it is the vocabulary
//! of every correctness statement in the paper (Definition 4.2, Lemmas
//! 4.1–4.2, Theorems 4.1–4.3) — so it is also the vocabulary of this
//! reproduction's oracles and property tests.

use rolljoin_common::{DeltaRow, Tuple};
use std::collections::BTreeMap;

/// Canonical net effect: `tuple → summed count`, zero counts dropped.
///
/// A `BTreeMap` so two net effects compare (and print) deterministically.
pub type NetEffect = BTreeMap<Tuple, i64>;

/// `φ(R)` over an iterator of delta rows.
pub fn net_effect<I>(rows: I) -> NetEffect
where
    I: IntoIterator<Item = DeltaRow>,
{
    let mut out = NetEffect::new();
    for row in rows {
        let e = out.entry(row.tuple).or_insert(0);
        *e += row.count;
        // Defer zero-removal to the end: intermediate zeros may be revived.
    }
    out.retain(|_, c| *c != 0);
    out
}

/// `φ` over borrowed rows.
pub fn net_effect_ref<'a, I>(rows: I) -> NetEffect
where
    I: IntoIterator<Item = &'a DeltaRow>,
{
    net_effect(rows.into_iter().cloned())
}

/// Multiset union `R + S` on canonical forms: counts add, zeros drop.
pub fn add(a: &NetEffect, b: &NetEffect) -> NetEffect {
    let mut out = a.clone();
    for (t, c) in b {
        let e = out.entry(t.clone()).or_insert(0);
        *e += c;
        if *e == 0 {
            out.remove(t);
        }
    }
    out
}

/// Negation `-R` on canonical form.
pub fn negate(a: &NetEffect) -> NetEffect {
    a.iter().map(|(t, c)| (t.clone(), -c)).collect()
}

/// Render a canonical form back into delta rows (null timestamps).
pub fn to_rows(a: &NetEffect) -> Vec<DeltaRow> {
    a.iter()
        .map(|(t, c)| DeltaRow {
            ts: None,
            count: *c,
            tuple: t.clone(),
        })
        .collect()
}

/// True iff the net effect describes a legal multiset (no negative counts)
/// — the state of a real table must satisfy this.
pub fn is_multiset(a: &NetEffect) -> bool {
    a.values().all(|c| *c > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    fn rows(spec: &[(i64, i64)]) -> Vec<DeltaRow> {
        // (count, key) pairs at arbitrary timestamps.
        spec.iter()
            .enumerate()
            .map(|(i, (c, k))| DeltaRow::change(i as u64 + 1, *c, tup![*k]))
            .collect()
    }

    #[test]
    fn groups_sums_and_drops_zeros() {
        let r = rows(&[(1, 10), (2, 10), (-3, 10), (1, 20)]);
        let n = net_effect(r);
        assert_eq!(n.len(), 1);
        assert_eq!(n[&tup![20]], 1);
    }

    #[test]
    fn idempotent() {
        // φ(φ(R)) = φ(R)
        let r = rows(&[(2, 1), (-1, 1), (4, 2)]);
        let once = net_effect(r);
        let twice = net_effect(to_rows(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn distributes_over_union() {
        // φ(R + S) = φ(φ(R) + φ(S))
        let r = rows(&[(1, 1), (1, 2), (-1, 3)]);
        let s = rows(&[(-1, 1), (2, 3), (5, 4)]);
        let both: Vec<_> = r.iter().chain(s.iter()).cloned().collect();
        let lhs = net_effect(both);
        let rhs = add(&net_effect(r), &net_effect(s));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn negation_is_involutive_and_cancels() {
        let n = net_effect(rows(&[(2, 1), (1, 2)]));
        assert_eq!(negate(&negate(&n)), n);
        assert!(add(&n, &negate(&n)).is_empty());
    }

    #[test]
    fn multiset_check() {
        assert!(is_multiset(&net_effect(rows(&[(1, 1)]))));
        assert!(!is_multiset(&net_effect(rows(&[(-1, 1)]))));
        assert!(is_multiset(&NetEffect::new()));
    }
}
