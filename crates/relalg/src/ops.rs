//! Volcano-style operators over streams of [`DeltaRow`]s.
//!
//! Every operator consumes and produces `(timestamp, count, tuple)` rows,
//! implementing the paper's delta-table algebra:
//!
//! * joins multiply counts and take the **minimum** non-null timestamp
//!   (paper §2/§3.3 — the load-bearing rule that makes asynchronous
//!   compensation sound);
//! * `negate` flips count signs (the `-R` operator);
//! * `union` is multiset union `R + S`;
//! * `project` keeps count and timestamp (paper §4 requires projections not
//!   to eliminate them);
//! * `ts_range` is the `σ_{a,b}` timestamp selection.

use crate::expr::Expr;
use rolljoin_common::{DeltaRow, TimeInterval, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A stream of delta rows.
pub type RowIter = Box<dyn Iterator<Item = DeltaRow>>;

/// Scan a materialized vector.
pub fn scan(rows: Vec<DeltaRow>) -> RowIter {
    Box::new(rows.into_iter())
}

/// Scan a shared (cached) vector without taking ownership. Rows are cloned
/// lazily — a [`DeltaRow`] clone is an `Arc` bump plus two words.
pub fn scan_shared(rows: Arc<Vec<DeltaRow>>) -> RowIter {
    Box::new((0..rows.len()).map(move |i| rows[i].clone()))
}

/// Selection `σ_pred`. The predicate sees only attribute columns, never
/// count or timestamp.
pub fn filter(input: RowIter, pred: Expr) -> RowIter {
    Box::new(input.filter(move |r| pred.eval_bool(&r.tuple)))
}

/// Projection `π_cols`, keeping count and timestamp. An identity
/// projection (`cols = 0..arity`) passes rows through untouched, reusing
/// the tuple allocation — count and timestamp are mutated in place either
/// way, so no row is reconstructed.
pub fn project(input: RowIter, cols: Vec<usize>) -> RowIter {
    let identity = cols.iter().enumerate().all(|(i, &c)| i == c);
    Box::new(input.map(move |mut r| {
        if !(identity && r.tuple.arity() == cols.len()) {
            r.tuple = r.tuple.project(&cols);
        }
        r
    }))
}

/// Negation `-R`: flip every count in place (no tuple clone).
pub fn negate(input: RowIter) -> RowIter {
    Box::new(input.map(|mut r| {
        r.count = -r.count;
        r
    }))
}

/// Scale counts by a signed factor in place (used to carry the
/// compensation sign through recursive `ComputeDelta` calls; factor `-1`
/// ≡ [`negate`]).
pub fn scale(input: RowIter, factor: i64) -> RowIter {
    Box::new(input.map(move |mut r| {
        r.count *= factor;
        r
    }))
}

/// Multiset union `R + S`.
pub fn union(a: RowIter, b: RowIter) -> RowIter {
    Box::new(a.chain(b))
}

/// Timestamp selection `σ_{a,b}`: rows with `ts ∈ (a, b]`. Rows with null
/// timestamps (base rows) are never selected.
pub fn ts_range(input: RowIter, interval: TimeInterval) -> RowIter {
    Box::new(input.filter(move |r| r.ts.is_some_and(|t| interval.contains(t))))
}

/// An equi-join key whose hash is computed once at construction. `Hash`
/// replays the stored value, so hash-table growth (which re-hashes every
/// resident key) and repeated probes against shared build indexes cost one
/// `u64` write instead of re-walking every [`Value`] — the build side of a
/// join hashes each key exactly once.
#[derive(PartialEq, Eq)]
pub(crate) struct JoinKey {
    hash: u64,
    vals: Vec<Value>,
}

impl JoinKey {
    fn new(vals: Vec<Value>) -> JoinKey {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        vals.hash(&mut h);
        JoinKey {
            hash: h.finish(),
            vals,
        }
    }
}

impl std::hash::Hash for JoinKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

fn key_of(tuple: &Tuple, cols: &[usize]) -> Option<JoinKey> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = tuple.get(c);
        if v.is_null() {
            return None; // NULL never equi-joins
        }
        key.push(v.clone());
    }
    Some(JoinKey::new(key))
}

/// Hash equi-join.
///
/// Builds a hash table on `build` keyed by `build_keys`, probes with the
/// `probe` stream keyed by `probe_keys`, and emits
/// `probe_row.join_combine(build_row)` — so output columns are probe's then
/// build's, counts multiply, and the output timestamp is the minimum of the
/// non-null input timestamps.
///
/// With empty key lists this degenerates to a cross product (every row
/// matches), which is what a join with no equi predicate means here; any
/// non-equi join condition is applied as a residual filter downstream.
pub fn hash_join(
    probe: RowIter,
    build: Vec<DeltaRow>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
) -> RowIter {
    assert_eq!(probe_keys.len(), build_keys.len(), "key arity mismatch");
    let mut table: HashMap<JoinKey, Vec<DeltaRow>> = HashMap::new();
    for row in build {
        if let Some(key) = key_of(&row.tuple, &build_keys) {
            table.entry(key).or_default().push(row);
        }
    }
    Box::new(probe.flat_map(move |p| {
        let matches: Vec<DeltaRow> = match key_of(&p.tuple, &probe_keys) {
            Some(key) => table
                .get(&key)
                .map(|rows| rows.iter().map(|b| p.join_combine(b)).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        };
        matches.into_iter()
    }))
}

/// A prebuilt build side of a hash join: rows grouped by their key values
/// on a fixed column list. Sharable across queries (and threads) via
/// `Arc` — the step-scoped build cache hands these out so each delta range
/// is hashed once per step instead of once per constituent query.
pub struct JoinIndex {
    /// Local (slot-relative) build key columns the index was built on.
    keys: Vec<usize>,
    map: HashMap<JoinKey, Vec<DeltaRow>>,
    rows: usize,
}

impl JoinIndex {
    /// Hash `build` on `keys` (NULL keys never join, matching
    /// [`hash_join`]). Key hashes are computed once here and reused for
    /// every probe of the shared index.
    pub fn build(build: &[DeltaRow], keys: Vec<usize>) -> JoinIndex {
        let mut map: HashMap<JoinKey, Vec<DeltaRow>> = HashMap::new();
        for row in build {
            if let Some(key) = key_of(&row.tuple, &keys) {
                map.entry(key).or_default().push(row.clone());
            }
        }
        JoinIndex {
            keys,
            map,
            rows: build.len(),
        }
    }

    /// The build key columns.
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// Number of build rows the index was built from (indexed or not).
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// Hash equi-join against a prebuilt, shared build index. Identical
/// semantics to [`hash_join`] with the same keys; the build phase is
/// skipped.
pub fn hash_join_indexed(probe: RowIter, index: Arc<JoinIndex>, probe_keys: Vec<usize>) -> RowIter {
    assert_eq!(
        probe_keys.len(),
        index.keys.len(),
        "key arity mismatch against prebuilt index"
    );
    Box::new(probe.flat_map(move |p| {
        let matches: Vec<DeltaRow> = match key_of(&p.tuple, &probe_keys) {
            Some(key) => index
                .map
                .get(&key)
                .map(|rows| rows.iter().map(|b| p.join_combine(b)).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        };
        matches.into_iter()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    fn base(rows: Vec<(i64, Tuple)>) -> Vec<DeltaRow> {
        rows.into_iter()
            .map(|(c, t)| DeltaRow {
                ts: None,
                count: c,
                tuple: t,
            })
            .collect()
    }

    #[test]
    fn filter_selects() {
        let rows = base(vec![(1, tup![1]), (1, tup![2]), (1, tup![3])]);
        let out: Vec<_> = filter(scan(rows), Expr::col(0).gt(Expr::lit(1))).collect();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_keeps_count_and_ts() {
        let rows = vec![DeltaRow::change(7, -2, tup![1, "x"])];
        let out: Vec<_> = project(scan(rows), vec![1]).collect();
        assert_eq!(out[0].ts, Some(7));
        assert_eq!(out[0].count, -2);
        assert_eq!(out[0].tuple, tup!["x"]);
    }

    #[test]
    fn ts_range_excludes_base_rows() {
        let rows = vec![
            DeltaRow::base(tup![1]),
            DeltaRow::change(3, 1, tup![2]),
            DeltaRow::change(5, 1, tup![3]),
        ];
        let out: Vec<_> = ts_range(scan(rows), TimeInterval::new(2, 4)).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple, tup![2]);
    }

    #[test]
    fn hash_join_equi_semantics() {
        // R(a,b) ⋈ S(b,c) on b.
        let r = base(vec![(1, tup![1, 10]), (2, tup![2, 20])]);
        let s = vec![
            DeltaRow::change(5, 1, tup![10, "x"]),
            DeltaRow::change(3, -1, tup![20, "y"]),
            DeltaRow::change(9, 1, tup![30, "z"]),
        ];
        let out: Vec<_> = hash_join(scan(r), s, vec![1], vec![0]).collect();
        assert_eq!(out.len(), 2);
        let first = out.iter().find(|r| r.tuple[0] == Value::Int(1)).unwrap();
        assert_eq!(first.tuple, tup![1, 10, 10, "x"]);
        assert_eq!(first.count, 1);
        assert_eq!(first.ts, Some(5));
        let second = out.iter().find(|r| r.tuple[0] == Value::Int(2)).unwrap();
        assert_eq!(second.count, -2, "counts multiply");
        assert_eq!(second.ts, Some(3));
    }

    #[test]
    fn hash_join_min_timestamp() {
        let r = vec![DeltaRow::change(8, 1, tup![1])];
        let s = vec![DeltaRow::change(3, 1, tup![1])];
        let out: Vec<_> = hash_join(scan(r), s, vec![0], vec![0]).collect();
        assert_eq!(out[0].ts, Some(3), "minimum of the two timestamps");
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let r = base(vec![(1, tup![Value::Null])]);
        let s = vec![DeltaRow::base(tup![Value::Null])];
        let out: Vec<_> = hash_join(scan(r), s, vec![0], vec![0]).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_keys_is_cross_product() {
        let r = base(vec![(1, tup![1]), (1, tup![2])]);
        let s = base(vec![(1, tup!["a"]), (1, tup!["b"]), (1, tup!["c"])]);
        let out: Vec<_> = hash_join(scan(r), s, vec![], vec![]).collect();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn negate_and_scale() {
        let rows = vec![DeltaRow::change(1, 2, tup![1])];
        let out: Vec<_> = negate(scan(rows.clone())).collect();
        assert_eq!(out[0].count, -2);
        let out: Vec<_> = scale(scan(rows), -3).collect();
        assert_eq!(out[0].count, -6);
    }

    #[test]
    fn indexed_join_matches_hash_join() {
        let r = base(vec![(1, tup![1, 10]), (2, tup![2, 20])]);
        let s = vec![
            DeltaRow::change(5, 1, tup![10, "x"]),
            DeltaRow::change(3, -1, tup![20, "y"]),
            DeltaRow::change(9, 1, tup![30, "z"]),
        ];
        let direct: Vec<_> = hash_join(scan(r.clone()), s.clone(), vec![1], vec![0]).collect();
        let idx = Arc::new(JoinIndex::build(&s, vec![0]));
        assert_eq!(idx.rows(), 3);
        assert_eq!(idx.keys(), &[0]);
        let via_index: Vec<_> = hash_join_indexed(scan(r), idx, vec![1]).collect();
        assert_eq!(direct, via_index);
    }

    #[test]
    fn scan_shared_yields_all_rows() {
        let rows = Arc::new(base(vec![(1, tup![1]), (2, tup![2])]));
        let out: Vec<_> = scan_shared(rows.clone()).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(out, *rows);
    }

    #[test]
    fn identity_projection_reuses_tuples() {
        let t = tup![1, 2];
        let rows = vec![DeltaRow::change(3, 1, t.clone())];
        let out: Vec<_> = project(scan(rows), vec![0, 1]).collect();
        assert_eq!(out[0].tuple, t);
        // Non-identity still projects.
        let rows = vec![DeltaRow::change(3, 1, tup![1, 2])];
        let out: Vec<_> = project(scan(rows), vec![1]).collect();
        assert_eq!(out[0].tuple, tup![2]);
    }

    #[test]
    fn union_concatenates() {
        let a = vec![DeltaRow::change(1, 1, tup![1])];
        let b = vec![DeltaRow::change(2, -1, tup![1])];
        let out: Vec<_> = union(scan(a), scan(b)).collect();
        assert_eq!(out.len(), 2);
    }
}
