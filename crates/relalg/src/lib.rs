//! `rolljoin-relalg` — relational operators and the propagation-query
//! executor for the rolling-join-propagation reproduction.
//!
//! Propagation queries (paper §2) are select–project–join queries whose
//! slots are bound to base tables or delta ranges. This crate provides:
//!
//! * [`expr`] — scalar expressions / selection predicates (3-valued logic).
//! * [`ops`] — Volcano-style operators over `(timestamp, count, tuple)`
//!   rows, implementing the paper's delta algebra: product counts,
//!   **minimum** timestamps on join, negation, multiset union, `σ_{a,b}`.
//! * [`exec`] — the [`exec::JoinSpec`] shape shared by a view and its
//!   propagation queries, plus a left-deep hash-join executor with stats.
//! * [`source`] — slot bindings: base table, delta range, or time-travel
//!   snapshot (oracle use only).
//! * [`mod@net_effect`] — the paper's `φ` operator (Definition 4.1), the
//!   vocabulary of every correctness check.

pub mod exec;
pub mod expr;
pub mod net_effect;
pub mod ops;
pub mod source;

pub use exec::{
    execute, execute_shared, BuildCache, BuildCacheStats, ExecStats, JoinSpec, SlotInput,
};
pub use expr::{ArithOp, CmpOp, Expr};
pub use net_effect::{
    add, compact_rows, is_multiset, negate, net_effect, net_effect_ref, to_rows, CompactionOutcome,
    NetEffect,
};
pub use ops::JoinIndex;
pub use source::{fetch, fetch_cached, SlotSource};
