//! Validation of `RollingPropagate` (Fig. 10) against the time-travel
//! oracle: Theorem 4.3 — at all times, `σ_{t_init, hwm}(VD)` is a timed
//! delta table for the view — under skewed per-relation intervals,
//! adversarial schedules, and interleaved updates.

use rolljoin_common::{tup, ColumnType, Schema, TableId};
use rolljoin_core::{
    materialize, oracle, roll_to, MaintCtx, MaterializedView, PerRelationInterval,
    RollingPropagator, TargetRows, UniformInterval, ViewDef,
};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;

fn two_way() -> (MaintCtx, TableId, TableId) {
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "v",
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), r, s)
}

fn three_way() -> (MaintCtx, Vec<TableId>) {
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    let t = e
        .create_table(
            "t",
            Schema::new([("c", ColumnType::Int), ("d", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "v3",
        vec![r, s, t],
        JoinSpec {
            slot_schemas: vec![
                e.schema(r).unwrap(),
                e.schema(s).unwrap(),
                e.schema(t).unwrap(),
            ],
            equi: vec![(1, 2), (3, 4)],
            filter: None,
            projection: vec![0, 5],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), vec![r, s, t])
}

fn insert(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.insert(t, tuple).unwrap();
    txn.commit().unwrap()
}

fn delete(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.delete_one(t, &tuple).unwrap();
    txn.commit().unwrap()
}

/// Theorem 4.3 check over every subinterval of `(from, hwm]`.
fn assert_rolling_correct(ctx: &MaintCtx, from: u64, hwm: u64) {
    ctx.engine.capture_catch_up().unwrap();
    for a in from..hwm {
        for b in (a + 1)..=hwm {
            assert!(
                oracle::timed_delta_holds(&ctx.engine, &ctx.mv, a, b).unwrap(),
                "Theorem 4.3 violated on ({a},{b}]"
            );
        }
    }
}

#[test]
fn uniform_rolling_matches_oracle() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..20i64 {
        insert(&ctx, r, tup![i, i % 4]);
        insert(&ctx, s, tup![i % 4, 100 + i]);
        if i % 6 == 5 {
            delete(&ctx, r, tup![i, i % 4]);
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let hwm = rp.drain_to(target, &mut UniformInterval(3)).unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, mat, target);
}

#[test]
fn skewed_intervals_fig9_shape() {
    // Fig. 9's scenario: R2's forward queries are wider than R1's. The
    // compensation regions are non-rectangular and must be split.
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..24i64 {
        insert(&ctx, r, tup![i, i % 3]);
        insert(&ctx, s, tup![i % 3, 500 + i]);
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let hwm = rp
        .drain_to(target, &mut PerRelationInterval(vec![4, 13]))
        .unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, mat, target);
}

#[test]
fn extreme_skew_hot_fact_cold_dimension() {
    // Star-schema shape: fact table (r) updated constantly, dimension (s)
    // almost never — the motivating case of §3.4.
    let (ctx, r, s) = two_way();
    insert(&ctx, s, tup![0, 1000]);
    insert(&ctx, s, tup![1, 1001]);
    let mat = materialize(&ctx).unwrap();
    for i in 0..40i64 {
        insert(&ctx, r, tup![i, i % 2]);
        if i == 20 {
            insert(&ctx, s, tup![0, 2000]); // one rare dimension change
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let hwm = rp
        .drain_to(target, &mut PerRelationInterval(vec![5, 41]))
        .unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, mat, target);
}

#[test]
fn manual_adversarial_schedule() {
    // Drive step_relation directly with a deliberately nasty interleaving:
    // R1 and R2 frontiers leapfrog, updates keep landing between steps.
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let put = |i: i64| {
        insert(&ctx, r, tup![i, i % 3]);
        insert(&ctx, s, tup![i % 3, i]);
    };
    for i in 0..6 {
        put(i);
    }
    rp.step_relation(0, 4).unwrap();
    for i in 6..12 {
        put(i);
    }
    rp.step_relation(1, 9).unwrap();
    rp.step_relation(0, 7).unwrap();
    for i in 12..15 {
        put(i);
    }
    rp.step_relation(1, 8).unwrap();
    rp.step_relation(0, 6).unwrap();
    rp.step_relation(1, 3).unwrap();
    let hwm = rp.hwm();
    assert!(hwm > mat);
    assert_rolling_correct(&ctx, mat, hwm);
}

#[test]
fn hwm_trails_uncompensated_queries() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..10i64 {
        insert(&ctx, r, tup![i, 0]);
        insert(&ctx, s, tup![0, i]);
    }
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    // Forward query for R1 only: recorded in querylist[0], so tcomp[0]
    // stays at its interval start and the HWM must NOT advance past it.
    rp.step_relation(0, 10).unwrap();
    assert_eq!(rp.tcomp(0), mat);
    assert_eq!(rp.hwm(), mat);
    assert_eq!(rp.pending_compensation(), 1);
    // R2's forward query compensates the overlap seen so far, but R1's
    // query stays recorded (future R2 queries could still overlap it), so
    // the HWM still trails — exactly Fig. 3's picture.
    rp.step_relation(1, 10).unwrap();
    assert_eq!(rp.hwm(), mat);
    // Draining sweeps the frontiers past the recorded execution times;
    // only then is the query fully compensated and the HWM released.
    let hwm = rp.drain_to(mat + 10, &mut UniformInterval(10)).unwrap();
    assert!(hwm >= mat + 10);
    // Any still-recorded query must start at or beyond the drained target.
    assert!(rp.tcomp(0) >= mat + 10);
    assert_rolling_correct(&ctx, mat, mat + 10);
}

#[test]
fn three_way_rolling_with_three_different_intervals() {
    let (ctx, ts) = three_way();
    let (r, s, t) = (ts[0], ts[1], ts[2]);
    let mat = materialize(&ctx).unwrap();
    for i in 0..30i64 {
        insert(&ctx, r, tup![i, i % 3]);
        if i % 3 == 0 {
            insert(&ctx, s, tup![i % 3, i % 5]);
        }
        if i % 10 == 0 {
            insert(&ctx, t, tup![i % 5, i]);
        }
        if i % 9 == 8 {
            delete(&ctx, r, tup![i, i % 3]);
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let hwm = rp
        .drain_to(target, &mut PerRelationInterval(vec![3, 11, 29]))
        .unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, mat, target);
}

#[test]
fn target_rows_policy_rolls_correctly() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..25i64 {
        insert(&ctx, r, tup![i, i % 4]);
        if i % 5 == 0 {
            insert(&ctx, s, tup![i % 4, i]);
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    let hwm = rp
        .drain_to(target, &mut TargetRows { target_rows: 4 })
        .unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, mat, target);
}

#[test]
fn rolled_view_matches_oracle_at_many_points() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..18i64 {
        insert(&ctx, r, tup![i, i % 2]);
        insert(&ctx, s, tup![i % 2, i * 10]);
        if i % 4 == 3 {
            delete(&ctx, s, tup![i % 2, i * 10]);
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    rp.drain_to(target, &mut PerRelationInterval(vec![2, 7]))
        .unwrap();
    ctx.engine.capture_catch_up().unwrap();
    for stop in [mat + 5, mat + 11, target] {
        roll_to(&ctx, stop).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, stop).unwrap();
        assert_eq!(got, want, "MV diverged at t={stop}");
    }
}

#[test]
fn step_with_policy_reports_and_idles() {
    let (ctx, r, _s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let mut rp = RollingPropagator::new(ctx.clone(), mat);
    // Nothing new: step reports idle.
    assert!(rp.step(&mut UniformInterval(5)).unwrap().is_none());
    insert(&ctx, r, tup![1, 1]);
    let step = rp.step(&mut UniformInterval(5)).unwrap().unwrap();
    assert_eq!(step.relation, 0);
    assert!(step.width >= 1);
}

#[test]
fn regression_three_way_staggered_coverage_hole() {
    // Minimal case found by the property suite: with the literal deferred
    // reading of Fig. 10's CompTime, the region
    // {p1 ∈ (0,2], p2 ∈ (0,3], p3 ∈ (3,5]} of the three-relation time
    // space ends up net-covered zero times. The n≥3 immediate-box mode
    // must cover it exactly once.
    let (ctx, ts) = three_way();
    let (r, s, t) = (ts[0], ts[1], ts[2]);
    // Schemas: r(a,b) ⋈ s(b,c) ⋈ t(c,d); craft tuples so everything joins.
    insert(&ctx, s, tup![3, 1]); // csn 1: s (b=3, c=1)
    insert(&ctx, r, tup![0, 3]); // csn 2: r (a=0, b=3)
    let mut rp = RollingPropagator::new(ctx.clone(), 0);
    assert_eq!(
        rp.mode(),
        rolljoin_core::rolling::CompensationMode::ImmediateBox
    );
    rp.step_relation(0, 2).unwrap(); // forward query for R1 over (0,2]
    insert(&ctx, r, tup![0, 0]); // csn 4 (exec of the fwd query took 3)
    insert(&ctx, t, tup![1, 0]); // csn 5: t (c=1, d=0)
    let target = ctx.engine.current_csn();
    let hwm = rp.drain_to(target, &mut UniformInterval(6)).unwrap();
    assert!(hwm >= target);
    assert_rolling_correct(&ctx, 0, target);
}

#[test]
fn deferred_mode_rejected_for_three_relations() {
    let (ctx, _ts) = three_way();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        RollingPropagator::with_mode(
            ctx.clone(),
            0,
            rolljoin_core::rolling::CompensationMode::Deferred,
        )
    }));
    assert!(caught.is_err(), "deferred mode must be refused for n=3");
}
