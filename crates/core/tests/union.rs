//! Union views (paper §2 extension): branch deltas share one view delta
//! table; point-in-time refresh works to the minimum branch HWM.

use rolljoin_common::{tup, ColumnType, Schema, TableId};
use rolljoin_core::{RollingPropagator, UniformInterval, UnionView, ViewDef};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;

/// Two branches over disjoint table pairs, same output schema (a, c).
fn setup() -> (Engine, UnionView, Vec<TableId>) {
    let e = Engine::new();
    let mk = |n: &str| {
        e.create_table(
            n,
            Schema::new([("x", ColumnType::Int), ("y", ColumnType::Int)]),
        )
        .unwrap()
    };
    let (r1, s1, r2, s2) = (mk("r1"), mk("s1"), mk("r2"), mk("s2"));
    let branch = |name: &str, a: TableId, b: TableId| {
        ViewDef::new(
            &e,
            name,
            vec![a, b],
            JoinSpec {
                slot_schemas: vec![e.schema(a).unwrap(), e.schema(b).unwrap()],
                equi: vec![(1, 2)],
                filter: None,
                projection: vec![0, 3],
            },
        )
        .unwrap()
    };
    let u = UnionView::register(&e, "u", vec![branch("b1", r1, s1), branch("b2", r2, s2)]).unwrap();
    (e, u, vec![r1, s1, r2, s2])
}

fn insert(e: &Engine, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = e.begin();
    txn.insert(t, tuple).unwrap();
    txn.commit().unwrap()
}

#[test]
fn union_rolls_and_matches_branch_oracles() {
    let (e, u, ts) = setup();
    insert(&e, ts[0], tup![1, 10]);
    insert(&e, ts[1], tup![10, 100]);
    let mat = u.materialize(&e).unwrap();
    assert_eq!(u.mv_state(&e).unwrap().len(), 1);

    // Updates on both branches, including an overlapping output tuple.
    for i in 0..12i64 {
        insert(&e, ts[0], tup![i, i % 3]);
        insert(&e, ts[1], tup![i % 3, 50 + i]);
        insert(&e, ts[2], tup![i, i % 2]);
        if i % 2 == 0 {
            insert(&e, ts[3], tup![i % 2, 50 + i]); // can duplicate branch-1 outputs
        }
    }
    let target = e.current_csn();

    // Independent propagators per branch, different intervals.
    let mut p1 = RollingPropagator::new(u.branch_ctx(&e, 0), mat);
    let mut p2 = RollingPropagator::new(u.branch_ctx(&e, 1), mat);
    p1.drain_to(target, &mut UniformInterval(4)).unwrap();
    assert!(
        u.hwm() < target || u.branches[1].hwm() >= target,
        "union HWM is the min of branch HWMs"
    );
    p2.drain_to(target, &mut UniformInterval(9)).unwrap();
    assert!(u.hwm() >= target);

    // Roll to an intermediate point and to the end; compare to the oracle.
    e.capture_catch_up().unwrap();
    for stop in [mat + 7, target] {
        u.roll_to(&e, stop).unwrap();
        assert_eq!(
            u.mv_state(&e).unwrap(),
            u.oracle_at(&e, stop).unwrap(),
            "union diverged at t={stop}"
        );
    }
    // Multiset semantics: counts add across branches where outputs collide.
    let state = u.mv_state(&e).unwrap();
    assert!(
        state.values().any(|&c| c >= 2),
        "expected a duplicated output"
    );
}

#[test]
fn union_hwm_is_min_of_branches() {
    let (e, u, ts) = setup();
    let mat = u.materialize(&e).unwrap();
    insert(&e, ts[0], tup![1, 1]);
    insert(&e, ts[2], tup![2, 0]);
    let target = e.current_csn();
    let mut p1 = RollingPropagator::new(u.branch_ctx(&e, 0), mat);
    p1.drain_to(target, &mut UniformInterval(8)).unwrap();
    // Branch 2 not propagated: the union cannot roll past `mat`.
    assert_eq!(u.hwm(), mat);
    assert!(u.roll_to(&e, target).is_err());
    let mut p2 = RollingPropagator::new(u.branch_ctx(&e, 1), mat);
    p2.drain_to(target, &mut UniformInterval(8)).unwrap();
    assert!(u.hwm() >= target);
    u.roll_to(&e, target).unwrap();
    assert_eq!(u.mv_state(&e).unwrap(), u.oracle_at(&e, target).unwrap());
}

#[test]
fn union_rejects_mismatched_branches() {
    let e = Engine::new();
    let a = e
        .create_table("a", Schema::new([("x", ColumnType::Int)]))
        .unwrap();
    let b = e
        .create_table("b", Schema::new([("y", ColumnType::Str)]))
        .unwrap();
    let va = ViewDef::new(
        &e,
        "va",
        vec![a],
        JoinSpec {
            slot_schemas: vec![e.schema(a).unwrap()],
            equi: vec![],
            filter: None,
            projection: vec![0],
        },
    )
    .unwrap();
    let vb = ViewDef::new(
        &e,
        "vb",
        vec![b],
        JoinSpec {
            slot_schemas: vec![e.schema(b).unwrap()],
            equi: vec![],
            filter: None,
            projection: vec![0],
        },
    )
    .unwrap();
    assert!(UnionView::register(&e, "u", vec![va, vb]).is_err());
    assert!(UnionView::register(&e, "u2", vec![]).is_err());
}
