//! φ-equivalence oracle for early compaction: under any update history,
//! propagation running with `CompactionPolicy::OnScan` or
//! `CompactionPolicy::Background` must produce a view delta with the same
//! net effect (`φ`, Definition 4.1) as the uncompacted run, and refresh
//! from the compacted delta must land the MV exactly on the oracle state.
//! Compaction changes *how many rows carry* a net effect, never the net
//! effect itself — φ is linear over SPJ propagation (Lemma 4.2), and store
//! rewrites stay below the global LWM no future read starts under. These
//! tests are the executable form of that claim, including with a live
//! background compactor racing concurrent updaters.

use proptest::prelude::*;
use rolljoin_common::{tup, ColumnType, Csn, Error, Schema, TableId, TimeInterval, Tuple};
use rolljoin_core::{
    compute_delta, materialize, oracle, roll_to, spawn_compaction_driver, CompactionPolicy,
    DeltaWorker, MaintCtx, MaterializedView, PropQuery, ViewDef,
};
use rolljoin_relalg::{net_effect, JoinSpec, NetEffect};
use rolljoin_storage::{Engine, LockGranularity};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An n-way chain `R1(k0,k1) ⋈ … ⋈ Rn(k_{n-1},k_n)` projected to
/// `(k0, k_n)`, with indexes on both columns of every table (same shape as
/// the striped-locking suite).
fn chain(name: &str, n: usize) -> (MaintCtx, Vec<TableId>) {
    let e = Engine::new();
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let t = e
            .create_table(
                &format!("{name}_r{i}"),
                Schema::new([
                    (format!("k{i}"), ColumnType::Int),
                    (format!("k{}", i + 1), ColumnType::Int),
                ]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.create_index(t, 1).unwrap();
        tables.push(t);
    }
    let slot_schemas: Vec<Schema> = tables.iter().map(|t| e.schema(*t).unwrap()).collect();
    let equi: Vec<(usize, usize)> = (0..n.saturating_sub(1))
        .map(|i| (2 * i + 1, 2 * (i + 1)))
        .collect();
    let view = ViewDef::new(
        &e,
        name,
        tables.clone(),
        JoinSpec {
            slot_schemas,
            equi,
            filter: None,
            projection: vec![0, 2 * n - 1],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), tables)
}

/// One base-table operation in a generated history. Keys are drawn from a
/// tiny domain so histories are churn-heavy: the same tuple is inserted
/// and deleted repeatedly, which is exactly what compaction collapses.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (table_idx, key, payload).
    Insert(usize, i64, i64),
    /// Delete an arbitrary live tuple of table_idx (by index).
    Delete(usize, usize),
}

fn arb_ops(tables: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..tables, 0i64..4, 0i64..50).prop_map(|(t, k, p)| Op::Insert(t, k, p)),
            1 => (0..tables, any::<prop::sample::Index>())
                .prop_map(|(t, i)| Op::Delete(t, i.index(1 << 20))),
        ],
        0..len,
    )
}

fn apply_ops(ctx: &MaintCtx, tables: &[TableId], ops: &[Op]) {
    let mut live: Vec<Vec<Tuple>> = vec![Vec::new(); tables.len()];
    for op in ops {
        match op {
            Op::Insert(t, k, p) => {
                let tuple = tup![*k, *p % 4];
                let mut txn = ctx.engine.begin();
                txn.insert(tables[*t], tuple.clone()).unwrap();
                txn.commit().unwrap();
                live[*t].push(tuple);
            }
            Op::Delete(t, i) => {
                if live[*t].is_empty() {
                    continue;
                }
                let idx = i % live[*t].len();
                let victim = live[*t].swap_remove(idx);
                let mut txn = ctx.engine.begin();
                txn.delete_one(tables[*t], &victim).unwrap();
                txn.commit().unwrap();
            }
        }
    }
}

/// Replay `ops` on a fresh n-way chain and propagate the whole history in
/// `steps` windows under the given compaction policy. Under `Background`
/// the stores are compacted between steps; halfway through, the MV is
/// rolled to the frontier (a mid-run `roll_to`, which under any non-`Off`
/// policy also φ-compacts the view delta below the new apply position).
/// Returns the context, materialization time, history end, and `φ` of the
/// full produced view delta.
fn run_chain(
    name: &str,
    n: usize,
    ops: &[Op],
    policy: CompactionPolicy,
    workers: usize,
    steps: usize,
) -> (MaintCtx, Csn, Csn, NetEffect) {
    let (ctx, tables) = chain(name, n);
    let ctx = ctx.with_workers(workers).with_compaction(policy);
    let mat = materialize(&ctx).unwrap();
    apply_ops(&ctx, &tables, ops);
    let end = ctx.engine.current_csn();
    let span = end - mat;
    let mut frontier = mat;
    for s in 1..=steps {
        let hi = if s == steps {
            end
        } else {
            mat + span * s as Csn / steps as Csn
        };
        if hi <= frontier {
            continue;
        }
        compute_delta(&ctx, &PropQuery::all_base(n), 1, &vec![frontier; n], hi).unwrap();
        ctx.mv.set_hwm(hi);
        frontier = hi;
        if s == steps / 2 {
            roll_to(&ctx, frontier).unwrap();
        }
        if matches!(policy, CompactionPolicy::Background(_)) {
            ctx.compact_stores().unwrap();
        }
    }
    let vd = ctx
        .engine
        .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
        .unwrap();
    (ctx, mat, end, net_effect(vd))
}

/// Roll to the end of history and compare the MV against the oracle.
fn check_final_state(ctx: &MaintCtx, end: Csn) -> Result<(), TestCaseError> {
    ctx.engine.capture_catch_up().unwrap();
    if end > ctx.mv.mat_time() {
        roll_to(ctx, end).unwrap();
    }
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap();
    prop_assert_eq!(got, want, "compacted MV diverged from oracle at t={}", end);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 2..4-way chains: propagation under `OnScan` and `Background(1)`
    /// (compact as aggressively as possible, with mid-run rolls and
    /// between-step store compaction) φ-matches the uncompacted run on
    /// the same history, and refresh from the compacted delta hits the
    /// oracle at the end of history.
    #[test]
    fn compaction_policies_phi_match(
        n in 2usize..5,
        ops in arb_ops(4, 20),
        workers in 1usize..3,
        steps in 1usize..4,
    ) {
        let ops: Vec<Op> = ops
            .iter()
            .filter(|op| match op {
                Op::Insert(t, ..) | Op::Delete(t, _) => *t < n,
            })
            .cloned()
            .collect();
        let (_, mat_off, end_off, phi_off) =
            run_chain("co", n, &ops, CompactionPolicy::Off, workers, 1);
        let (ctx_scan, mat_s, end_s, phi_scan) =
            run_chain("cs", n, &ops, CompactionPolicy::OnScan, workers, steps);
        let (ctx_bg, mat_b, end_b, phi_bg) =
            run_chain("cb", n, &ops, CompactionPolicy::Background(1), workers, steps);
        prop_assert_eq!((mat_off, end_off), (mat_s, end_s), "identical histories");
        prop_assert_eq!((mat_off, end_off), (mat_b, end_b), "identical histories");
        prop_assert_eq!(&phi_off, &phi_scan, "φ(OnScan) ≠ φ(Off)");
        prop_assert_eq!(&phi_off, &phi_bg, "φ(Background) ≠ φ(Off)");
        check_final_state(&ctx_scan, end_s)?;
        check_final_state(&ctx_bg, end_b)?;
    }
}

/// Scan-level compaction visibly reduces what the joins read: a hot key
/// churned up and down nets to a single surviving insert, and the OnScan
/// run reports the eliminated rows while producing the same view delta.
#[test]
fn on_scan_compaction_shrinks_hot_key_churn() {
    let build = |policy| {
        let (ctx, tables) = chain(
            if policy == CompactionPolicy::Off {
                "hk0"
            } else {
                "hk1"
            },
            2,
        );
        let ctx = ctx.with_compaction(policy);
        let mat = materialize(&ctx).unwrap();
        // Matching row on the far side so the hot key joins.
        let mut txn = ctx.engine.begin();
        txn.insert(tables[1], tup![7, 7]).unwrap();
        txn.commit().unwrap();
        // Hot-key churn on the near side: 30 insert/delete pairs + 1 net insert.
        for _ in 0..30 {
            let mut txn = ctx.engine.begin();
            txn.insert(tables[0], tup![1, 7]).unwrap();
            txn.commit().unwrap();
            let mut txn = ctx.engine.begin();
            txn.delete_one(tables[0], &tup![1, 7]).unwrap();
            txn.commit().unwrap();
        }
        let mut txn = ctx.engine.begin();
        txn.insert(tables[0], tup![1, 7]).unwrap();
        txn.commit().unwrap();
        let end = ctx.engine.current_csn();
        compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat; 2], end).unwrap();
        ctx.mv.set_hwm(end);
        let vd = ctx
            .engine
            .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
            .unwrap();
        (ctx, net_effect(vd))
    };
    let (ctx_off, phi_off) = build(CompactionPolicy::Off);
    let (ctx_on, phi_on) = build(CompactionPolicy::OnScan);
    assert_eq!(phi_off, phi_on, "φ must be preserved");
    assert_eq!(phi_on[&tup![1, 7]], 1);
    let off = ctx_off.stats.snapshot();
    let on = ctx_on.stats.snapshot();
    assert_eq!(off.compact_rows_saved, 0, "Off never compacts");
    assert!(
        on.compact_rows_saved >= 60,
        "61 raw churn rows collapse to 1 (saved {})",
        on.compact_rows_saved
    );
    assert!(
        on.delta_rows_read < off.delta_rows_read,
        "joins read net churn ({} < {})",
        on.delta_rows_read,
        off.delta_rows_read
    );
}

/// Store-level compaction below the LWM: after propagation and a roll,
/// `compact_stores` physically shrinks the base delta history and the view
/// delta, the compaction report accounts for the removals, and reads at or
/// above the LWM (oracle reconstruction, net ranges) are unchanged.
#[test]
fn compact_stores_shrinks_history_below_lwm() {
    let (ctx, tables) = chain("st", 2);
    let ctx = ctx.with_compaction(CompactionPolicy::Background(1));
    let mat = materialize(&ctx).unwrap();
    let mut txn = ctx.engine.begin();
    txn.insert(tables[1], tup![3, 3]).unwrap();
    txn.commit().unwrap();
    for _ in 0..10 {
        let mut txn = ctx.engine.begin();
        txn.insert(tables[0], tup![1, 3]).unwrap();
        txn.commit().unwrap();
        let mut txn = ctx.engine.begin();
        txn.delete_one(tables[0], &tup![1, 3]).unwrap();
        txn.commit().unwrap();
    }
    let end = ctx.engine.current_csn();
    compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat; 2], end).unwrap();
    ctx.mv.set_hwm(end);
    roll_to(&ctx, end).unwrap();
    let before = ctx.engine.delta_store(tables[0]).unwrap().len();
    let removed = ctx.compact_stores().unwrap();
    let after = ctx.engine.delta_store(tables[0]).unwrap().len();
    assert!(removed > 0, "churn below the LWM must compact away");
    assert!(
        after < before,
        "store physically shrank ({after} < {before})"
    );
    let report = ctx.compaction_report().unwrap();
    assert!(report.rows_removed() > 0);
    assert!(report.base.rows_removed() > 0);
    // History at the LWM is still exact: the oracle can reconstruct the
    // end-of-history state and it matches the rolled MV.
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap();
    assert_eq!(got, want);
    // Reads starting below the LWM are refused, not silently wrong.
    assert!(ctx
        .engine
        .delta_range(tables[0], TimeInterval::new(mat, end))
        .is_err());
}

/// The background compactor racing live updater transactions and a
/// propagating worker: stores are compacted under the advancing LWM while
/// windows propagate and the MV rolls forward; the final rolled MV must
/// equal the oracle state.
#[test]
fn background_compactor_with_concurrent_updaters_matches_oracle() {
    const N: usize = 3;
    const KEYS: i64 = 8;
    let (ctx, tables) = chain("bgc", N);
    let ctx = ctx
        .with_workers(2)
        .with_lock_granularity(LockGranularity::Striped(64))
        .with_compaction(CompactionPolicy::Background(1));
    let mat = materialize(&ctx).unwrap();
    let mut txn = ctx.engine.begin();
    for k in 0..KEYS {
        for t in &tables {
            txn.insert(*t, tup![k, k]).unwrap();
        }
    }
    txn.commit().unwrap();

    let compactor = spawn_compaction_driver(ctx.clone(), Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = [tables[0], tables[N - 1]]
        .into_iter()
        .map(|t| {
            let e = ctx.engine.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = e.begin();
                    txn.insert(t, tup![k % KEYS, k % KEYS]).unwrap();
                    txn.commit().unwrap();
                    k += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();

    let mut worker = DeltaWorker::new();
    let mut frontier = mat;
    let propagate_to = |worker: &mut DeltaWorker, frontier: &mut Csn, end: Csn| {
        if end <= *frontier {
            return;
        }
        worker.enqueue(PropQuery::all_base(N), 1, vec![*frontier; N], end);
        loop {
            match worker.run_auto(&ctx) {
                Ok(()) => break,
                Err(Error::LockTimeout { .. }) => continue,
                Err(e) => panic!("propagation failed: {e}"),
            }
        }
        *frontier = end;
        ctx.mv.set_hwm(end);
    };
    for i in 0..4 {
        std::thread::sleep(Duration::from_millis(2));
        let end = ctx.engine.current_csn();
        propagate_to(&mut worker, &mut frontier, end);
        if i == 1 {
            // Advance the apply position mid-run so the compactor's LWM
            // (min of HWM and apply position) actually moves.
            roll_to(&ctx, frontier).unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    let end = ctx.engine.current_csn();
    propagate_to(&mut worker, &mut frontier, end);

    ctx.engine.capture_catch_up().unwrap();
    roll_to(&ctx, frontier).unwrap();
    compactor.stop().unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, frontier).unwrap();
    assert_eq!(
        got, want,
        "MV diverged from oracle under a live background compactor"
    );
}
