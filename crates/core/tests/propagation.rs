//! End-to-end validation of `ComputeDelta` (Fig. 4), `Propagate` (Fig. 5),
//! and the apply process against the time-travel oracle: Definition 4.2
//! must hold over every subinterval, and point-in-time refresh must land
//! the MV exactly on `φ(V_t)`.

use rolljoin_common::{tup, ColumnType, Schema, TableId, TimeInterval};
use rolljoin_core::{
    compute_delta, materialize, oracle, roll_to, MaintCtx, MaterializedView, PropQuery, Propagator,
    ViewDef,
};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;

/// R(a,b) ⋈ S(b,c) projected to (a,c).
fn two_way() -> (MaintCtx, TableId, TableId) {
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "v",
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), r, s)
}

/// R(a,b) ⋈ S(b,c) ⋈ T(c,d) projected to (a,d).
fn three_way() -> (MaintCtx, Vec<TableId>) {
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    let t = e
        .create_table(
            "t",
            Schema::new([("c", ColumnType::Int), ("d", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "v3",
        vec![r, s, t],
        JoinSpec {
            slot_schemas: vec![
                e.schema(r).unwrap(),
                e.schema(s).unwrap(),
                e.schema(t).unwrap(),
            ],
            equi: vec![(1, 2), (3, 4)],
            filter: None,
            projection: vec![0, 5],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), vec![r, s, t])
}

fn insert(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.insert(t, tuple).unwrap();
    txn.commit().unwrap()
}

fn delete(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.delete_one(t, &tuple).unwrap();
    txn.commit().unwrap()
}

/// Assert Definition 4.2 over every pair `a < b` in `[from, to]`.
fn assert_timed_delta_everywhere(ctx: &MaintCtx, from: u64, to: u64) {
    ctx.engine.capture_catch_up().unwrap();
    for a in from..to {
        for b in (a + 1)..=to {
            assert!(
                oracle::timed_delta_holds(&ctx.engine, &ctx.mv, a, b).unwrap(),
                "Definition 4.2 violated on ({a},{b}]"
            );
        }
    }
}

#[test]
fn compute_delta_matches_oracle_two_way() {
    let (ctx, r, s) = two_way();
    // History: inserts, a join-producing pair, deletes.
    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    insert(&ctx, r, tup![2, 20]);
    insert(&ctx, s, tup![20, 200]);
    delete(&ctx, r, tup![1, 10]);
    let t_end = insert(&ctx, s, tup![20, 201]);

    // Propagate (0, t_end] asynchronously — further updates happen later,
    // exercising compensation.
    compute_delta(&ctx, &PropQuery::all_base(2), 1, &[0, 0], t_end).unwrap();
    // Post-propagation noise: these must NOT leak into (0, t_end].
    insert(&ctx, r, tup![9, 20]);
    delete(&ctx, s, tup![20, 200]);

    assert_timed_delta_everywhere(&ctx, 0, t_end);
}

#[test]
fn compute_delta_with_concurrent_updates_between_queries() {
    // The asynchronous guarantee: ComputeDelta runs while the database
    // keeps evolving. We interleave by propagating each prefix interval
    // after more updates have landed.
    let (ctx, r, s) = two_way();
    let mut marks = vec![0u64];
    for i in 0..10i64 {
        marks.push(insert(&ctx, r, tup![i, i % 3]));
        marks.push(insert(&ctx, s, tup![i % 3, 100 + i]));
        if i % 4 == 3 {
            marks.push(delete(&ctx, r, tup![i, i % 3]));
        }
    }
    let t_mid = *marks.last().unwrap();
    // More updates land before propagation even starts.
    for i in 0..5i64 {
        insert(&ctx, s, tup![i % 3, 200 + i]);
    }
    compute_delta(&ctx, &PropQuery::all_base(2), 1, &[0, 0], t_mid).unwrap();
    assert_timed_delta_everywhere(&ctx, 0, t_mid);
}

#[test]
fn paper_3_3_deletion_scenario_min_timestamp() {
    // §3.3: r1 ⋈ r2 exists in V_0; r1 deleted at t_a, r2 deleted at t_b
    // (t_a < t_b). The net effect must be a single deletion at time t_a.
    let (ctx, r, s) = two_way();
    insert(&ctx, r, tup![1, 7]);
    let t0 = insert(&ctx, s, tup![7, 70]);
    let t_a = delete(&ctx, r, tup![1, 7]);
    let t_b = delete(&ctx, s, tup![7, 70]);
    compute_delta(&ctx, &PropQuery::all_base(2), 1, &[t0, t0], t_b).unwrap();

    // Rolling to exactly t_a must already remove the join tuple.
    ctx.engine.capture_catch_up().unwrap();
    let net_at_a = ctx
        .engine
        .vd_net_range(ctx.mv.vd_table, TimeInterval::new(t0, t_a))
        .unwrap();
    assert_eq!(net_at_a.get(&tup![1, 70]), Some(&-1));
    // And between t_a and t_b nothing further happens to the view.
    let net_rest = ctx
        .engine
        .vd_net_range(ctx.mv.vd_table, TimeInterval::new(t_a, t_b))
        .unwrap();
    assert!(net_rest.is_empty());
    assert_timed_delta_everywhere(&ctx, t0, t_b);
}

#[test]
fn paper_3_3_insertion_scenario_min_timestamp() {
    // §3.3: x1 inserted into R at t_a, x2 into S at t_b; if they join the
    // net effect is an insertion at t_b (the minimum rule makes the early
    // half-pair cancel).
    let (ctx, r, s) = two_way();
    let t_a = insert(&ctx, r, tup![5, 50]);
    let t_b = insert(&ctx, s, tup![50, 500]);
    compute_delta(&ctx, &PropQuery::all_base(2), 1, &[0, 0], t_b).unwrap();
    ctx.engine.capture_catch_up().unwrap();

    // Before t_b: no join tuple (x2 not yet inserted).
    let before = ctx
        .engine
        .vd_net_range(ctx.mv.vd_table, TimeInterval::new(0, t_a))
        .unwrap();
    assert!(before.is_empty(), "nothing joins before x2 arrives");
    // Through t_b: exactly one insertion.
    let through = ctx
        .engine
        .vd_net_range(ctx.mv.vd_table, TimeInterval::new(0, t_b))
        .unwrap();
    assert_eq!(through.get(&tup![5, 500]), Some(&1));
    assert_timed_delta_everywhere(&ctx, 0, t_b);
}

#[test]
fn propagate_loop_advances_hwm_and_stays_correct() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let mut prop = Propagator::new(ctx.clone(), mat);
    for i in 0..30i64 {
        insert(&ctx, r, tup![i, i % 5]);
        if i % 2 == 0 {
            insert(&ctx, s, tup![i % 5, 1000 + i]);
        }
        if i % 7 == 6 {
            delete(&ctx, r, tup![i, i % 5]);
        }
    }
    // Propagate in small uneven steps. Maintenance transactions themselves
    // commit, so the clock keeps moving while we chase it: the HWM must at
    // least cover every data commit made above.
    let last_data_csn = ctx.engine.current_csn();
    let hwm = prop.step_available(3).unwrap();
    assert!(hwm >= last_data_csn);
    assert_eq!(ctx.mv.hwm(), hwm);
    assert_timed_delta_everywhere(&ctx, mat, hwm);
}

#[test]
fn point_in_time_refresh_hits_oracle_at_every_stop() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let mut prop = Propagator::new(ctx.clone(), mat);
    for i in 0..20i64 {
        insert(&ctx, r, tup![i, i % 4]);
        insert(&ctx, s, tup![i % 4, 300 + i]);
    }
    let hwm = prop.step_available(5).unwrap();
    ctx.engine.capture_catch_up().unwrap();

    // Roll forward through several intermediate points; after each roll the
    // MV must equal φ(V_t).
    for target in [mat + 3, mat + 10, mat + 17, hwm] {
        roll_to(&ctx, target).unwrap();
        assert_eq!(ctx.mv.mat_time(), target);
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, target).unwrap();
        assert_eq!(got, want, "MV diverged from oracle at t={target}");
    }

    // Backward rolls and beyond-HWM rolls are rejected.
    assert!(roll_to(&ctx, mat).is_err());
    let _ = insert(&ctx, r, tup![99, 0]);
    assert!(roll_to(&ctx, ctx.engine.current_csn()).is_err());
}

#[test]
fn compute_delta_three_way_matches_oracle() {
    let (ctx, ts) = three_way();
    let (r, s, t) = (ts[0], ts[1], ts[2]);
    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    insert(&ctx, t, tup![100, 7]);
    insert(&ctx, s, tup![10, 101]);
    insert(&ctx, t, tup![101, 8]);
    delete(&ctx, s, tup![10, 100]);
    let t_end = insert(&ctx, r, tup![2, 10]);
    // Noise after the interval.
    compute_delta(&ctx, &PropQuery::all_base(3), 1, &[0, 0, 0], t_end).unwrap();
    insert(&ctx, t, tup![101, 9]);
    delete(&ctx, r, tup![1, 10]);
    assert_timed_delta_everywhere(&ctx, 0, t_end);
}

#[test]
fn propagate_three_way_stepwise() {
    let (ctx, ts) = three_way();
    let (r, s, t) = (ts[0], ts[1], ts[2]);
    let mat = materialize(&ctx).unwrap();
    let mut prop = Propagator::new(ctx.clone(), mat);
    for i in 0..12i64 {
        insert(&ctx, r, tup![i, i % 3]);
        insert(&ctx, s, tup![i % 3, i % 4]);
        insert(&ctx, t, tup![i % 4, i]);
        if i % 5 == 4 {
            delete(&ctx, s, tup![i % 3, i % 4]);
        }
    }
    let hwm = prop.step_available(4).unwrap();
    assert_timed_delta_everywhere(&ctx, mat, hwm);
    // Roll all the way and compare to oracle.
    roll_to(&ctx, hwm).unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, hwm).unwrap();
    assert_eq!(got, want);
}

#[test]
fn empty_intervals_are_cheap_and_harmless() {
    let (ctx, r, s) = two_way();
    insert(&ctx, r, tup![1, 1]);
    let t1 = insert(&ctx, s, tup![1, 1]);
    let mut prop = Propagator::new(ctx.clone(), 0);
    prop.propagate_to(t1, 1).unwrap();
    let before = ctx.stats.snapshot();
    // Commits on unrelated tables advance the clock without touching r/s.
    let noise = ctx
        .engine
        .create_table("noise", Schema::new([("x", ColumnType::Int)]))
        .unwrap();
    let mut txn = ctx.engine.begin();
    txn.insert(noise, tup![1]).unwrap();
    let t2 = txn.commit().unwrap();
    prop.propagate_to(t2, 1).unwrap();
    let after = ctx.stats.snapshot();
    assert_eq!(
        after.since(&before).total_queries(),
        0,
        "empty-delta pruning skips all queries"
    );
    assert_timed_delta_everywhere(&ctx, 0, t2);
}
