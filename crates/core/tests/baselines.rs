//! Synchronous baselines (Eqs. 1–2), the summary-delta aggregation
//! extension, full refresh, and the background driver trio.

use rolljoin_common::{tup, ColumnType, Schema, TableId};
use rolljoin_core::{
    full_refresh, materialize, oracle, roll_to, spawn_apply_driver, spawn_capture_driver,
    spawn_rolling_driver, sync_propagate_eq1, sync_propagate_eq2, AggFn, AggSpec, CaptureWait,
    MaintCtx, MaterializedView, SummaryView, UniformInterval, ViewDef,
};

use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;
use std::time::Duration;

fn two_way() -> (MaintCtx, TableId, TableId) {
    let e = Engine::new();
    let r = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    let s = e
        .create_table(
            "s",
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )
        .unwrap();
    let view = ViewDef::new(
        &e,
        "v",
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), r, s)
}

fn insert(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.insert(t, tuple).unwrap();
    txn.commit().unwrap()
}

fn delete(ctx: &MaintCtx, t: TableId, tuple: rolljoin_common::Tuple) -> u64 {
    let mut txn = ctx.engine.begin();
    txn.delete_one(t, &tuple).unwrap();
    txn.commit().unwrap()
}

#[test]
fn eq1_produces_a_timed_delta() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    insert(&ctx, r, tup![2, 10]);
    delete(&ctx, r, tup![1, 10]);
    let last = insert(&ctx, s, tup![10, 101]);

    let out = sync_propagate_eq1(&ctx, mat).unwrap();
    assert_eq!(out.queries, 3, "2^2 − 1");
    assert!(out.to > last);
    // Because Eq. 1 runs under locks, it is equivalent to a zero-drift
    // ComputeDelta — its output is a *timed* delta: every subinterval of
    // (mat, last] must satisfy Definition 4.2.
    ctx.engine.capture_catch_up().unwrap();
    for a in mat..last {
        for b in (a + 1)..=last {
            assert!(
                oracle::timed_delta_holds(&ctx.engine, &ctx.mv, a, b).unwrap(),
                "Eq. 1 delta not timed on ({a},{b}]"
            );
        }
    }
    // And the view can be rolled to the transaction's own commit time.
    roll_to(&ctx, out.to).unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, last).unwrap();
    assert_eq!(got, want);
}

#[test]
fn eq2_endpoint_delta_matches_oracle() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    delete(&ctx, r, tup![1, 10]);
    insert(&ctx, r, tup![3, 10]);
    let to = insert(&ctx, s, tup![10, 200]);
    ctx.engine.capture_catch_up().unwrap();

    let out = sync_propagate_eq2(&ctx, mat, to).unwrap();
    assert_eq!(out.queries, 2, "n queries");
    // Eq. 2's delta is valid endpoint-to-endpoint (the paper never claims
    // its timestamps support intermediate points).
    let (lhs, rhs) = oracle::check_timed_delta(&ctx.engine, &ctx.mv, mat, to).unwrap();
    assert_eq!(lhs, rhs);
}

#[test]
fn eq1_and_compute_delta_agree_on_net_effect() {
    // Same history propagated two ways must produce φ-identical deltas.
    let (ctx1, r1, s1) = two_way();
    let (ctx2, r2, s2) = two_way();
    let script = |ctx: &MaintCtx, r: TableId, s: TableId| {
        insert(ctx, r, tup![1, 7]);
        insert(ctx, s, tup![7, 70]);
        insert(ctx, s, tup![7, 71]);
        delete(ctx, s, tup![7, 70]);
        insert(ctx, r, tup![2, 7])
    };
    let end1 = script(&ctx1, r1, s1);
    let end2 = script(&ctx2, r2, s2);
    assert_eq!(end1, end2);

    sync_propagate_eq1(&ctx1, 0).unwrap();
    rolljoin_core::compute_delta(
        &ctx2,
        &rolljoin_core::PropQuery::all_base(2),
        1,
        &[0, 0],
        end2,
    )
    .unwrap();
    let n1 = ctx1
        .engine
        .vd_net_range(
            ctx1.mv.vd_table,
            rolljoin_common::TimeInterval::new(0, end1),
        )
        .unwrap();
    let n2 = ctx2
        .engine
        .vd_net_range(
            ctx2.mv.vd_table,
            rolljoin_common::TimeInterval::new(0, end2),
        )
        .unwrap();
    assert_eq!(n1, n2);
}

#[test]
fn full_refresh_replaces_and_prunes() {
    let (ctx, r, s) = two_way();
    materialize(&ctx).unwrap();
    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    // Stale VD rows exist…
    sync_propagate_eq1(&ctx, 0).unwrap();
    assert!(ctx.engine.vd_len(ctx.mv.vd_table).unwrap() > 0);
    insert(&ctx, s, tup![10, 101]);
    let t = full_refresh(&ctx).unwrap();
    assert_eq!(ctx.mv.mat_time(), t);
    assert_eq!(ctx.mv.hwm(), t);
    assert_eq!(ctx.engine.vd_len(ctx.mv.vd_table).unwrap(), 0, "pruned");
    ctx.engine.capture_catch_up().unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, ctx.engine.capture_hwm()).unwrap();
    assert_eq!(got, want);
}

#[test]
fn summary_view_maintains_aggregates() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    // View output is (a, c); aggregate: GROUP BY a, COUNT + SUM(c).
    let mut sv = SummaryView::register(
        ctx.clone(),
        AggSpec {
            group_by: vec![0],
            aggregates: vec![AggFn::Count, AggFn::Sum(1)],
        },
    )
    .unwrap();

    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 100]);
    insert(&ctx, s, tup![10, 50]);
    insert(&ctx, r, tup![2, 10]);
    let end = delete(&ctx, s, tup![10, 50]);

    let mut prop = rolljoin_core::Propagator::new(ctx.clone(), mat);
    prop.propagate_to(end, 2).unwrap();

    // Summary delta content check.
    let sd = sv.summary_delta(end).unwrap();
    assert_eq!(sd.len(), 2);
    let g1 = sd.iter().find(|x| x.group == tup![1]).unwrap();
    assert_eq!(g1.changes, vec![1, 1, 100], "rows, count, sum(c)");
    let g2 = sd.iter().find(|x| x.group == tup![2]).unwrap();
    assert_eq!(g2.changes, vec![1, 1, 100]);

    sv.refresh_to(end).unwrap();
    let state = sv.state().unwrap();
    assert_eq!(state[&tup![1]], (1, vec![1, 100]));
    assert_eq!(state[&tup![2]], (1, vec![1, 100]));

    // Incremental follow-up: delete a fact row, group 1 disappears.
    let end2 = delete(&ctx, r, tup![1, 10]);
    prop.propagate_to(end2, 2).unwrap();
    sv.refresh_to(end2).unwrap();
    let state = sv.state().unwrap();
    assert!(!state.contains_key(&tup![1]));
    assert_eq!(state[&tup![2]], (1, vec![1, 100]));
}

#[test]
fn summary_view_rejects_bad_specs() {
    let (ctx, _r, _s) = two_way();
    assert!(SummaryView::register(
        ctx.clone(),
        AggSpec {
            group_by: vec![9],
            aggregates: vec![],
        }
    )
    .is_err());
    assert!(SummaryView::register(
        ctx.clone(),
        AggSpec {
            group_by: vec![0],
            aggregates: vec![AggFn::Sum(9)],
        }
    )
    .is_err());
}

#[test]
fn driver_trio_runs_end_to_end() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let ctx = MaintCtx {
        capture_wait: CaptureWait::Block {
            poll: Duration::from_millis(1),
            timeout: Duration::from_secs(10),
        },
        ..ctx
    };
    let capture = spawn_capture_driver(ctx.engine.clone(), Duration::from_millis(1), 512);
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(UniformInterval(4)),
        Duration::from_millis(2),
    );
    let apply = spawn_apply_driver(ctx.clone(), Duration::from_millis(5));

    // Foreground updaters.
    for i in 0..60i64 {
        insert(&ctx, r, tup![i, i % 5]);
        if i % 3 == 0 {
            insert(&ctx, s, tup![i % 5, 100 + i]);
        }
        if i % 10 == 9 {
            delete(&ctx, r, tup![i, i % 5]);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let last = ctx.engine.current_csn();

    // Wait until the pipeline has rolled the MV past `last`.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while ctx.mv.mat_time() < last {
        assert!(
            std::time::Instant::now() < deadline,
            "pipeline stalled: mat={} hwm={} capture={} last={last}",
            ctx.mv.mat_time(),
            ctx.mv.hwm(),
            ctx.engine.capture_hwm()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    prop.stop().unwrap();
    apply.stop().unwrap();
    capture.stop().unwrap();

    // Final state equals the oracle at the rolled-to time.
    let rolled = ctx.mv.mat_time();
    ctx.engine.capture_catch_up().unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, rolled).unwrap();
    assert_eq!(got, want);
}

#[test]
fn drivers_suspend_and_resume() {
    let (ctx, r, _s) = two_way();
    let mat = materialize(&ctx).unwrap();
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(UniformInterval(2)),
        Duration::from_millis(1),
    );
    prop.suspend();
    let hwm_before = ctx.mv.hwm();
    insert(&ctx, r, tup![1, 1]);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(ctx.mv.hwm(), hwm_before, "suspended driver must not move");
    prop.resume();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ctx.mv.hwm() <= hwm_before {
        assert!(std::time::Instant::now() < deadline, "resume did not take");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(prop.is_running());
    prop.stop().unwrap();
}

#[test]
fn summary_view_min_max_survive_extreme_deletion() {
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    // View output (a, c); aggregate GROUP BY a with MIN(c)/MAX(c)/COUNT.
    let mut sv = SummaryView::register(
        ctx.clone(),
        AggSpec {
            group_by: vec![0],
            aggregates: vec![AggFn::Count, AggFn::Min(1), AggFn::Max(1)],
        },
    )
    .unwrap();

    insert(&ctx, r, tup![1, 10]);
    insert(&ctx, s, tup![10, 5]);
    insert(&ctx, s, tup![10, 50]);
    let t1 = insert(&ctx, s, tup![10, 500]);
    let mut prop = rolljoin_core::Propagator::new(ctx.clone(), mat);
    prop.propagate_to(t1, 4).unwrap();
    // MIN/MAX require the MV itself rolled first; unrolled refresh errors.
    assert!(sv.refresh_to(t1).is_err());
    roll_to(&ctx, t1).unwrap();
    sv.refresh_to(t1).unwrap();
    assert_eq!(sv.state().unwrap()[&tup![1]], (3, vec![3, 5, 500]));

    // Delete both extremes: MIN and MAX must be recomputed, not patched.
    delete(&ctx, s, tup![10, 5]);
    let t2 = delete(&ctx, s, tup![10, 500]);
    prop.propagate_to(t2, 4).unwrap();
    roll_to(&ctx, t2).unwrap();
    sv.refresh_to(t2).unwrap();
    assert_eq!(sv.state().unwrap()[&tup![1]], (1, vec![1, 50, 50]));

    // Group disappears entirely.
    let t3 = delete(&ctx, s, tup![10, 50]);
    prop.propagate_to(t3, 4).unwrap();
    roll_to(&ctx, t3).unwrap();
    sv.refresh_to(t3).unwrap();
    assert!(sv.state().unwrap().is_empty());
}

#[test]
fn latency_budget_policy_drives_rolling_correctly() {
    use std::time::Duration;
    let (ctx, r, s) = two_way();
    let mat = materialize(&ctx).unwrap();
    for i in 0..40i64 {
        insert(&ctx, r, tup![i, i % 5]);
        if i % 2 == 0 {
            insert(&ctx, s, tup![i % 5, i]);
        }
    }
    let target = ctx.engine.current_csn();
    let mut rp = rolljoin_core::RollingPropagator::new(ctx.clone(), mat);
    let mut policy = rolljoin_core::LatencyBudget::new(Duration::from_millis(50), 512);
    // Drive through step() so observe() feedback happens.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while ctx.mv.hwm() < target {
        assert!(std::time::Instant::now() < deadline, "stalled");
        rp.step(&mut policy).unwrap();
    }
    assert!(
        policy.current_width() > 1,
        "fast steps should have grown the width"
    );
    roll_to(&ctx, target).unwrap();
    ctx.engine.capture_catch_up().unwrap();
    assert_eq!(
        oracle::mv_state(&ctx.engine, &ctx.mv).unwrap(),
        oracle::view_at(&ctx.engine, &ctx.mv.view, target).unwrap()
    );
}
