//! Equivalence oracle for stripe-granular locking: under any update
//! history, propagation running with `LockGranularity::Striped(n)` must
//! produce a view delta with the same net effect (`φ`, Definition 4.1) as
//! the table-granularity run, and refresh from the striped delta must land
//! the MV exactly on the oracle state. Locking granularity changes *what
//! blocks what*, never *what a committed transaction reads* — strict 2PL
//! at either grain serializes conflicting work, so the paper's CSN-order
//! correctness argument is untouched. These tests are the executable form
//! of that claim, including under live concurrent updaters.

use proptest::prelude::*;
use rolljoin_common::{tup, ColumnType, Csn, Error, Schema, TableId, TimeInterval, Tuple};
use rolljoin_core::{
    compute_delta, materialize, oracle, roll_to, DeltaWorker, MaintCtx, MaterializedView,
    PropQuery, ViewDef,
};
use rolljoin_relalg::{net_effect, JoinSpec, NetEffect};
use rolljoin_storage::{Engine, LockGranularity};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An n-way chain `R1(k0,k1) ⋈ … ⋈ Rn(k_{n-1},k_n)` projected to
/// `(k0, k_n)`, with indexes on both columns of every table (the
/// workload-crate `Chain` schema, rebuilt here because `rolljoin-core`
/// cannot depend on `rolljoin-workload`).
fn chain(name: &str, n: usize) -> (MaintCtx, Vec<TableId>) {
    let e = Engine::new();
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let t = e
            .create_table(
                &format!("{name}_r{i}"),
                Schema::new([
                    (format!("k{i}"), ColumnType::Int),
                    (format!("k{}", i + 1), ColumnType::Int),
                ]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.create_index(t, 1).unwrap();
        tables.push(t);
    }
    let slot_schemas: Vec<Schema> = tables.iter().map(|t| e.schema(*t).unwrap()).collect();
    let equi: Vec<(usize, usize)> = (0..n.saturating_sub(1))
        .map(|i| (2 * i + 1, 2 * (i + 1)))
        .collect();
    let view = ViewDef::new(
        &e,
        name,
        tables.clone(),
        JoinSpec {
            slot_schemas,
            equi,
            filter: None,
            projection: vec![0, 2 * n - 1],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), tables)
}

/// One base-table operation in a generated history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (table_idx, key, payload).
    Insert(usize, i64, i64),
    /// Delete an arbitrary live tuple of table_idx (by index).
    Delete(usize, usize),
}

fn arb_ops(tables: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..tables, 0i64..4, 0i64..50).prop_map(|(t, k, p)| Op::Insert(t, k, p)),
            1 => (0..tables, any::<prop::sample::Index>())
                .prop_map(|(t, i)| Op::Delete(t, i.index(1 << 20))),
        ],
        0..len,
    )
}

fn apply_ops(ctx: &MaintCtx, tables: &[TableId], ops: &[Op]) {
    let mut live: Vec<Vec<Tuple>> = vec![Vec::new(); tables.len()];
    for op in ops {
        match op {
            Op::Insert(t, k, p) => {
                let tuple = tup![*k, *p % 4];
                let mut txn = ctx.engine.begin();
                txn.insert(tables[*t], tuple.clone()).unwrap();
                txn.commit().unwrap();
                live[*t].push(tuple);
            }
            Op::Delete(t, i) => {
                if live[*t].is_empty() {
                    continue;
                }
                let idx = i % live[*t].len();
                let victim = live[*t].swap_remove(idx);
                let mut txn = ctx.engine.begin();
                txn.delete_one(tables[*t], &victim).unwrap();
                txn.commit().unwrap();
            }
        }
    }
}

/// Replay `ops` on a fresh n-way chain and run one `ComputeDelta` over the
/// whole history at the given granularity and worker count. Returns the
/// context, materialization time, history end, and `φ` of the produced
/// view delta.
fn run_chain(
    n: usize,
    ops: &[Op],
    granularity: LockGranularity,
    workers: usize,
) -> (MaintCtx, Csn, Csn, NetEffect) {
    let (ctx, tables) = chain("sg", n);
    let ctx = ctx.with_workers(workers).with_lock_granularity(granularity);
    let mat = materialize(&ctx).unwrap();
    apply_ops(&ctx, &tables, ops);
    let end = ctx.engine.current_csn();
    compute_delta(&ctx, &PropQuery::all_base(n), 1, &vec![mat; n], end).unwrap();
    ctx.mv.set_hwm(end);
    let vd = ctx
        .engine
        .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
        .unwrap();
    (ctx, mat, end, net_effect(vd))
}

/// Roll the MV to random targets and compare against the oracle state.
fn check_roll_targets(
    ctx: &MaintCtx,
    mat: Csn,
    end: Csn,
    stops: &[prop::sample::Index],
) -> Result<(), TestCaseError> {
    ctx.engine.capture_catch_up().unwrap();
    let mut targets: Vec<Csn> = stops
        .iter()
        .map(|i| mat + i.index((end - mat) as usize + 1) as Csn)
        .collect();
    targets.sort();
    for t in targets {
        if t <= ctx.mv.mat_time() {
            continue;
        }
        roll_to(ctx, t).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, t).unwrap();
        prop_assert_eq!(got, want, "striped MV diverged from oracle at t={}", t);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2..4-way chains: striped-lock propagation (64 stripes, and a tiny
    /// stripe count to force hash collisions) φ-matches table-lock
    /// propagation on the same history, and refresh from the striped
    /// delta hits the oracle at random roll targets.
    #[test]
    fn striped_matches_table_locking(
        n in 2usize..5,
        ops in arb_ops(4, 20),
        workers in 1usize..5,
        stops in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let ops: Vec<Op> = ops
            .iter()
            .filter(|op| match op {
                Op::Insert(t, ..) | Op::Delete(t, _) => *t < n,
            })
            .cloned()
            .collect();
        let (_, mat_t, end_t, phi_table) =
            run_chain(n, &ops, LockGranularity::Table, workers);
        let (ctx, mat, end, phi_striped) =
            run_chain(n, &ops, LockGranularity::Striped(64), workers);
        let (_, _, _, phi_collide) =
            run_chain(n, &ops, LockGranularity::Striped(3), 1);
        prop_assert_eq!((mat_t, end_t), (mat, end), "identical histories");
        prop_assert_eq!(&phi_table, &phi_striped, "φ(striped) ≠ φ(table)");
        prop_assert_eq!(&phi_table, &phi_collide, "φ(striped, colliding) ≠ φ(table)");
        check_roll_targets(&ctx, mat, end, &stops)?;
    }
}

/// Striped propagation racing live updater transactions: the DeltaWorker
/// propagates successive windows (retrying on timeout-resolved deadlocks)
/// while two threads keep committing single-row inserts to the chain's
/// endpoint tables. After the dust settles the rolled MV must equal the
/// oracle state — key-granular S locks may interleave with updater writes
/// at stripe precision, but committed reads are still serialized.
#[test]
fn striped_propagation_with_concurrent_updaters_matches_oracle() {
    const N: usize = 3;
    const KEYS: i64 = 8;
    for trial in 0..2 {
        let (ctx, tables) = chain(&format!("cc{trial}"), N);
        let ctx = ctx
            .with_workers(2)
            .with_lock_granularity(LockGranularity::Striped(64));
        let mat = materialize(&ctx).unwrap();
        // Seed matching keys so propagation queries produce join results.
        let mut txn = ctx.engine.begin();
        for k in 0..KEYS {
            for t in &tables {
                txn.insert(*t, tup![k, k]).unwrap();
            }
        }
        txn.commit().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let updaters: Vec<_> = [tables[0], tables[N - 1]]
            .into_iter()
            .map(|t| {
                let e = ctx.engine.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut k = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let mut txn = e.begin();
                        txn.insert(t, tup![k % KEYS, k % KEYS]).unwrap();
                        txn.commit().unwrap();
                        k += 1;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                })
            })
            .collect();

        let mut worker = DeltaWorker::new();
        let mut frontier = mat;
        let propagate_to = |worker: &mut DeltaWorker, frontier: &mut Csn, end: Csn| {
            if end <= *frontier {
                return;
            }
            worker.enqueue(PropQuery::all_base(N), 1, vec![*frontier; N], end);
            loop {
                match worker.run_auto(&ctx) {
                    Ok(()) => break,
                    Err(Error::LockTimeout { .. }) => continue,
                    Err(e) => panic!("propagation failed: {e}"),
                }
            }
            *frontier = end;
            ctx.mv.set_hwm(end);
        };
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(2));
            let end = ctx.engine.current_csn();
            propagate_to(&mut worker, &mut frontier, end);
        }
        stop.store(true, Ordering::Relaxed);
        for u in updaters {
            u.join().unwrap();
        }
        // Mop up the tail the updaters committed after the last window.
        let end = ctx.engine.current_csn();
        propagate_to(&mut worker, &mut frontier, end);

        ctx.engine.capture_catch_up().unwrap();
        roll_to(&ctx, frontier).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, frontier).unwrap();
        assert_eq!(
            got, want,
            "striped MV diverged from oracle under concurrent updaters (trial {trial})"
        );
    }
}
