//! φ-equivalence oracle for keyed delta-index probing: under any update
//! history, propagation that resolves delta slots by keyed posting probes
//! (`SlotSource::DeltaKeyed`) must produce a view delta with the same net
//! effect (`φ`, Definition 4.1) as the full-range-scan execution, and
//! refresh from the probed run must land the MV exactly on the oracle
//! state. A keyed probe is a semi-join restriction of `σ_{a,b}(Δ^R)` by an
//! equi-join neighbor's keys — sound because every join result must match
//! the neighbor on that column — so it changes *which rows are fetched*,
//! never the query result. These tests are the executable form of that
//! claim under all three compaction policies, including with a live
//! background compactor racing concurrent updaters.

use proptest::prelude::*;
use rolljoin_common::{tup, ColumnType, Csn, Error, Schema, TableId, TimeInterval, Tuple};
use rolljoin_core::{
    compute_delta, materialize, oracle, roll_to, spawn_compaction_driver, CompactionPolicy,
    DeltaWorker, ExecTuning, MaintCtx, MaterializedView, PropQuery, ViewDef,
};
use rolljoin_relalg::{net_effect, JoinSpec, NetEffect};
use rolljoin_storage::{Engine, LockGranularity};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An n-way chain `R1(k0,k1) ⋈ … ⋈ Rn(k_{n-1},k_n)` projected to
/// `(k0, k_n)`, with secondary indexes on both columns of every base table
/// and — when `delta_indexes` is set — keyed time-range indexes on both
/// columns of every delta store.
fn chain(name: &str, n: usize, delta_indexes: bool) -> (MaintCtx, Vec<TableId>) {
    let e = Engine::new();
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let t = e
            .create_table(
                &format!("{name}_r{i}"),
                Schema::new([
                    (format!("k{i}"), ColumnType::Int),
                    (format!("k{}", i + 1), ColumnType::Int),
                ]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.create_index(t, 1).unwrap();
        if delta_indexes {
            e.create_delta_index(t, 0).unwrap();
            e.create_delta_index(t, 1).unwrap();
        }
        tables.push(t);
    }
    let slot_schemas: Vec<Schema> = tables.iter().map(|t| e.schema(*t).unwrap()).collect();
    let equi: Vec<(usize, usize)> = (0..n.saturating_sub(1))
        .map(|i| (2 * i + 1, 2 * (i + 1)))
        .collect();
    let view = ViewDef::new(
        &e,
        name,
        tables.clone(),
        JoinSpec {
            slot_schemas,
            equi,
            filter: None,
            projection: vec![0, 2 * n - 1],
        },
    )
    .unwrap();
    let mv = MaterializedView::register(&e, view).unwrap();
    (MaintCtx::new(e, mv), tables)
}

/// One base-table operation in a generated history. Keys come from a tiny
/// domain so histories are churn-heavy and keys collide across tables —
/// the regime where probe-vs-scan decisions actually flip both ways.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (table_idx, key, payload).
    Insert(usize, i64, i64),
    /// Delete an arbitrary live tuple of table_idx (by index).
    Delete(usize, usize),
}

fn arb_ops(tables: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..tables, 0i64..4, 0i64..50).prop_map(|(t, k, p)| Op::Insert(t, k, p)),
            1 => (0..tables, any::<prop::sample::Index>())
                .prop_map(|(t, i)| Op::Delete(t, i.index(1 << 20))),
        ],
        0..len,
    )
}

fn apply_ops(ctx: &MaintCtx, tables: &[TableId], ops: &[Op]) {
    let mut live: Vec<Vec<Tuple>> = vec![Vec::new(); tables.len()];
    for op in ops {
        match op {
            Op::Insert(t, k, p) => {
                let tuple = tup![*k, *p % 4];
                let mut txn = ctx.engine.begin();
                txn.insert(tables[*t], tuple.clone()).unwrap();
                txn.commit().unwrap();
                live[*t].push(tuple);
            }
            Op::Delete(t, i) => {
                if live[*t].is_empty() {
                    continue;
                }
                let idx = i % live[*t].len();
                let victim = live[*t].swap_remove(idx);
                let mut txn = ctx.engine.begin();
                txn.delete_one(tables[*t], &victim).unwrap();
                txn.commit().unwrap();
            }
        }
    }
}

/// Replay `ops` on a fresh n-way chain and propagate the whole history in
/// `steps` windows, with delta slots resolved by keyed index probes
/// (`indexed`) or always by full range scans. Under `Background` the
/// stores are compacted between steps and the MV is rolled to the frontier
/// halfway through — so probes run against posting lists that have been
/// remapped and rebuilt mid-flight. Returns the context, materialization
/// time, history end, and `φ` of the full produced view delta.
fn run_chain(
    name: &str,
    n: usize,
    ops: &[Op],
    policy: CompactionPolicy,
    workers: usize,
    steps: usize,
    indexed: bool,
) -> (MaintCtx, Csn, Csn, NetEffect) {
    let (ctx, tables) = chain(name, n, indexed);
    let ctx = ctx.with_tuning(
        ExecTuning::default()
            .with_workers(workers)
            .with_compaction(policy)
            .with_delta_probe(indexed),
    );
    let mat = materialize(&ctx).unwrap();
    apply_ops(&ctx, &tables, ops);
    let end = ctx.engine.current_csn();
    let span = end - mat;
    let mut frontier = mat;
    for s in 1..=steps {
        let hi = if s == steps {
            end
        } else {
            mat + span * s as Csn / steps as Csn
        };
        if hi <= frontier {
            continue;
        }
        compute_delta(&ctx, &PropQuery::all_base(n), 1, &vec![frontier; n], hi).unwrap();
        ctx.mv.set_hwm(hi);
        frontier = hi;
        if s == steps / 2 {
            roll_to(&ctx, frontier).unwrap();
        }
        if matches!(policy, CompactionPolicy::Background(_)) {
            ctx.compact_stores().unwrap();
        }
    }
    let vd = ctx
        .engine
        .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
        .unwrap();
    (ctx, mat, end, net_effect(vd))
}

/// Roll to the end of history and compare the MV against the oracle.
fn check_final_state(ctx: &MaintCtx, end: Csn) -> Result<(), TestCaseError> {
    ctx.engine.capture_catch_up().unwrap();
    if end > ctx.mv.mat_time() {
        roll_to(ctx, end).unwrap();
    }
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap();
    prop_assert_eq!(got, want, "probed MV diverged from oracle at t={}", end);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 2..4-way chains under every compaction policy: the keyed-probe run
    /// φ-matches the full-scan run on the same history, and refresh from
    /// the probed delta hits the oracle at the end of history.
    #[test]
    fn indexed_delta_probes_phi_match_full_scans(
        n in 2usize..5,
        ops in arb_ops(4, 20),
        workers in 1usize..3,
        steps in 1usize..4,
    ) {
        let ops: Vec<Op> = ops
            .iter()
            .filter(|op| match op {
                Op::Insert(t, ..) | Op::Delete(t, _) => *t < n,
            })
            .cloned()
            .collect();
        for (tag, policy) in [
            ("off", CompactionPolicy::Off),
            ("scan", CompactionPolicy::OnScan),
            ("bg", CompactionPolicy::Background(1)),
        ] {
            let (_, mat_s, end_s, phi_scan) = run_chain(
                &format!("ds_{tag}"), n, &ops, policy, workers, steps, false,
            );
            let (ctx_idx, mat_i, end_i, phi_idx) = run_chain(
                &format!("di_{tag}"), n, &ops, policy, workers, steps, true,
            );
            prop_assert_eq!((mat_s, end_s), (mat_i, end_i), "identical histories");
            prop_assert_eq!(&phi_scan, &phi_idx, "φ(probed) ≠ φ(scanned) under {:?}", policy);
            check_final_state(&ctx_idx, end_i)?;
        }
    }
}

/// Deterministic probe visibility through the `ComputeDelta` recursion: a
/// deep-history chain where one relation's window is tiny makes the
/// compensation queries' other delta slots prime probe targets, so the
/// indexed run must record keyed probe decisions and read strictly fewer
/// delta rows than the scanning run — while producing the same view delta.
#[test]
fn recursion_probes_cut_delta_rows_read() {
    let build = |indexed: bool| {
        let (ctx, tables) = chain(if indexed { "rp1" } else { "rp0" }, 3, indexed);
        let ctx = ctx.with_tuning(
            ExecTuning::sequential()
                .with_delta_probe(indexed)
                .with_compaction(CompactionPolicy::Off),
        );
        let mat = materialize(&ctx).unwrap();
        // Deep distinct-key history on R2 and R3 (one commit each → deep
        // CSN history), then a single matching R1 row at the very end.
        for i in 0..60i64 {
            let mut txn = ctx.engine.begin();
            txn.insert(tables[1], tup![i % 8, i % 8]).unwrap();
            txn.commit().unwrap();
            let mut txn = ctx.engine.begin();
            txn.insert(tables[2], tup![i % 8, i]).unwrap();
            txn.commit().unwrap();
        }
        let mut txn = ctx.engine.begin();
        txn.insert(tables[0], tup![1, 3]).unwrap();
        txn.commit().unwrap();
        let end = ctx.engine.current_csn();
        compute_delta(&ctx, &PropQuery::all_base(3), 1, &[mat; 3], end).unwrap();
        ctx.mv.set_hwm(end);
        let vd = ctx
            .engine
            .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))
            .unwrap();
        (ctx, net_effect(vd))
    };
    let (ctx_scan, phi_scan) = build(false);
    let (ctx_idx, phi_idx) = build(true);
    assert_eq!(phi_scan, phi_idx, "φ must be preserved");
    let scan = ctx_scan.stats.snapshot();
    let idx = ctx_idx.stats.snapshot();
    assert_eq!(scan.delta_probe_decisions, 0, "probing off records nothing");
    assert!(
        idx.delta_probe_decisions > 0,
        "keyed probes fired through the recursion"
    );
    assert!(
        idx.delta_rows_read < scan.delta_rows_read,
        "probes read fewer delta rows ({} < {})",
        idx.delta_rows_read,
        scan.delta_rows_read
    );
}

/// Keyed probes racing live updater transactions and a background
/// compactor under striped locking: postings are appended by capture,
/// remapped by prunes, and rebuilt by compactions while probes read them;
/// the final rolled MV must equal the oracle state.
#[test]
fn probes_with_concurrent_updaters_and_compactor_match_oracle() {
    const N: usize = 3;
    const KEYS: i64 = 8;
    let (ctx, tables) = chain("dcc", N, true);
    let ctx = ctx.with_tuning(
        ExecTuning::default()
            .with_workers(2)
            .with_lock_granularity(LockGranularity::Striped(64))
            .with_compaction(CompactionPolicy::Background(1)),
    );
    let mat = materialize(&ctx).unwrap();
    let mut txn = ctx.engine.begin();
    for k in 0..KEYS {
        for t in &tables {
            txn.insert(*t, tup![k, k]).unwrap();
        }
    }
    txn.commit().unwrap();

    let compactor = spawn_compaction_driver(ctx.clone(), Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = [tables[0], tables[N - 1]]
        .into_iter()
        .map(|t| {
            let e = ctx.engine.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = e.begin();
                    txn.insert(t, tup![k % KEYS, k % KEYS]).unwrap();
                    txn.commit().unwrap();
                    k += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();

    let mut worker = DeltaWorker::new();
    let mut frontier = mat;
    let propagate_to = |worker: &mut DeltaWorker, frontier: &mut Csn, end: Csn| {
        if end <= *frontier {
            return;
        }
        worker.enqueue(PropQuery::all_base(N), 1, vec![*frontier; N], end);
        loop {
            match worker.run_auto(&ctx) {
                Ok(()) => break,
                Err(Error::LockTimeout { .. }) => continue,
                Err(e) => panic!("propagation failed: {e}"),
            }
        }
        *frontier = end;
        ctx.mv.set_hwm(end);
    };
    for i in 0..4 {
        std::thread::sleep(Duration::from_millis(2));
        let end = ctx.engine.current_csn();
        propagate_to(&mut worker, &mut frontier, end);
        if i == 1 {
            roll_to(&ctx, frontier).unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    let end = ctx.engine.current_csn();
    propagate_to(&mut worker, &mut frontier, end);

    ctx.engine.capture_catch_up().unwrap();
    roll_to(&ctx, frontier).unwrap();
    compactor.stop().unwrap();
    let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want = oracle::view_at(&ctx.engine, &ctx.mv.view, frontier).unwrap();
    assert_eq!(
        got, want,
        "MV diverged from oracle under keyed probes with live compaction"
    );
}
