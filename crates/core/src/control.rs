//! Control tables (paper Fig. 11).
//!
//! The paper's prototype keeps "control tables" in the engine that
//! "identify the tables associated with each materialized view, including
//! the view delta table, the underlying base tables, and their delta
//! tables" and "record the current view materialization time and the view
//! delta high-water mark". [`MaterializedView`] is exactly that record;
//! registering a view creates its MV storage table and its view delta
//! table.

use crate::view::ViewDef;
use rolljoin_common::{tup, ColumnType, Csn, Error, Result, Schema, TableId};
use rolljoin_storage::{Engine, LockMode, Txn};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the persistent control table (paper Fig. 11: "control tables
/// maintained in the database engine"). One row per materialized view:
/// `(view_name, mat_time)`. Because it is an ordinary logged base table,
/// the materialization time survives crash recovery.
pub const CONTROL_TABLE: &str = "__rolljoin_control";

/// Get or create the control table.
pub fn control_table(engine: &Engine) -> Result<TableId> {
    match engine.table_id(CONTROL_TABLE) {
        Ok(t) => Ok(t),
        Err(_) => engine.create_table(
            CONTROL_TABLE,
            Schema::new([("view", ColumnType::Str), ("mat_time", ColumnType::Int)]),
        ),
    }
}

fn csn_to_i64(t: Csn) -> Result<i64> {
    i64::try_from(t).map_err(|_| Error::Internal(format!("CSN {t} exceeds control range")))
}

/// Control-table entry for one materialized view.
pub struct MaterializedView {
    /// The view definition.
    pub view: Arc<ViewDef>,
    /// Table storing the materialized rows.
    pub mv_table: TableId,
    /// The view delta table.
    pub vd_table: TableId,
    /// Current materialization time `t_old`: the view's rows reflect the
    /// base tables as of this CSN.
    mat_time: AtomicU64,
    /// View delta high-water mark: `σ_{mat_time, hwm}(VD)` is a complete
    /// timed delta (paper Fig. 3). Advanced only by propagation.
    vd_hwm: AtomicU64,
}

impl MaterializedView {
    /// Register a view: create its MV table (`<name>__mv`) and view delta
    /// table (`<name>__vd`). The view starts empty, materialized at time 0
    /// with HWM 0 — call a materialization routine (or start propagation
    /// from 0 over initially-empty bases) before use.
    pub fn register(engine: &Engine, view: ViewDef) -> Result<Arc<MaterializedView>> {
        view.validate(engine)?;
        let out_schema = view.output_schema();
        let mv_table = engine.create_table(&format!("{}__mv", view.name), out_schema.clone())?;
        let vd_table = engine.create_view_delta(&format!("{}__vd", view.name), out_schema)?;
        // Persist the control row (mat_time = 0).
        let control = control_table(engine)?;
        let mut txn = engine.begin();
        txn.insert(control, tup![view.name.as_str(), 0i64])?;
        txn.commit()?;
        Ok(Self::attach(view, mv_table, vd_table))
    }

    /// Re-attach a view after engine recovery: looks up its MV and view
    /// delta tables by name and restores the materialization time from the
    /// persistent control table. The HWM restarts at the materialization
    /// time — the view delta is soft state and must be re-propagated from
    /// there (paper Fig. 3's picture after a restart).
    pub fn reattach(engine: &Engine, view: ViewDef) -> Result<Arc<MaterializedView>> {
        view.validate(engine)?;
        let mv_table = engine.table_id(&format!("{}__mv", view.name))?;
        let vd_table = engine.table_id(&format!("{}__vd", view.name))?;
        let control = engine.table_id(CONTROL_TABLE)?;
        let mut txn = engine.begin();
        let mat = txn
            .scan(control)?
            .into_iter()
            .find(|row| row[0].as_str() == Some(view.name.as_str()))
            .and_then(|row| row[1].as_int())
            .ok_or_else(|| Error::NoSuchTable(format!("control row for view {}", view.name)))?;
        txn.commit()?;
        let mv = Self::attach(view, mv_table, vd_table);
        mv.set_mat_time(mat as Csn);
        mv.set_hwm(mat as Csn);
        Ok(mv)
    }

    /// Update this view's persistent control row inside `txn` (called by
    /// the apply paths so the stored materialization time commits
    /// atomically with the MV contents).
    pub(crate) fn persist_mat_time(&self, txn: &mut Txn, engine: &Engine, new: Csn) -> Result<()> {
        let control = control_table(engine)?;
        txn.lock(control, LockMode::Exclusive)?;
        let name = self.view.name.as_str();
        // Replace whatever rows exist for this view (registration wrote 0;
        // a view attached without registration has none).
        for row in txn.scan(control)? {
            if row[0].as_str() == Some(name) {
                txn.delete_one(control, &row)?;
            }
        }
        txn.insert(control, tup![name, csn_to_i64(new)?])?;
        Ok(())
    }

    /// Attach a view definition to pre-existing MV / view-delta tables —
    /// used by union views, whose branches share one MV and one VD table.
    pub(crate) fn attach(
        view: ViewDef,
        mv_table: TableId,
        vd_table: TableId,
    ) -> Arc<MaterializedView> {
        Arc::new(MaterializedView {
            view: Arc::new(view),
            mv_table,
            vd_table,
            mat_time: AtomicU64::new(0),
            vd_hwm: AtomicU64::new(0),
        })
    }

    /// The current materialization time.
    pub fn mat_time(&self) -> Csn {
        self.mat_time.load(Ordering::Acquire)
    }

    /// The view delta high-water mark.
    pub fn hwm(&self) -> Csn {
        self.vd_hwm.load(Ordering::Acquire)
    }

    /// Advance the materialization time (apply process only).
    pub(crate) fn set_mat_time(&self, t: Csn) {
        self.mat_time.store(t, Ordering::Release);
    }

    /// Advance the high-water mark (monotone; lower values are ignored).
    ///
    /// The built-in propagators maintain this automatically; call it
    /// yourself only after driving `compute_delta` by hand, to declare the
    /// interval you have fully propagated.
    pub fn set_hwm(&self, t: Csn) {
        let mut cur = self.vd_hwm.load(Ordering::Relaxed);
        while cur < t {
            match self
                .vd_hwm
                .compare_exchange_weak(cur, t, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Number of base relations.
    pub fn n(&self) -> usize {
        self.view.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::{ColumnType, Schema};
    use rolljoin_relalg::JoinSpec;

    fn mv() -> (Engine, Arc<MaterializedView>) {
        let e = Engine::new();
        let r = e
            .create_table("r", Schema::new([("a", ColumnType::Int)]))
            .unwrap();
        let view = ViewDef::new(
            &e,
            "v",
            vec![r],
            JoinSpec {
                slot_schemas: vec![e.schema(r).unwrap()],
                equi: vec![],
                filter: None,
                projection: vec![0],
            },
        )
        .unwrap();
        let m = MaterializedView::register(&e, view).unwrap();
        (e, m)
    }

    #[test]
    fn register_creates_tables() {
        let (e, m) = mv();
        assert_eq!(e.table_id("v__mv").unwrap(), m.mv_table);
        assert_eq!(e.table_id("v__vd").unwrap(), m.vd_table);
        assert_eq!(m.mat_time(), 0);
        assert_eq!(m.hwm(), 0);
    }

    #[test]
    fn hwm_is_monotone() {
        let (_e, m) = mv();
        m.set_hwm(5);
        m.set_hwm(3); // ignored
        assert_eq!(m.hwm(), 5);
        m.set_hwm(9);
        assert_eq!(m.hwm(), 9);
    }

    #[test]
    fn duplicate_registration_fails() {
        let (e, m) = mv();
        let err = MaterializedView::register(&e, (*m.view).clone());
        assert!(err.is_err(), "MV table name collides");
    }
}
