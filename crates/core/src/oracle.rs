//! Ground-truth oracles.
//!
//! The correctness statements of paper §4 are phrased with the net-effect
//! operator `φ` and view states `V_t`. These helpers compute both so tests
//! and experiments can check Definition 4.2 (timed delta table) directly:
//!
//! ```text
//! φ(σ_{a,b}(Δ) + V_a) = φ(V_b)      for all  mat ≤ a < b ≤ HWM
//! ```
//!
//! The oracle reconstructs `V_t` by time-travelling every base table to `t`
//! (possible only because our substrate keeps full delta history — the
//! maintenance algorithms themselves never do this).

use crate::control::MaterializedView;
use crate::view::ViewDef;
use rolljoin_common::{Csn, Result, TimeInterval};
use rolljoin_relalg::{exec, fetch, net_effect, NetEffect, SlotSource};
use rolljoin_storage::Engine;

/// `φ(V_t)`: the view's state at time `t`, recomputed from scratch.
/// Requires the capture HWM ≥ `t`.
pub fn view_at(engine: &Engine, view: &ViewDef, t: Csn) -> Result<NetEffect> {
    let mut txn = engine.begin();
    let mut slot_rows = Vec::with_capacity(view.n());
    for base in &view.bases {
        slot_rows.push(fetch(engine, &mut txn, &SlotSource::AsOf(*base, t))?);
    }
    let (rows, _) = exec::execute(slot_rows, &view.spec, 1)?;
    txn.commit()?;
    Ok(net_effect(rows))
}

/// `φ` of the current materialized rows of the MV table.
pub fn mv_state(engine: &Engine, mv: &MaterializedView) -> Result<NetEffect> {
    let mut txn = engine.begin();
    let counts = txn.scan_counts(mv.mv_table)?;
    txn.commit()?;
    Ok(counts.into_iter().collect())
}

/// Check Definition 4.2 for the view delta over `(a, b]`:
/// `φ(σ_{a,b}(VD) + V_a) == φ(V_b)`. Returns the two sides for diagnostics.
pub fn check_timed_delta(
    engine: &Engine,
    mv: &MaterializedView,
    a: Csn,
    b: Csn,
) -> Result<(NetEffect, NetEffect)> {
    let v_a = view_at(engine, &mv.view, a)?;
    let v_b = view_at(engine, &mv.view, b)?;
    let delta: NetEffect = engine
        .vd_net_range(mv.vd_table, TimeInterval::new(a, b))?
        .into_iter()
        .collect();
    let lhs = rolljoin_relalg::add(&delta, &v_a);
    Ok((lhs, v_b))
}

/// Assert-style wrapper for tests: true iff Definition 4.2 holds on `(a,b]`.
pub fn timed_delta_holds(engine: &Engine, mv: &MaterializedView, a: Csn, b: Csn) -> Result<bool> {
    let (lhs, rhs) = check_timed_delta(engine, mv, a, b)?;
    Ok(lhs == rhs)
}
