//! Synchronous propagation baselines (paper §3.1).
//!
//! * [`sync_propagate_eq1`] — Equation 1: the view delta as the union of
//!   `2^n − 1` propagation queries (one per non-empty subset of slots
//!   replaced by deltas, with inclusion–exclusion signs), all executed in
//!   **one atomic transaction** that sees the base tables at the interval
//!   end. This is the "long transaction" the paper's asynchronous technique
//!   exists to break up: it S-locks every base table for its whole
//!   duration.
//! * [`sync_propagate_eq2`] — Equation 2 (\[7\]'s method): only `n` queries,
//!   but the `i`-th query must see relations left of the delta at the
//!   interval start `t_a` and those right of it at the end `t_b`. The paper
//!   points out these results are **not realizable** by any serializable
//!   transaction; we can only demonstrate the method because our substrate
//!   keeps full delta history for time travel. It exists for the E4
//!   experiment and as documentation-by-code.

use crate::execute::MaintCtx;
use rolljoin_common::{Csn, Error, Result, TimeInterval};
use rolljoin_relalg::{exec, fetch, SlotSource};
use rolljoin_storage::LockMode;

/// Report from a synchronous propagation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOutcome {
    /// End of the propagated interval (commit CSN of the atomic
    /// transaction for Eq. 1; the requested `to` for Eq. 2).
    pub to: Csn,
    /// Number of propagation queries evaluated.
    pub queries: usize,
    /// Total rows read across all queries.
    pub rows_read: usize,
    /// View-delta rows written.
    pub rows_written: usize,
}

/// Equation 1: propagate `(from, now]` in one atomic transaction using
/// `2^n − 1` queries with inclusion–exclusion signs
/// (`sign = (−1)^{|S|+1}` for delta-subset `S`). Returns the interval end
/// = the transaction's commit CSN, and advances the view-delta HWM to it.
pub fn sync_propagate_eq1(ctx: &MaintCtx, from: Csn) -> Result<SyncOutcome> {
    let view = &ctx.mv.view;
    let n = view.n();
    if n > 20 {
        return Err(Error::Invalid("2^n queries: n capped at 20".into()));
    }

    let mut txn = ctx.engine.begin();
    let mut order: Vec<_> = view.bases.clone();
    order.sort();
    order.dedup();
    for t in order {
        txn.lock(t, LockMode::Shared)?;
    }
    txn.lock(ctx.mv.vd_table, LockMode::Exclusive)?;

    // With every base S-locked, no further relevant commits can occur: the
    // deltas through `lock_point` are final for these tables, and the base
    // tables we read are exactly their state at our own commit time.
    let lock_point = ctx.engine.current_csn();
    if from > lock_point {
        return Err(Error::Invalid(format!(
            "interval start {from} is beyond the latest commit {lock_point}"
        )));
    }
    ctx.ensure_captured(lock_point)?;
    let interval = TimeInterval::new(from, lock_point);
    let any_delta = !interval.is_empty()
        && view
            .bases
            .iter()
            .map(|b| ctx.engine.delta_count(*b, interval))
            .collect::<Result<Vec<_>>>()?
            .iter()
            .any(|c| *c > 0);

    let mut queries = 0usize;
    let mut rows_read = 0usize;
    let mut rows_written = 0usize;
    // Every non-empty subset S of {0..n}: slots in S take the delta. Each
    // query's base slots get the same index-probe semi-join pushdown the
    // asynchronous path uses, so this baseline's problem is its atomicity
    // (one long multi-query transaction), not a missing index.
    for mask in 1u32..(1 << n) {
        let sign = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
        queries += 1;
        if !any_delta {
            continue;
        }
        let mut q = crate::query::PropQuery::all_base(n);
        let mut empty = false;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                if ctx.engine.delta_count(view.bases[i], interval)? == 0 {
                    empty = true;
                    break;
                }
                q = q.with_delta(i, interval);
            }
        }
        if empty {
            continue;
        }
        let slot_rows = ctx.fetch_slots(&mut txn, &q)?;
        rows_read += slot_rows.iter().map(|s| s.len()).sum::<usize>();
        let (rows, _) = exec::execute_shared(slot_rows, &view.spec, sign, None)?;
        for row in rows {
            if row.count == 0 {
                continue;
            }
            let ts = row
                .ts
                .ok_or_else(|| Error::Internal("sync result lost timestamp".into()))?;
            txn.vd_insert(ctx.mv.vd_table, ts, row.count, row.tuple)?;
            rows_written += 1;
        }
    }

    let to = txn.commit()?;
    // Nothing relevant committed in (lock_point, to]; the delta is valid
    // through our own commit time.
    ctx.mv.set_hwm(to);
    Ok(SyncOutcome {
        to,
        queries,
        rows_read,
        rows_written,
    })
}

/// Equation 2: propagate `(from, to]` using `n` queries, the `i`-th being
/// `R^1_a … R^{i-1}_a ΔR^i_{a,b} R^{i+1}_b … R^n_b`. Not realizable live
/// (paper §3.1) — implemented via time-travel snapshots, so it requires
/// `to ≤` capture HWM. Demonstration/baseline only.
pub fn sync_propagate_eq2(ctx: &MaintCtx, from: Csn, to: Csn) -> Result<SyncOutcome> {
    if to < from {
        return Err(Error::Invalid(format!("empty interval ({from},{to}]")));
    }
    ctx.ensure_captured(to)?;
    let view = &ctx.mv.view;
    let n = view.n();
    let interval = TimeInterval::new(from, to);

    let mut txn = ctx.engine.begin();
    txn.lock(ctx.mv.vd_table, LockMode::Exclusive)?;
    let mut queries = 0usize;
    let mut rows_read = 0usize;
    let mut rows_written = 0usize;
    for i in 0..n {
        queries += 1;
        let mut slot_rows = Vec::with_capacity(n);
        for (j, b) in view.bases.iter().enumerate() {
            let source = match j.cmp(&i) {
                std::cmp::Ordering::Less => SlotSource::AsOf(*b, from),
                std::cmp::Ordering::Equal => SlotSource::Delta(*b, interval),
                std::cmp::Ordering::Greater => SlotSource::AsOf(*b, to),
            };
            slot_rows.push(fetch(&ctx.engine, &mut txn, &source)?);
        }
        rows_read += slot_rows.iter().map(Vec::len).sum::<usize>();
        let (rows, _) = exec::execute(slot_rows, &view.spec, 1)?;
        for row in rows {
            if row.count == 0 {
                continue;
            }
            let ts = row
                .ts
                .ok_or_else(|| Error::Internal("sync result lost timestamp".into()))?;
            txn.vd_insert(ctx.mv.vd_table, ts, row.count, row.tuple)?;
            rows_written += 1;
        }
    }
    txn.commit()?;
    ctx.mv.set_hwm(to);
    Ok(SyncOutcome {
        to,
        queries,
        rows_read,
        rows_written,
    })
}

/// Number of queries Equation 1 needs for an `n`-way view.
pub fn eq1_query_count(n: usize) -> u64 {
    (1u64 << n) - 1
}

/// Number of queries Equation 2 needs for an `n`-way view.
pub fn eq2_query_count(n: usize) -> u64 {
    n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_count_formulas() {
        assert_eq!(eq1_query_count(2), 3);
        assert_eq!(eq1_query_count(3), 7);
        assert_eq!(eq1_query_count(5), 31);
        assert_eq!(eq2_query_count(3), 3);
    }
}
