//! Select–project–join view definitions.
//!
//! A view `V = π(σ(R^1 ⋈ R^2 ⋈ … ⋈ R^n))` (paper §2) is an ordered list of
//! base tables plus the join shape ([`JoinSpec`]) they share with every
//! propagation query derived from the view.

use rolljoin_common::{Error, Result, Schema, TableId};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;

/// Definition of an SPJ view over `n` base tables.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name (used to derive MV / view-delta table names).
    pub name: String,
    /// The underlying base tables `R^1 … R^n`, in slot order. The order is
    /// semantically irrelevant to the view but *operationally* significant
    /// to `RollingPropagate`: forward queries for `R^i` compensate overlap
    /// with relations numbered below `i` (paper Fig. 10).
    pub bases: Vec<TableId>,
    /// Join/selection/projection shape.
    pub spec: JoinSpec,
}

impl ViewDef {
    /// Build and validate a view definition against the engine's catalog.
    pub fn new(
        engine: &Engine,
        name: impl Into<String>,
        bases: Vec<TableId>,
        spec: JoinSpec,
    ) -> Result<Self> {
        let v = ViewDef {
            name: name.into(),
            bases,
            spec,
        };
        v.validate(engine)?;
        Ok(v)
    }

    /// Number of base relations `n`.
    pub fn n(&self) -> usize {
        self.bases.len()
    }

    /// Output (projected) schema of the view.
    pub fn output_schema(&self) -> Schema {
        self.spec.output_schema()
    }

    /// Check slot schemas against the catalog and the join shape's column
    /// references.
    pub fn validate(&self, engine: &Engine) -> Result<()> {
        if self.bases.is_empty() {
            return Err(Error::Invalid("view needs at least one base table".into()));
        }
        if self.bases.len() != self.spec.slot_schemas.len() {
            return Err(Error::Invalid(format!(
                "view {} has {} bases but {} slot schemas",
                self.name,
                self.bases.len(),
                self.spec.slot_schemas.len()
            )));
        }
        for (i, (base, slot)) in self.bases.iter().zip(&self.spec.slot_schemas).enumerate() {
            let actual = engine.schema(*base)?;
            if actual != *slot {
                return Err(Error::SchemaMismatch(format!(
                    "view {} slot {i}: table {base} has schema {actual}, view declares {slot}",
                    self.name
                )));
            }
        }
        self.spec.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::ColumnType;

    fn setup() -> (Engine, TableId, TableId) {
        let e = Engine::new();
        let r = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        let s = e
            .create_table(
                "s",
                Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
            )
            .unwrap();
        (e, r, s)
    }

    fn spec(e: &Engine, r: TableId, s: TableId) -> JoinSpec {
        JoinSpec {
            slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        }
    }

    #[test]
    fn valid_view_constructs() {
        let (e, r, s) = setup();
        let v = ViewDef::new(&e, "v", vec![r, s], spec(&e, r, s)).unwrap();
        assert_eq!(v.n(), 2);
        assert_eq!(v.output_schema().arity(), 2);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let (e, r, s) = setup();
        let mut sp = spec(&e, r, s);
        sp.slot_schemas[1] = Schema::new([("z", ColumnType::Str)]);
        assert!(ViewDef::new(&e, "v", vec![r, s], sp).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (e, r, s) = setup();
        let sp = spec(&e, r, s);
        assert!(ViewDef::new(&e, "v", vec![r], sp).is_err());
        assert!(ViewDef::new(
            &e,
            "v",
            vec![],
            JoinSpec {
                slot_schemas: vec![],
                equi: vec![],
                filter: None,
                projection: vec![],
            }
        )
        .is_err());
    }
}
