//! `RollingPropagate` — the paper's headline algorithm (Fig. 10).
//!
//! Rolling propagation refines `Propagate` in two ways (paper §3.4):
//!
//! 1. **Per-relation propagation intervals.** Each relation `R^i` has its
//!    own forward-query frontier `tfwd[i]`, so a rarely-updated dimension
//!    table can be swept in wide strides while a hot fact table moves in
//!    small steps.
//! 2. **Deferred, merged compensation.** Instead of compensating each
//!    forward query immediately (as `ComputeDelta` does when driven by
//!    `Propagate`), a forward query for `R^i` compensates — at its own
//!    execution time — for overlap with *all* not-yet-compensated forward
//!    queries of lower-numbered relations. Because the overlap region is
//!    generally not rectangular, it is split at the lower queries'
//!    execution times (`ComInterval`) and each rectangular piece is
//!    compensated with one `ComputeDelta` call whose intended times come
//!    from `CompTime`.
//!
//! Bookkeeping (all per Fig. 10):
//!
//! * `tfwd[i]` — frontier of forward queries for `R^i`;
//! * `querylist[i]` — forward queries of `R^i` not yet fully compensated
//!   (only relations `i < n` are recorded: nothing compensates against the
//!   last relation's queries, they always see lower relations correctly
//!   compensated);
//! * `tcomp[i]` — start of the oldest uncompensated query (or `tfwd[i]`),
//!   maintained by `PruneQueryLists`;
//! * the **view-delta high-water mark** is `min_i tcomp[i]` (Theorem 4.3).
//!
//! # Compensation modes
//!
//! The **deferred** compensation of Fig. 10 is presented in the paper
//! through two-relation figures; for `n ≥ 3` its `CompTime` bookkeeping is
//! under-specified on one point: a lower relation's recorded forward query
//! covers higher-numbered axes only up to its *own* execution time, while
//! the single intended timestamp `τ_d[j]` cannot express that bound — our
//! randomized oracle tests exhibit three-relation interleavings where a
//! literal reading under-covers the delta region (see DESIGN.md). We
//! therefore run Fig. 10's deferred scheme exactly for `n = 2` (where it
//! is airtight and matches Fig. 9), and for `n ≥ 3` use the provably
//! correct **immediate frontier-vector** variant: each forward query for
//! `R^i` over `(x, y]` is immediately compensated by
//! `ComputeDelta(−Q, τ, t_e)` with `τ[j] = tfwd[j]` for every `j ≠ i`, so
//! its net coverage is exactly the box
//! `{p_i ∈ (x, y]} × ∏_{j≠i} (−∞, tfwd[j]]` — the boxes tile the frontier
//! staircase with no overlap, every property of the paper (per-relation
//! intervals, asynchrony, timestamped delta, point-in-time refresh) is
//! preserved, and the HWM is simply `min_i tfwd[i]`.

use crate::compute_delta::DeltaWorker;
use crate::execute::{MaintCtx, QuerySpanCtx};
use crate::policy::IntervalPolicy;
use crate::query::PropQuery;
use crate::stats::PropStatsSnapshot;
use rolljoin_common::{Csn, Error, Result, TimeInterval};
use rolljoin_obs::JournalEntry;
use std::collections::VecDeque;
use std::time::Instant;

/// A recorded forward query awaiting compensation.
#[derive(Debug, Clone, Copy)]
struct FwdQuery {
    /// The propagation interval on the relation's own axis.
    interval: TimeInterval,
    /// Execution (commit) time of the query.
    exec: Csn,
}

/// What one rolling step did (for logging/experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingStep {
    /// Relation the forward query targeted.
    pub relation: usize,
    /// Width of the forward query's interval.
    pub width: u64,
    /// `true` if the step was skipped because the delta range was empty.
    pub skipped_empty: bool,
    /// The view-delta HWM after the step.
    pub hwm: Csn,
}

/// In-flight state of one rolling step whose compensation has not yet
/// fully committed — kept so a failed step resumes instead of
/// re-executing committed work.
#[derive(Debug, Clone, Copy)]
struct PendingStep {
    rel: usize,
    width: u64,
    /// End of the forward interval (`tfwd[rel]` advances to this).
    t_hi: Csn,
    /// Execution time of the forward query.
    t_e: Csn,
    /// Compensation progress along the relation's axis (deferred mode).
    t_s: Csn,
    rem: u64,
    /// Width of the segment currently enqueued in the worker.
    seg: Option<u64>,
    /// Span id of the forward query — parent of the compensation spans.
    span: u64,
    /// Stats at step start, for the journal's per-step query/row counts.
    stats0: PropStatsSnapshot,
    /// Wall clock at step start.
    started: Instant,
}

/// How a forward query's overlap with other relations is compensated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompensationMode {
    /// Fig. 10's deferred/merged compensation (querylists, `ComInterval`,
    /// `CompTime`). Sound for two-relation views; the default there.
    Deferred,
    /// Immediate frontier-vector compensation (net coverage = exact boxes
    /// on the frontier staircase). Sound for any `n`; the default for
    /// `n ≥ 3`.
    ImmediateBox,
}

/// The `RollingPropagate` process state.
pub struct RollingPropagator {
    ctx: MaintCtx,
    tfwd: Vec<Csn>,
    querylist: Vec<VecDeque<FwdQuery>>,
    worker: DeltaWorker,
    pending: Option<PendingStep>,
    mode: CompensationMode,
}

impl RollingPropagator {
    /// Start rolling propagation at `t_initial` (normally the view's
    /// materialization time).
    pub fn new(ctx: MaintCtx, t_initial: Csn) -> Self {
        let n = ctx.mv.n();
        let mode = if n <= 2 {
            CompensationMode::Deferred
        } else {
            CompensationMode::ImmediateBox
        };
        Self::with_mode(ctx, t_initial, mode)
    }

    /// Start with an explicit compensation mode. `Deferred` is rejected
    /// for views over more than two relations (see the module docs).
    pub fn with_mode(ctx: MaintCtx, t_initial: Csn, mode: CompensationMode) -> Self {
        let n = ctx.mv.n();
        assert!(
            !(mode == CompensationMode::Deferred && n > 2),
            "deferred compensation is only sound for n ≤ 2 relations"
        );
        RollingPropagator {
            ctx,
            tfwd: vec![t_initial; n],
            querylist: vec![VecDeque::new(); n],
            worker: DeltaWorker::new(),
            pending: None,
            mode,
        }
    }

    /// The compensation mode in use.
    pub fn mode(&self) -> CompensationMode {
        self.mode
    }

    /// Shared maintenance context.
    pub fn ctx(&self) -> &MaintCtx {
        &self.ctx
    }

    /// Forward-query frontiers, one per relation.
    pub fn tfwd(&self) -> &[Csn] {
        &self.tfwd
    }

    /// `tcomp[i]`: the oldest uncompensated forward query's interval start,
    /// or `tfwd[i]` when everything is compensated.
    pub fn tcomp(&self, i: usize) -> Csn {
        self.querylist[i]
            .front()
            .map(|q| q.interval.lo)
            .unwrap_or(self.tfwd[i])
    }

    /// The view-delta high-water mark: `min_i tcomp[i]` (Theorem 4.3).
    pub fn hwm(&self) -> Csn {
        (0..self.tfwd.len())
            .map(|i| self.tcomp(i))
            .min()
            .expect("views have ≥ 1 relation")
    }

    /// `PruneQueryLists` (Fig. 10): drop fully-compensated queries — those
    /// whose execution time is at or below every frontier, so no future
    /// compensation segment can start below them.
    fn prune_query_lists(&mut self) {
        let t = *self.tfwd.iter().min().expect("≥ 1 relation");
        for ql in &mut self.querylist {
            while ql.front().is_some_and(|q| q.exec <= t) {
                ql.pop_front();
            }
        }
    }

    /// `ComInterval` (Fig. 10): widest rectangular compensation starting at
    /// `t_s` for relation `i` — bounded by the smallest execution time
    /// greater than `t_s` among uncompensated queries of relations below
    /// `i` (`None` = unbounded).
    fn com_interval(&self, i: usize, t_s: Csn) -> Option<u64> {
        self.querylist[..i]
            .iter()
            .flatten()
            .map(|q| q.exec)
            .filter(|&e| e > t_s)
            .min()
            .map(|e| e - t_s)
    }

    /// `CompTime` (Fig. 10): how far back a compensation segment at `t_s`
    /// must roll relation `j` — the interval start of `j`'s earliest
    /// uncompensated query executed after `t_s`, else `tfwd[j]`.
    fn comp_time(&self, j: usize, t_s: Csn) -> Csn {
        self.querylist[j]
            .iter()
            .filter(|q| q.exec > t_s)
            .min_by_key(|q| q.exec)
            .map(|q| q.interval.lo)
            .unwrap_or(self.tfwd[j])
    }

    /// Finish a step whose compensation previously failed partway: drain
    /// the worker and continue enqueuing the remaining rectangular
    /// segments. No-op when nothing is pending.
    pub fn finish_pending(&mut self) -> Result<Option<RollingStep>> {
        let Some(mut p) = self.pending else {
            return Ok(None);
        };
        loop {
            self.worker.run_auto(&self.ctx)?;
            if let Some(seg) = p.seg.take() {
                p.t_s += seg;
                p.rem -= seg;
                self.pending = Some(p);
            }
            if p.rem == 0 {
                break;
            }
            // Next rectangular compensation segment (Fig. 10's
            // repeat/until loop).
            let d2 = self
                .com_interval(p.rel, p.t_s)
                .map_or(p.rem, |w| w.min(p.rem));
            let n = self.tfwd.len();
            let tau: Vec<Csn> = (0..n)
                .map(|j| {
                    if j < p.rel {
                        self.comp_time(j, p.t_s)
                    } else {
                        p.t_e
                    }
                })
                .collect();
            let cq = PropQuery::all_base(n).with_delta(p.rel, TimeInterval::new(p.t_s, p.t_s + d2));
            self.worker.enqueue_under(cq, -1, tau, p.t_e, p.span, 1);
            p.seg = Some(d2);
            self.pending = Some(p);
        }
        self.tfwd[p.rel] = p.t_hi;
        self.pending = None;
        let hwm = self.hwm();
        self.ctx.mv.set_hwm(hwm);
        if self.ctx.obs.tracing_on() {
            let d = self.ctx.stats.snapshot().since(&p.stats0);
            self.ctx.obs.journal_step(
                JournalEntry::new("rolling")
                    .with_relation(p.rel)
                    .with_interval(p.t_hi - p.width, p.t_hi)
                    .with_queries(d.total_queries(), d.comp_queries)
                    .with_rows(d.total_rows_read(), d.vd_rows_written)
                    .with_duration_ns(p.started.elapsed().as_nanos() as u64)
                    .with_hwm(hwm),
            );
        }
        if self.ctx.obs.metrics_on() {
            self.ctx
                .meters
                .record_step(&self.ctx.obs.meter, "rolling", false);
            self.ctx.refresh_gauges();
        }
        Ok(Some(RollingStep {
            relation: p.rel,
            width: p.width,
            skipped_empty: false,
            hwm,
        }))
    }

    /// One iteration of Fig. 10's loop body for a *caller-chosen* relation:
    /// execute `R^i`'s next forward query over `(tfwd[i], tfwd[i]+delta]`,
    /// then compensate its overlap with lower-numbered relations' queries.
    ///
    /// If a previous step failed partway (lock timeout), it is resumed and
    /// completed first; the new step then proceeds as asked.
    pub fn step_relation(&mut self, i: usize, delta: u64) -> Result<RollingStep> {
        self.finish_pending()?;
        let n = self.tfwd.len();
        if i >= n {
            return Err(Error::Invalid(format!("relation {i} of {n}")));
        }
        if delta == 0 {
            return Err(Error::Invalid("forward interval must be > 0".into()));
        }
        let t_s0 = self.tfwd[i];
        let t_hi = t_s0 + delta;
        let interval = TimeInterval::new(t_s0, t_hi);
        let started = Instant::now();
        let stats0 = self.ctx.stats.snapshot();
        let obs = self.ctx.obs.clone();
        let mut step_span = obs.span("rolling_step");
        step_span.arg("rel", i as i64);
        step_span.arg("lo", t_s0 as i64);
        step_span.arg("hi", t_hi as i64);
        if self.ctx.obs.metrics_on() {
            self.ctx
                .meters
                .record_interval_width(&self.ctx.obs.meter, i, delta);
        }
        self.ctx.ensure_captured(t_hi)?;
        self.prune_query_lists();

        // Empty-delta fast path: every query this step would issue (the
        // forward query and all its compensations) contains the same empty
        // delta slot, so all are empty. The frontier still advances; the
        // unrecorded query needs no querylist entry because compensating
        // against it would also be empty.
        if self.ctx.skip_empty
            && self
                .ctx
                .engine
                .delta_count(self.ctx.mv.view.bases[i], interval)?
                == 0
        {
            self.tfwd[i] = t_hi;
            let hwm = self.hwm();
            self.ctx.mv.set_hwm(hwm);
            step_span.arg("skipped_empty", 1);
            if self.ctx.obs.tracing_on() {
                self.ctx.obs.journal_step(
                    JournalEntry::new("rolling")
                        .with_relation(i)
                        .with_interval(t_s0, t_hi)
                        .with_skipped_empty(true)
                        .with_duration_ns(started.elapsed().as_nanos() as u64)
                        .with_hwm(hwm),
                );
            }
            if self.ctx.obs.metrics_on() {
                self.ctx
                    .meters
                    .record_step(&self.ctx.obs.meter, "rolling", true);
                self.ctx.refresh_gauges();
            }
            return Ok(RollingStep {
                relation: i,
                width: delta,
                skipped_empty: true,
                hwm,
            });
        }

        // The forward query is a single transaction: a failure here leaves
        // no durable state, so the caller can simply retry the step.
        let fq = PropQuery::all_base(n).with_delta(i, interval);
        let fctx = QuerySpanCtx {
            parent: step_span.id(),
            depth: 0,
            rel: Some(i),
        };
        let (outcome, fwd_span) = self.ctx.execute_traced(&fq, 1, fctx)?;
        let t_e = outcome.exec_csn;

        match self.mode {
            CompensationMode::Deferred => {
                if i < n - 1 {
                    self.querylist[i].push_back(FwdQuery {
                        interval,
                        exec: t_e,
                    });
                }
                // Compensation (for i > 0) runs as resumable pending work.
                self.pending = Some(PendingStep {
                    rel: i,
                    width: delta,
                    t_hi,
                    t_e,
                    t_s: t_s0,
                    rem: if i > 0 { delta } else { 0 },
                    seg: None,
                    span: fwd_span,
                    stats0,
                    started,
                });
            }
            CompensationMode::ImmediateBox => {
                // Roll every other relation back from t_e to its current
                // frontier: the query's net coverage becomes the exact box
                // (x, y] × ∏_{j≠i} (−∞, tfwd[j]].
                let tau: Vec<Csn> = (0..n)
                    .map(|j| if j == i { 0 } else { self.tfwd[j] })
                    .collect();
                self.worker.enqueue_under(fq, -1, tau, t_e, fwd_span, 1);
                self.pending = Some(PendingStep {
                    rel: i,
                    width: delta,
                    t_hi,
                    t_e,
                    t_s: t_s0,
                    rem: 0,
                    seg: None,
                    span: fwd_span,
                    stats0,
                    started,
                });
            }
        }
        Ok(self
            .finish_pending()?
            .expect("pending step was just installed"))
    }

    /// One iteration of Fig. 10's loop: pick the relation with the smallest
    /// `tfwd` (ties → lowest index), size its interval with `policy`, and
    /// run [`RollingPropagator::step_relation`]. Returns `None` when that
    /// relation is already caught up to the latest commit (nothing to do).
    pub fn step(&mut self, policy: &mut dyn IntervalPolicy) -> Result<Option<RollingStep>> {
        if let Some(resumed) = self.finish_pending()? {
            return Ok(Some(resumed));
        }
        let i = self.next_relation();
        let now = self.ctx.engine.current_csn();
        let available = now.saturating_sub(self.tfwd[i]);
        if available == 0 {
            // Caught up. Frontiers may have passed recorded execution
            // times since the last step — prune so the HWM is released
            // even while idle.
            self.prune_query_lists();
            self.ctx.mv.set_hwm(self.hwm());
            self.ctx.refresh_gauges();
            return Ok(None);
        }
        let from = self.tfwd[i];
        let delta = policy
            .choose(&self.ctx, i, from, available)?
            .clamp(1, available);
        let started = std::time::Instant::now();
        let step = self.step_relation(i, delta)?;
        policy.observe(i, delta, started.elapsed());
        Ok(Some(step))
    }

    /// The relation Fig. 10's loop would pick next (smallest `tfwd`).
    pub fn next_relation(&self) -> usize {
        (0..self.tfwd.len())
            .min_by_key(|&i| self.tfwd[i])
            .expect("≥ 1 relation")
    }

    /// Keep stepping until every frontier reaches `target` (which must be
    /// at or below the latest commit). Returns the final HWM ≥ `target`.
    pub fn propagate_to(&mut self, target: Csn, policy: &mut dyn IntervalPolicy) -> Result<Csn> {
        if target > self.ctx.engine.current_csn() {
            return Err(Error::Invalid(format!(
                "target {target} beyond the latest commit {}",
                self.ctx.engine.current_csn()
            )));
        }
        while self.tfwd.iter().any(|&t| t < target) {
            let i = self.next_relation();
            let from = self.tfwd[i];
            if from >= target {
                // This relation is done; others lag — step the laggard.
                continue;
            }
            let available = target - from;
            let delta = policy
                .choose(&self.ctx, i, from, available)?
                .clamp(1, available);
            self.step_relation(i, delta)?;
        }
        Ok(self.hwm())
    }

    /// Number of uncompensated forward queries currently tracked.
    pub fn pending_compensation(&self) -> usize {
        self.querylist.iter().map(VecDeque::len).sum()
    }

    /// True when a failed step is awaiting resumption.
    pub fn has_pending_step(&self) -> bool {
        self.pending.is_some() || !self.worker.is_idle()
    }

    /// Propagate until the **high-water mark** reaches `target`, i.e. until
    /// the view can actually be rolled to `target`.
    ///
    /// One [`RollingPropagator::propagate_to`] sweep moves every frontier
    /// past `target`, but recorded forward queries keep the HWM at their
    /// interval starts until every frontier passes their *execution* times
    /// (Fig. 10's prune criterion) — the HWM trails the frontiers exactly
    /// as Fig. 3 depicts. Because propagation transactions write only the
    /// (uncaptured) view delta table, repeated sweeps over a quiescent
    /// database converge: the final sweep sees only empty deltas, issues no
    /// transactions, and prunes everything. With concurrent updaters this
    /// keeps sweeping until it observes an HWM ≥ `target`.
    pub fn drain_to(&mut self, target: Csn, policy: &mut dyn IntervalPolicy) -> Result<Csn> {
        if target > self.ctx.engine.current_csn() {
            return Err(Error::Invalid(format!(
                "target {target} beyond the latest commit {}",
                self.ctx.engine.current_csn()
            )));
        }
        while self.hwm() < target {
            let now = self.ctx.engine.current_csn();
            self.propagate_to(now.max(target), policy)?;
            // Frontiers moved; re-run pruning so the HWM reflects it even
            // when the next loop iteration exits.
            self.prune_query_lists();
        }
        self.ctx.mv.set_hwm(self.hwm());
        self.ctx.refresh_gauges();
        Ok(self.hwm())
    }
}
