//! The apply process: initial materialization, point-in-time refresh, and
//! the full-recompute baseline.
//!
//! The apply process (paper Figs. 2, 3, 11) consumes the timestamped view
//! delta: to roll the view from its materialization time `t_mat` to any
//! target `t' ≤ HWM`, it selects `σ_{t_mat, t'}(VD)`, net-effects it, and
//! installs the net counts into the MV table in one transaction. Because
//! every view-delta tuple is timestamped, the roll target is chosen **at
//! apply time**, independent of how propagation was tuned — that is the
//! paper's point-in-time refresh.

use crate::execute::MaintCtx;
use crate::policy::CompactionPolicy;
use rolljoin_common::{Csn, Error, Result, TimeInterval};
use rolljoin_obs::JournalEntry;
use rolljoin_relalg::{exec, fetch, SlotSource};
use rolljoin_storage::LockMode;
use std::time::Instant;

/// Outcome of a point-in-time refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The CSN the view is now materialized at.
    pub rolled_to: Csn,
    /// Distinct tuples whose multiplicity changed.
    pub tuples_changed: usize,
    /// Sum of positive net counts installed.
    pub insertions: i64,
    /// Sum of negative net counts installed (as a positive number).
    pub deletions: i64,
}

/// Initially materialize the view: one transaction that S-locks every base
/// table, evaluates the all-base join, fills the MV table, and stamps the
/// materialization time and HWM with its commit CSN. Propagation must then
/// start from that CSN.
pub fn materialize(ctx: &MaintCtx) -> Result<Csn> {
    let view = &ctx.mv.view;
    let mut txn = ctx.engine.begin();
    let mut order: Vec<_> = view.bases.clone();
    order.sort();
    order.dedup();
    for t in order {
        txn.lock(t, LockMode::Shared)?;
    }
    txn.lock(ctx.mv.mv_table, LockMode::Exclusive)?;

    let mut slot_rows = Vec::with_capacity(view.n());
    for base in &view.bases {
        slot_rows.push(fetch(&ctx.engine, &mut txn, &SlotSource::Base(*base))?);
    }
    let (rows, _) = exec::execute(slot_rows, &view.spec, 1)?;
    for row in rows {
        txn.apply_count(ctx.mv.mv_table, &row.tuple, row.count)?;
    }
    // The materialization CSN is this transaction's own commit time, not
    // knowable before commit. Persisting the pre-commit clock value is
    // safe: the base tables are S-locked, so nothing relevant commits in
    // between, and recovery merely re-propagates an empty window.
    let conservative = ctx.engine.current_csn();
    ctx.mv
        .persist_mat_time(&mut txn, &ctx.engine, conservative)?;
    let csn = txn.commit()?;
    ctx.mv.set_mat_time(csn);
    ctx.mv.set_hwm(csn);
    ctx.refresh_gauges();
    Ok(csn)
}

/// Point-in-time refresh: roll the materialized view forward to `target`.
///
/// Fails with [`Error::BeyondHighWaterMark`] if `target` exceeds the view
/// delta HWM and with [`Error::RollBackward`] if it precedes the current
/// materialization time (rolling to the current time is a no-op).
pub fn roll_to(ctx: &MaintCtx, target: Csn) -> Result<ApplyOutcome> {
    let mat = ctx.mv.mat_time();
    let hwm = ctx.mv.hwm();
    if target < mat {
        return Err(Error::RollBackward {
            requested: target,
            current: mat,
        });
    }
    if target > hwm {
        return Err(Error::BeyondHighWaterMark {
            requested: target,
            hwm,
        });
    }
    if target == mat {
        return Ok(ApplyOutcome {
            rolled_to: mat,
            tuples_changed: 0,
            insertions: 0,
            deletions: 0,
        });
    }

    let started = Instant::now();
    let mut span = ctx.obs.span("roll_to");
    span.arg("lo", mat as i64);
    span.arg("hi", target as i64);
    let mut txn = ctx.engine.begin();
    // S-lock the VD table so we don't interleave with an in-flight
    // propagation transaction, then X-lock the MV.
    txn.lock(ctx.mv.vd_table, LockMode::Shared)?;
    txn.lock(ctx.mv.mv_table, LockMode::Exclusive)?;
    let net = ctx
        .engine
        .vd_net_range(ctx.mv.vd_table, TimeInterval::new(mat, target))?;
    let mut insertions = 0i64;
    let mut deletions = 0i64;
    let tuples_changed = net.len();
    for (tuple, count) in net {
        if count > 0 {
            insertions += count;
        } else {
            deletions += -count;
        }
        txn.apply_count(ctx.mv.mv_table, &tuple, count)?;
    }
    ctx.mv.persist_mat_time(&mut txn, &ctx.engine, target)?;
    // Publish the new materialization time while the MV X lock is still
    // held (commit releases it): a reader that S-locks the MV and then
    // reads `mat_time` must never see the new contents with the old time.
    ctx.mv.set_mat_time(target);
    if let Err(e) = txn.commit() {
        ctx.mv.set_mat_time(mat);
        return Err(e);
    }
    // Everything at or below the new apply position has been installed;
    // under a compaction policy, fold that history down to one record per
    // tuple so the next roll's σ_{target, t'} scan walks net churn.
    if ctx.tuning.compaction != CompactionPolicy::Off {
        ctx.engine.vd_compact(ctx.mv.vd_table, target)?;
    }
    span.arg("tuples_changed", tuples_changed as i64);
    drop(span);
    if ctx.obs.tracing_on() {
        ctx.obs.journal_step(
            JournalEntry::new("apply")
                .with_interval(mat, target)
                .with_rows(0, tuples_changed as u64)
                .with_duration_ns(started.elapsed().as_nanos() as u64)
                .with_hwm(target),
        );
    }
    if ctx.obs.metrics_on() {
        ctx.meters.record_step(&ctx.obs.meter, "apply", false);
        ctx.refresh_gauges();
    }
    Ok(ApplyOutcome {
        rolled_to: target,
        tuples_changed,
        insertions,
        deletions,
    })
}

/// Roll to the state as of a wallclock time (microseconds on the engine's
/// clock), using the unit-of-work table to translate (paper §5). Rolls to
/// the materialization time itself when no commit is that old.
pub fn roll_to_wallclock(ctx: &MaintCtx, wallclock_micros: u64) -> Result<ApplyOutcome> {
    let target = ctx
        .engine
        .uow()
        .csn_at_or_before(wallclock_micros)
        .unwrap_or(0)
        .max(ctx.mv.mat_time());
    roll_to(ctx, target)
}

/// Non-incremental baseline (paper Fig. 1's alternative): recompute the
/// view from the current base tables in one big transaction and replace
/// the MV contents. Returns the new materialization CSN.
pub fn full_refresh(ctx: &MaintCtx) -> Result<Csn> {
    let view = &ctx.mv.view;
    let mut txn = ctx.engine.begin();
    let mut order: Vec<_> = view.bases.clone();
    order.sort();
    order.dedup();
    for t in order {
        txn.lock(t, LockMode::Shared)?;
    }
    txn.lock(ctx.mv.mv_table, LockMode::Exclusive)?;

    let mut slot_rows = Vec::with_capacity(view.n());
    for base in &view.bases {
        slot_rows.push(fetch(&ctx.engine, &mut txn, &SlotSource::Base(*base))?);
    }
    let (rows, _) = exec::execute(slot_rows, &view.spec, 1)?;
    // Diff against the current MV contents rather than truncating, so the
    // WAL/microcosm stays sane (and deletes are real deletes).
    let current = txn.scan_counts(ctx.mv.mv_table)?;
    let mut desired: std::collections::HashMap<_, i64> = std::collections::HashMap::new();
    for row in rows {
        *desired.entry(row.tuple).or_insert(0) += row.count;
    }
    for (tuple, have) in &current {
        let want = desired.get(tuple).copied().unwrap_or(0);
        if want != *have {
            txn.apply_count(ctx.mv.mv_table, tuple, want - have)?;
        }
    }
    for (tuple, want) in &desired {
        if !current.contains_key(tuple) {
            txn.apply_count(ctx.mv.mv_table, tuple, *want)?;
        }
    }
    // Safe for the same reason as in `materialize`.
    let conservative = ctx.engine.current_csn();
    ctx.mv
        .persist_mat_time(&mut txn, &ctx.engine, conservative)?;
    let csn = txn.commit()?;
    ctx.mv.set_mat_time(csn);
    ctx.mv.set_hwm(csn);
    // View-delta records at or below the new materialization time are now
    // stale; drop them so a later roll cannot double-apply.
    ctx.engine.vd_prune(ctx.mv.vd_table, csn)?;
    ctx.refresh_gauges();
    Ok(csn)
}
