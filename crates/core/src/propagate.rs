//! `Propagate` — the continuous, asynchronous propagation process
//! (paper Fig. 5).
//!
//! `Propagate(V, t_initial)` is a loop: pick a propagation-interval length
//! `δ`, call `ComputeDelta(V, [t_cur,…,t_cur], t_cur + δ)`, advance
//! `t_cur`. After every complete iteration the view delta is accurate from
//! `t_initial` to `t_cur` — so `t_cur` *is* the view-delta high-water mark
//! (Theorem 4.2).
//!
//! All forward queries share a single interval; the per-relation control
//! that motivates `RollingPropagate` (paper §3.4) is deliberately absent
//! here — this is the baseline it is compared against in experiment E7.
//!
//! The propagator is **failure-resumable**: constituent queries commit
//! individually, so a lock timeout mid-interval leaves partial (but
//! correct and durable) work; the next `step` resumes the pending interval
//! instead of re-executing it.

use crate::compute_delta::DeltaWorker;
use crate::execute::MaintCtx;
use crate::query::PropQuery;
use rolljoin_common::{Csn, Error, Result};
use rolljoin_obs::JournalEntry;
use std::time::Instant;

/// The `Propagate` process state.
pub struct Propagator {
    ctx: MaintCtx,
    t_cur: Csn,
    worker: DeltaWorker,
    pending_target: Option<Csn>,
}

impl Propagator {
    /// Start propagation at `t_initial` (normally the view's
    /// materialization time).
    pub fn new(ctx: MaintCtx, t_initial: Csn) -> Self {
        Propagator {
            ctx,
            t_cur: t_initial,
            worker: DeltaWorker::new(),
            pending_target: None,
        }
    }

    /// The high-water mark `t_cur`: the view delta is complete from
    /// `t_initial` through here.
    pub fn t_cur(&self) -> Csn {
        self.t_cur
    }

    /// Shared maintenance context.
    pub fn ctx(&self) -> &MaintCtx {
        &self.ctx
    }

    /// Finish any interval whose propagation previously failed partway.
    fn finish_pending(&mut self) -> Result<()> {
        if let Some(target) = self.pending_target {
            self.worker.run_auto(&self.ctx)?;
            self.t_cur = target;
            self.pending_target = None;
            self.ctx.mv.set_hwm(self.t_cur);
        }
        Ok(())
    }

    /// One iteration: propagate the next interval of length `delta` CSNs.
    /// The interval end must not exceed the number of commits that exist;
    /// use [`Propagator::step_available`] to chase the current time.
    pub fn step(&mut self, delta: u64) -> Result<Csn> {
        if delta == 0 {
            return Err(Error::Invalid("propagation interval must be > 0".into()));
        }
        self.finish_pending()?;
        let started = Instant::now();
        let stats0 = self.ctx.stats.snapshot();
        let from = self.t_cur;
        let target = self.t_cur + delta;
        let n = self.ctx.mv.n();
        let obs = self.ctx.obs.clone();
        let mut span = obs.span("propagate_step");
        span.arg("lo", from as i64);
        span.arg("hi", target as i64);
        self.worker.enqueue_under(
            PropQuery::all_base(n),
            1,
            vec![self.t_cur; n],
            target,
            span.id(),
            0,
        );
        self.pending_target = Some(target);
        self.finish_pending()?;
        drop(span);
        if self.ctx.obs.tracing_on() {
            let d = self.ctx.stats.snapshot().since(&stats0);
            self.ctx.obs.journal_step(
                JournalEntry::new("propagate")
                    .with_interval(from, target)
                    .with_queries(d.total_queries(), d.comp_queries)
                    .with_rows(d.total_rows_read(), d.vd_rows_written)
                    .with_duration_ns(started.elapsed().as_nanos() as u64)
                    .with_hwm(self.t_cur),
            );
        }
        if self.ctx.obs.metrics_on() {
            self.ctx
                .meters
                .record_step(&self.ctx.obs.meter, "propagate", false);
            self.ctx.refresh_gauges();
        }
        Ok(self.t_cur)
    }

    /// Propagate toward the most recent commit in steps of at most
    /// `max_delta`, stopping when caught up. Returns the new HWM.
    pub fn step_available(&mut self, max_delta: u64) -> Result<Csn> {
        self.finish_pending()?;
        let now = self.ctx.engine.current_csn();
        while self.t_cur < now {
            let delta = max_delta.min(now - self.t_cur);
            self.step(delta)?;
        }
        Ok(self.t_cur)
    }

    /// Propagate to exactly `target` (> `t_cur`) in steps of `max_delta`.
    pub fn propagate_to(&mut self, target: Csn, max_delta: u64) -> Result<Csn> {
        self.finish_pending()?;
        while self.t_cur < target {
            let delta = max_delta.min(target - self.t_cur);
            self.step(delta)?;
        }
        Ok(self.t_cur)
    }
}
