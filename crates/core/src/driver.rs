//! Background drivers (paper Fig. 11).
//!
//! The prototype architecture runs three independent processes around the
//! engine: **log capture** (DPropR), the **propagate driver**, and the
//! **apply driver**. "Aside from the usual producer/consumer
//! synchronization, the two processes are completely independent. Either
//! process, or both, can be suspended during periods of high system load"
//! (paper §1) — so every driver here has suspend/resume/stop controls.
//!
//! Propagation drivers retry on lock timeouts (a deadlock-resolution abort
//! just means "try again"); any other error stops the driver and is
//! returned by [`DriverHandle::stop`].

use crate::execute::MaintCtx;
use crate::policy::IntervalPolicy;
use crate::rolling::RollingPropagator;
use rolljoin_common::{Csn, Error, Result};
use rolljoin_storage::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Control handle for a background driver thread.
pub struct DriverHandle {
    stop: Arc<AtomicBool>,
    suspend: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<()>>>,
    name: &'static str,
}

impl DriverHandle {
    fn spawn(
        name: &'static str,
        f: impl FnOnce(Arc<AtomicBool>, Arc<AtomicBool>) -> Result<()> + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let suspend = Arc::new(AtomicBool::new(false));
        let (s2, p2) = (stop.clone(), suspend.clone());
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || f(s2, p2))
            .expect("spawn driver thread");
        DriverHandle {
            stop,
            suspend,
            handle: Some(handle),
            name,
        }
    }

    /// Pause the driver's loop (paper: suspend during high load).
    pub fn suspend(&self) {
        self.suspend.store(true, Ordering::Release);
    }

    /// Resume a suspended driver.
    pub fn resume(&self) {
        self.suspend.store(false, Ordering::Release);
    }

    /// True while the driver thread is alive.
    pub fn is_running(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }

    /// Signal stop and join, returning the driver's final result.
    pub fn stop(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| Error::Internal(format!("{} driver panicked", self.name)))?,
            None => Ok(()),
        }
    }
}

impl Drop for DriverHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Spawn the capture driver: steps log capture every `poll`, at most
/// `max_records_per_step` records per step. A small `max_records_per_step`
/// with a long `poll` injects the capture lag experiment E13 studies.
pub fn spawn_capture_driver(
    engine: Engine,
    poll: Duration,
    max_records_per_step: usize,
) -> DriverHandle {
    DriverHandle::spawn("capture", move |stop, suspend| {
        while !stop.load(Ordering::Acquire) {
            if !suspend.load(Ordering::Acquire) {
                engine.capture_step(max_records_per_step)?;
            }
            std::thread::sleep(poll);
        }
        // Final catch-up so nothing is stranded in the log.
        engine.capture_catch_up()?;
        Ok(())
    })
}

/// Spawn the rolling propagate driver: repeatedly performs Fig. 10
/// iterations (argmin-frontier relation, policy-chosen interval), sleeping
/// `idle` when there is nothing new to propagate.
pub fn spawn_rolling_driver(
    ctx: MaintCtx,
    t_initial: Csn,
    mut policy: Box<dyn IntervalPolicy>,
    idle: Duration,
) -> DriverHandle {
    DriverHandle::spawn("propagate", move |stop, suspend| {
        let mut rp = RollingPropagator::new(ctx, t_initial);
        while !stop.load(Ordering::Acquire) {
            if suspend.load(Ordering::Acquire) {
                std::thread::sleep(idle);
                continue;
            }
            match rp.step(policy.as_mut()) {
                Ok(Some(_)) => {}
                Ok(None) => std::thread::sleep(idle),
                Err(Error::LockTimeout { .. }) => {
                    // Deadlock-resolution abort: back off and retry.
                    std::thread::sleep(idle);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })
}

/// Spawn the background φ-compactor: every `period`, rewrites each base
/// delta store below the global compaction LWM
/// ([`MaintCtx::compaction_lwm`], clamped to the capture HWM) and the view
/// delta store below the apply position, honoring the
/// [`crate::policy::CompactionPolicy::Background`] store-size threshold in
/// the context's tuning. Compaction is an in-place rewrite of history no
/// consumer can read anymore, so the driver needs no coordination with
/// propagate or apply beyond the LWM itself — it can be suspended and
/// resumed freely like the paper's other background processes.
pub fn spawn_compaction_driver(ctx: MaintCtx, period: Duration) -> DriverHandle {
    DriverHandle::spawn("compact", move |stop, suspend| {
        while !stop.load(Ordering::Acquire) {
            if !suspend.load(Ordering::Acquire) {
                ctx.compact_stores()?;
            }
            std::thread::sleep(period);
        }
        Ok(())
    })
}

/// Spawn the apply driver: every `period`, rolls the materialized view
/// forward to the current view-delta high-water mark.
pub fn spawn_apply_driver(ctx: MaintCtx, period: Duration) -> DriverHandle {
    DriverHandle::spawn("apply", move |stop, suspend| {
        while !stop.load(Ordering::Acquire) {
            if !suspend.load(Ordering::Acquire) {
                let target = ctx.mv.hwm();
                if target > ctx.mv.mat_time() {
                    match crate::apply::roll_to(&ctx, target) {
                        Ok(_) => {}
                        Err(Error::LockTimeout { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            std::thread::sleep(period);
        }
        Ok(())
    })
}
