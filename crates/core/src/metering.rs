//! Metric handles for the maintenance paths.
//!
//! [`CoreMeters`] registers every hot-path instrument once and caches the
//! handles, so recording inside `Execute` is a couple of relaxed atomic
//! ops with no registry lock. Cold-path series (per-relation interval
//! widths, lock and compaction folds) are registered on use.
//!
//! The headline gauges are the paper's asynchrony made visible (Fig. 3):
//!
//! * `rolljoin_propagation_lag_csn = capture_hwm − prop_hwm` — how far the
//!   view delta trails the captured log;
//! * `rolljoin_view_staleness_csn = capture_hwm − mat_time` — how far the
//!   materialized view itself trails.
//!
//! Both go to zero after propagation is drained and the view is rolled to
//! the HWM. All `*_csn` units are commit sequence numbers, `*_us`
//! histograms are microseconds.

use crate::stats::{CompactionReport, PropStatsSnapshot};
use rolljoin_obs::{Counter, Gauge, Histogram, Meter};
use rolljoin_storage::LockStatsSnapshot;

/// Cached handles for the instruments the execute path records into.
pub struct CoreMeters {
    pub forward_queries: Counter,
    pub comp_queries: Counter,
    pub base_rows_read: Counter,
    pub delta_rows_read: Counter,
    pub vd_rows_written: Counter,
    pub query_wall_us: Histogram,
    pub query_lock_wait_us: Histogram,
    pub capture_hwm: Gauge,
    pub prop_hwm: Gauge,
    pub mat_time: Gauge,
    pub propagation_lag: Gauge,
    pub view_staleness: Gauge,
    pub scan_cache_hits: Counter,
    pub scan_cache_misses: Counter,
    pub delta_index_probes: Counter,
    pub delta_index_scans: Counter,
    pub delta_index_probe_rows: Counter,
    pub delta_postings_bytes: Gauge,
}

impl CoreMeters {
    /// Register (or look up) every hot-path instrument on `meter`.
    pub fn new(meter: &Meter) -> CoreMeters {
        let queries = |kind| {
            meter.counter_l(
                "rolljoin_queries_total",
                Some(("kind", kind)),
                "Propagation queries executed, by kind (forward vs compensation).",
            )
        };
        let rows_read = |slot| {
            meter.counter_l(
                "rolljoin_rows_read_total",
                Some(("slot", slot)),
                "Rows fetched by propagation queries, by slot kind.",
            )
        };
        let cache = |outcome| {
            meter.counter_l(
                "rolljoin_scan_cache_total",
                Some(("outcome", outcome)),
                "Delta-range fetches, by scan-cache outcome.",
            )
        };
        CoreMeters {
            forward_queries: queries("forward"),
            comp_queries: queries("comp"),
            base_rows_read: rows_read("base"),
            delta_rows_read: rows_read("delta"),
            vd_rows_written: meter.counter(
                "rolljoin_vd_rows_written_total",
                "Rows written into the view delta table.",
            ),
            query_wall_us: meter.histogram(
                "rolljoin_query_wall_us",
                "Per-query wall time (capture wait + fetch + join + commit), microseconds.",
            ),
            query_lock_wait_us: meter.histogram(
                "rolljoin_query_lock_wait_us",
                "Per-query time blocked on locks, microseconds.",
            ),
            capture_hwm: meter.gauge(
                "rolljoin_capture_hwm_csn",
                "Log-capture high-water mark, CSNs.",
            ),
            prop_hwm: meter.gauge(
                "rolljoin_prop_hwm_csn",
                "View-delta high-water mark (min tcomp, Theorem 4.3), CSNs.",
            ),
            mat_time: meter.gauge(
                "rolljoin_mat_time_csn",
                "Materialization time of the view, CSNs.",
            ),
            propagation_lag: meter.gauge(
                "rolljoin_propagation_lag_csn",
                "capture_hwm minus prop_hwm: how far the view delta trails capture, CSNs.",
            ),
            view_staleness: meter.gauge(
                "rolljoin_view_staleness_csn",
                "capture_hwm minus mat_time: how far the materialized view trails, CSNs.",
            ),
            scan_cache_hits: cache("hit"),
            scan_cache_misses: cache("miss"),
            delta_index_probes: meter.counter_l(
                "rolljoin_delta_index_total",
                Some(("decision", "probe")),
                "Pending delta slots planned, by keyed-index decision.",
            ),
            delta_index_scans: meter.counter_l(
                "rolljoin_delta_index_total",
                Some(("decision", "scan")),
                "Pending delta slots planned, by keyed-index decision.",
            ),
            delta_index_probe_rows: meter.counter(
                "rolljoin_delta_index_probe_rows_total",
                "Rows fetched through keyed delta-index probes.",
            ),
            delta_postings_bytes: meter.gauge(
                "rolljoin_delta_postings_bytes",
                "Approximate heap bytes held by keyed delta-index postings.",
            ),
        }
    }

    /// Record a step of the given kind (`"propagate"`, `"rolling"`,
    /// `"apply"`, `"compaction"`).
    pub fn record_step(&self, meter: &Meter, kind: &'static str, skipped_empty: bool) {
        meter
            .counter_l(
                "rolljoin_steps_total",
                Some(("kind", kind)),
                "Propagation/apply steps completed, by kind.",
            )
            .inc(1);
        if skipped_empty {
            meter
                .counter(
                    "rolljoin_steps_skipped_empty_total",
                    "Steps that advanced the frontier without issuing queries.",
                )
                .inc(1);
        }
    }

    /// Record the interval width a rolling step chose for a relation.
    pub fn record_interval_width(&self, meter: &Meter, rel: usize, width: u64) {
        meter
            .gauge_l(
                "rolljoin_interval_width_csn",
                Some(("rel", &rel.to_string())),
                "Width of the last forward-query interval, per relation, CSNs.",
            )
            .set(width as i64);
    }

    /// Mirror the lock manager's per-granularity counters and wait-time
    /// histograms into the registry (absolute fold: the lock manager owns
    /// the counters, the registry just exposes them).
    pub fn fold_lock_stats(&self, meter: &Meter, s: &LockStatsSnapshot) {
        for (gran, g) in [("table", &s.table), ("stripe", &s.stripe)] {
            let label = Some(("gran", gran));
            meter
                .counter_l(
                    "rolljoin_lock_waits_total",
                    label,
                    "Lock acquisitions that blocked, by granularity.",
                )
                .set(g.waits);
            meter
                .counter_l(
                    "rolljoin_lock_acquisitions_total",
                    label,
                    "Lock acquisitions, by granularity.",
                )
                .set(g.acquisitions);
            meter
                .counter_l(
                    "rolljoin_lock_timeouts_total",
                    label,
                    "Lock timeouts (deadlock resolutions), by granularity.",
                )
                .set(g.timeouts);
            meter
                .histogram_l(
                    "rolljoin_lock_wait_us",
                    label,
                    "Lock wait times, by granularity, microseconds.",
                )
                .set_buckets(&g.wait_hist_us, g.wait_nanos / 1_000);
        }
    }

    /// Mirror store-level φ-compaction totals into the registry.
    pub fn fold_compaction(&self, meter: &Meter, report: &CompactionReport) {
        for (store, s) in [("base", &report.base), ("vd", &report.vd)] {
            let label = Some(("store", store));
            meter
                .counter_l(
                    "rolljoin_compaction_rows_removed_total",
                    label,
                    "Records removed by store-level φ-compaction, by store.",
                )
                .set(s.rows_removed());
            meter
                .counter_l(
                    "rolljoin_compaction_bytes_reclaimed_total",
                    label,
                    "Estimated heap bytes reclaimed by φ-compaction, by store.",
                )
                .set(s.bytes_reclaimed);
        }
    }

    /// Mirror the scan-level φ-compaction counters from [`PropStatsSnapshot`].
    pub fn fold_prop_stats(&self, meter: &Meter, s: &PropStatsSnapshot) {
        meter
            .counter(
                "rolljoin_scan_compact_rows_in_total",
                "Raw delta rows that entered scan-level φ-compaction.",
            )
            .set(s.compact_rows_in);
        meter
            .counter(
                "rolljoin_scan_compact_rows_saved_total",
                "Rows eliminated by scan-level φ-compaction.",
            )
            .set(s.compact_rows_saved);
        meter
            .gauge(
                "rolljoin_max_txn_rows",
                "Largest row count read by any single propagation transaction.",
            )
            .set(s.max_txn_rows as i64);
    }
}
