//! `ComputeDelta` — asynchronous propagation using recursive compensation
//! (paper Fig. 4) — implemented as a **resumable work queue**.
//!
//! `ComputeDelta(Q, τ_old, t_new)` produces a **timed delta table** for the
//! query `Q` over the interval from `τ_old` to `t_new` (Theorem 4.1),
//! executing every constituent query *after* `t_new` and compensating for
//! the drift: for each base slot `i`, it runs the forward query with slot
//! `i` replaced by `R^i_{τ_old[i], t_new}` at some later time `t_exec`; the
//! base slots of that query were intended (per Equation 2's convention) to
//! be seen at `τ_old[j]` for `j < i` and at `t_new` for `j > i`, but were
//! actually seen at `t_exec` — so it recursively computes the *negated*
//! delta of the query from the intended times to `t_exec`.
//!
//! For a two-way view this expands to exactly Equation 3:
//!
//! ```text
//! V_{a,b} = R1_{a,b} ⋈ R2@c  −  R1_{a,b} ⋈ R2_{b,c}
//!         + R1@d ⋈ R2_{a,b}  −  R1_{a,d} ⋈ R2_{a,b}
//! ```
//!
//! # Why a work queue and not plain recursion
//!
//! Every constituent query commits as its own transaction, so a lock
//! timeout (deadlock resolution) halfway through leaves some results
//! durably in the view delta. Re-running the whole computation would
//! double-apply them. [`DeltaWorker`] therefore tracks the outstanding
//! [`Frame`]s explicitly: a failed `Execute` pushes its frame back intact,
//! and a later [`DeltaWorker::run`] resumes *exactly* where it stopped —
//! the paper's prototype stores the equivalent progress in its control
//! tables.

use crate::execute::{MaintCtx, QuerySpanCtx};
use crate::query::PropQuery;
use rolljoin_common::{Csn, Result, TimeInterval};
use std::collections::VecDeque;
use std::time::Instant;

/// One outstanding `ComputeDelta` activation: propagate the delta of `q`
/// from `tau` to `t_new` (scaled by `sign`), with slots before `next_slot`
/// already expanded.
#[derive(Debug, Clone)]
pub struct Frame {
    pub q: PropQuery,
    pub sign: i64,
    pub tau: Vec<Csn>,
    pub t_new: Csn,
    next_slot: usize,
    /// Span id of the query (or step) that caused this activation — the
    /// parent of every query span the frame issues. `0` = root.
    parent: u64,
    /// Recursion depth in the compensation tree.
    depth: u32,
}

/// One fully-substituted constituent query, ready to execute as its own
/// transaction. Units are what the parallel executor hands to workers:
/// they are mutually independent (each commits separately and is
/// compensated from its *own* execution time), so executing them in any
/// order — or concurrently — yields the same view delta under `φ`.
#[derive(Debug, Clone)]
struct Unit {
    q: PropQuery,
    sign: i64,
    /// Intended base-slot times (Equation 2's convention) if `q` retains a
    /// base slot: after execution at `t_exec`, a compensation frame
    /// `ComputeDelta(q, −sign, comp_tau, t_exec)` is scheduled. `None` for
    /// all-delta queries, which need no compensation.
    comp_tau: Option<Vec<Csn>>,
    /// Parent span id for this unit's query span.
    parent: u64,
    /// Recursion depth in the compensation tree.
    depth: u32,
    /// The slot whose delta this unit newly introduced.
    rel: usize,
}

impl Unit {
    fn span_ctx(&self) -> QuerySpanCtx {
        QuerySpanCtx {
            parent: self.parent,
            depth: self.depth,
            rel: Some(self.rel),
        }
    }
}

/// An item of outstanding propagation work: either a frame still to be
/// expanded into constituent queries, or a single query re-queued after a
/// failed (aborted, hence side-effect-free) execution.
#[derive(Debug, Clone)]
enum Work {
    Expand(Frame),
    Exec(Unit),
}

/// Resumable executor of `ComputeDelta` work.
#[derive(Default)]
pub struct DeltaWorker {
    queue: VecDeque<Work>,
}

impl DeltaWorker {
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no propagation work is outstanding.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Outstanding frames (for monitoring).
    pub fn pending_frames(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `ComputeDelta(q, tau, t_new)` scaled by `sign`.
    pub fn enqueue(&mut self, q: PropQuery, sign: i64, tau: Vec<Csn>, t_new: Csn) {
        self.enqueue_under(q, sign, tau, t_new, 0, 0);
    }

    /// [`DeltaWorker::enqueue`] with an explicit span parent and recursion
    /// depth, so the scheduled computation's query spans nest under the
    /// step or query that caused it.
    pub fn enqueue_under(
        &mut self,
        q: PropQuery,
        sign: i64,
        tau: Vec<Csn>,
        t_new: Csn,
        parent: u64,
        depth: u32,
    ) {
        debug_assert_eq!(q.n(), tau.len());
        self.queue.push_back(Work::Expand(Frame {
            q,
            sign,
            tau,
            t_new,
            next_slot: 0,
            parent,
            depth,
        }));
    }

    /// Drain the queue with [`DeltaWorker::run`] or
    /// [`DeltaWorker::run_parallel`] according to `ctx.tuning.workers`.
    pub fn run_auto(&mut self, ctx: &MaintCtx) -> Result<()> {
        if ctx.tuning.workers > 1 {
            self.run_parallel(ctx, ctx.tuning.workers)
        } else {
            self.run(ctx)
        }
    }

    /// Drain the queue sequentially. On error (e.g. a lock timeout), all
    /// unfinished work — including the failing item — remains queued; call
    /// `run` again to resume without re-executing anything that committed.
    pub fn run(&mut self, ctx: &MaintCtx) -> Result<()> {
        while let Some(work) = self.queue.pop_front() {
            ctx.stats.record_queue_depth(self.queue.len() as u64 + 1);
            match work {
                Work::Expand(mut frame) => {
                    if let Err(e) = self.run_frame(ctx, &mut frame) {
                        self.queue.push_front(Work::Expand(frame));
                        return Err(e);
                    }
                }
                Work::Exec(unit) => match ctx.execute_traced(&unit.q, unit.sign, unit.span_ctx()) {
                    Ok((outcome, span_id)) => {
                        self.push_compensation(&unit, outcome.exec_csn, span_id)
                    }
                    Err(e) => {
                        self.queue.push_front(Work::Exec(unit));
                        return Err(e);
                    }
                },
            }
        }
        Ok(())
    }

    /// Drain the queue with a pool of `workers` threads executing
    /// constituent queries concurrently, each as its own strict-2PL
    /// transaction.
    ///
    /// Each round: (1) expand every queued frame into its independent
    /// single-query `Unit`s, (2) execute the units across the pool,
    /// (3) enqueue the compensation frame of every success (timed by that
    /// unit's own commit CSN) and re-queue every failure (its transaction
    /// aborted, so re-execution cannot double-apply).
    ///
    /// The result is identical to [`DeltaWorker::run`] under the `φ`
    /// net-effect: units never depend on each other's execution times —
    /// compensation is always relative to the unit's *actual* commit CSN —
    /// so interleaving only changes the (compensated-for) drift, not the
    /// delta. Deadlock-freedom is preserved because every transaction
    /// still acquires its base S locks in `TableId` order with the view
    /// delta's X lock last.
    pub fn run_parallel(&mut self, ctx: &MaintCtx, workers: usize) -> Result<()> {
        loop {
            if self.queue.is_empty() {
                return Ok(());
            }
            ctx.stats.record_queue_depth(self.queue.len() as u64);

            // Phase 1: expand frames into independent units. Expansion is
            // read-only, so a failure simply re-queues the frame intact.
            let mut units: Vec<Unit> = Vec::new();
            let mut first_err = None;
            while let Some(work) = self.queue.pop_front() {
                match work {
                    Work::Exec(u) => units.push(u),
                    Work::Expand(frame) => match expand(ctx, &frame) {
                        Ok(mut us) => units.append(&mut us),
                        Err(e) => {
                            self.queue.push_front(Work::Expand(frame));
                            first_err = Some(e);
                            break;
                        }
                    },
                }
            }
            if units.is_empty() {
                return match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }

            // Phase 2: execute the round's units across the worker pool.
            let results = execute_units(ctx, &units, workers);

            // Phase 3: successes schedule their compensation; failures go
            // back on the queue (their transactions aborted — no durable
            // effects — so re-running them is exactly-once).
            let mut requeue = Vec::new();
            for (unit, res) in units.into_iter().zip(results) {
                match res {
                    Ok((exec_csn, span_id)) => self.push_compensation(&unit, exec_csn, span_id),
                    Err(e) => {
                        requeue.push(Work::Exec(unit));
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            for w in requeue.into_iter().rev() {
                self.queue.push_front(w);
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
    }

    /// Schedule the compensation frame of an executed unit, if it needs
    /// one. The frame's spans nest under the executed query's span
    /// (`span_id`), one level deeper.
    fn push_compensation(&mut self, unit: &Unit, exec_csn: Csn, span_id: u64) {
        if let Some(tau) = &unit.comp_tau {
            self.queue.push_back(Work::Expand(Frame {
                q: unit.q.clone(),
                sign: -unit.sign,
                tau: tau.clone(),
                t_new: exec_csn,
                next_slot: 0,
                parent: span_id,
                depth: unit.depth + 1,
            }));
        }
    }

    fn run_frame(&mut self, ctx: &MaintCtx, frame: &mut Frame) -> Result<()> {
        let n = frame.q.n();
        ctx.ensure_captured(frame.t_new)?;
        while frame.next_slot < n {
            let i = frame.next_slot;
            if frame.q.slots[i].is_delta() || frame.tau[i] >= frame.t_new {
                frame.next_slot += 1;
                continue;
            }
            let interval = TimeInterval::new(frame.tau[i], frame.t_new);
            if ctx.skip_empty && ctx.engine.delta_count(ctx.mv.view.bases[i], interval)? == 0 {
                // The introduced delta slot is empty, so this query and
                // every query in its compensation subtree (all of which
                // retain the same empty slot) are empty. Nothing to do.
                frame.next_slot += 1;
                continue;
            }
            // Q' ← Q[1]…Q[i−1] R^i_{τ_old[i], t_new} Q[i+1]…Q[n]
            let q2 = frame.q.with_delta(i, interval);
            let sctx = QuerySpanCtx {
                parent: frame.parent,
                depth: frame.depth,
                rel: Some(i),
            };
            let (outcome, span_id) = ctx.execute_traced(&q2, frame.sign, sctx)?;
            frame.next_slot += 1;
            if q2.slots.iter().any(|s| !s.is_delta()) {
                // Tables left of i were intended at τ_old, right of i at
                // t_new (Equation 2's convention); they were actually seen
                // at t_exec — compensate back, negated.
                let tau_intended: Vec<Csn> = (0..n)
                    .map(|j| match j.cmp(&i) {
                        std::cmp::Ordering::Less => frame.tau[j],
                        std::cmp::Ordering::Equal => 0, // delta slot: unused
                        std::cmp::Ordering::Greater => frame.t_new,
                    })
                    .collect();
                self.queue.push_back(Work::Expand(Frame {
                    q: q2,
                    sign: -frame.sign,
                    tau: tau_intended,
                    t_new: outcome.exec_csn,
                    next_slot: 0,
                    parent: span_id,
                    depth: frame.depth + 1,
                }));
            }
        }
        Ok(())
    }
}

/// Expand a frame into its independent constituent-query units (without
/// executing anything). Mirrors [`DeltaWorker::run_frame`]'s slot loop:
/// the `i`-th unit substitutes `R^i_{τ_old[i], t_new}` into slot `i` and —
/// if base slots remain — carries the intended times that its eventual
/// compensation must restore. Order-independent: `delta_count` reads
/// capture-complete history that concurrent maintenance cannot change.
fn expand(ctx: &MaintCtx, frame: &Frame) -> Result<Vec<Unit>> {
    let n = frame.q.n();
    ctx.ensure_captured(frame.t_new)?;
    let mut units = Vec::new();
    for i in frame.next_slot..n {
        if frame.q.slots[i].is_delta() || frame.tau[i] >= frame.t_new {
            continue;
        }
        let interval = TimeInterval::new(frame.tau[i], frame.t_new);
        if ctx.skip_empty && ctx.engine.delta_count(ctx.mv.view.bases[i], interval)? == 0 {
            continue;
        }
        let q2 = frame.q.with_delta(i, interval);
        let comp_tau = if q2.slots.iter().any(|s| !s.is_delta()) {
            Some(
                (0..n)
                    .map(|j| match j.cmp(&i) {
                        std::cmp::Ordering::Less => frame.tau[j],
                        std::cmp::Ordering::Equal => 0, // delta slot: unused
                        std::cmp::Ordering::Greater => frame.t_new,
                    })
                    .collect(),
            )
        } else {
            None
        };
        units.push(Unit {
            q: q2,
            sign: frame.sign,
            comp_tau,
            parent: frame.parent,
            depth: frame.depth,
            rel: i,
        });
    }
    Ok(units)
}

/// Execute `units` across a pool of `workers` threads. Returns one result
/// per unit — the commit CSN plus the query's span id — in unit order.
/// Workers pull from a shared channel (work stealing by contention); each
/// records its busy time.
fn execute_units(ctx: &MaintCtx, units: &[Unit], workers: usize) -> Vec<Result<(Csn, u64)>> {
    let workers = workers.min(units.len()).max(1);
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, &Unit)>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, Result<(Csn, u64)>)>();
    for item in units.iter().enumerate() {
        work_tx.send(item).expect("receiver alive");
    }
    drop(work_tx);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            s.spawn(move || {
                let mut busy = 0u64;
                while let Ok((i, unit)) = work_rx.recv() {
                    let start = Instant::now();
                    let res = ctx
                        .execute_traced(&unit.q, unit.sign, unit.span_ctx())
                        .map(|(o, span_id)| (o.exec_csn, span_id));
                    busy += start.elapsed().as_nanos() as u64;
                    if res_tx.send((i, res)).is_err() {
                        break;
                    }
                }
                ctx.stats.record_worker_busy(busy);
            });
        }
    });
    drop(res_tx);
    let mut results: Vec<Option<Result<(Csn, u64)>>> = units.iter().map(|_| None).collect();
    for (i, res) in res_rx.iter() {
        results[i] = Some(res);
    }
    results
        .into_iter()
        .map(|r| r.expect("every unit reported"))
        .collect()
}

/// One-shot `ComputeDelta` (paper Fig. 4): propagate the delta of `q` from
/// `tau_old` to `t_new`, scaling all emitted counts by `sign`. Entries of
/// `tau_old` at delta slots are ignored.
///
/// `ComputeDelta(V, [a,…,a], t_b)` — i.e. `q = all_base(n)`,
/// `tau_old = [a; n]` — produces the view delta `V_{a,b}`.
///
/// Not resumable: if it fails partway, already-committed constituent
/// queries remain in the view delta. Long-lived propagation should hold a
/// [`DeltaWorker`] instead (as [`crate::Propagator`] and
/// [`crate::RollingPropagator`] do).
pub fn compute_delta(
    ctx: &MaintCtx,
    q: &PropQuery,
    sign: i64,
    tau_old: &[Csn],
    t_new: Csn,
) -> Result<()> {
    let mut worker = DeltaWorker::new();
    worker.enqueue(q.clone(), sign, tau_old.to_vec(), t_new);
    worker.run_auto(ctx)
}

/// The number of propagation queries `ComputeDelta` issues for a query
/// with `k` base slots (assuming every interval is non-empty):
/// `T(k) = k · (1 + T(k−1))`, `T(0) = 0`. This is the asynchrony price the
/// paper pays relative to Equation 2's `n` synchronous queries. Used by
/// the experiment harness (E5) to check measured counts.
pub fn expected_query_count(k: usize) -> u64 {
    match k {
        0 => 0,
        _ => (k as u64) * (1 + expected_query_count(k - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_count_formula() {
        assert_eq!(expected_query_count(0), 0);
        assert_eq!(expected_query_count(1), 1);
        assert_eq!(expected_query_count(2), 4, "Equation 3 has four terms");
        assert_eq!(expected_query_count(3), 15);
        assert_eq!(expected_query_count(4), 64);
    }

    #[test]
    fn worker_starts_idle() {
        let w = DeltaWorker::new();
        assert!(w.is_idle());
        assert_eq!(w.pending_frames(), 0);
    }
}
