//! `ComputeDelta` — asynchronous propagation using recursive compensation
//! (paper Fig. 4) — implemented as a **resumable work queue**.
//!
//! `ComputeDelta(Q, τ_old, t_new)` produces a **timed delta table** for the
//! query `Q` over the interval from `τ_old` to `t_new` (Theorem 4.1),
//! executing every constituent query *after* `t_new` and compensating for
//! the drift: for each base slot `i`, it runs the forward query with slot
//! `i` replaced by `R^i_{τ_old[i], t_new}` at some later time `t_exec`; the
//! base slots of that query were intended (per Equation 2's convention) to
//! be seen at `τ_old[j]` for `j < i` and at `t_new` for `j > i`, but were
//! actually seen at `t_exec` — so it recursively computes the *negated*
//! delta of the query from the intended times to `t_exec`.
//!
//! For a two-way view this expands to exactly Equation 3:
//!
//! ```text
//! V_{a,b} = R1_{a,b} ⋈ R2@c  −  R1_{a,b} ⋈ R2_{b,c}
//!         + R1@d ⋈ R2_{a,b}  −  R1_{a,d} ⋈ R2_{a,b}
//! ```
//!
//! # Why a work queue and not plain recursion
//!
//! Every constituent query commits as its own transaction, so a lock
//! timeout (deadlock resolution) halfway through leaves some results
//! durably in the view delta. Re-running the whole computation would
//! double-apply them. [`DeltaWorker`] therefore tracks the outstanding
//! [`Frame`]s explicitly: a failed `Execute` pushes its frame back intact,
//! and a later [`DeltaWorker::run`] resumes *exactly* where it stopped —
//! the paper's prototype stores the equivalent progress in its control
//! tables.

use crate::execute::MaintCtx;
use crate::query::PropQuery;
use rolljoin_common::{Csn, Result, TimeInterval};
use std::collections::VecDeque;

/// One outstanding `ComputeDelta` activation: propagate the delta of `q`
/// from `tau` to `t_new` (scaled by `sign`), with slots before `next_slot`
/// already expanded.
#[derive(Debug, Clone)]
pub struct Frame {
    pub q: PropQuery,
    pub sign: i64,
    pub tau: Vec<Csn>,
    pub t_new: Csn,
    next_slot: usize,
}

/// Resumable executor of `ComputeDelta` work.
#[derive(Default)]
pub struct DeltaWorker {
    queue: VecDeque<Frame>,
}

impl DeltaWorker {
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no propagation work is outstanding.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Outstanding frames (for monitoring).
    pub fn pending_frames(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `ComputeDelta(q, tau, t_new)` scaled by `sign`.
    pub fn enqueue(&mut self, q: PropQuery, sign: i64, tau: Vec<Csn>, t_new: Csn) {
        debug_assert_eq!(q.n(), tau.len());
        self.queue.push_back(Frame {
            q,
            sign,
            tau,
            t_new,
            next_slot: 0,
        });
    }

    /// Drain the queue. On error (e.g. a lock timeout), all unfinished
    /// work — including the failing frame — remains queued; call `run`
    /// again to resume without re-executing anything that committed.
    pub fn run(&mut self, ctx: &MaintCtx) -> Result<()> {
        while let Some(mut frame) = self.queue.pop_front() {
            if let Err(e) = self.run_frame(ctx, &mut frame) {
                self.queue.push_front(frame);
                return Err(e);
            }
        }
        Ok(())
    }

    fn run_frame(&mut self, ctx: &MaintCtx, frame: &mut Frame) -> Result<()> {
        let n = frame.q.n();
        ctx.ensure_captured(frame.t_new)?;
        while frame.next_slot < n {
            let i = frame.next_slot;
            if frame.q.slots[i].is_delta() || frame.tau[i] >= frame.t_new {
                frame.next_slot += 1;
                continue;
            }
            let interval = TimeInterval::new(frame.tau[i], frame.t_new);
            if ctx.skip_empty && ctx.engine.delta_count(ctx.mv.view.bases[i], interval)? == 0 {
                // The introduced delta slot is empty, so this query and
                // every query in its compensation subtree (all of which
                // retain the same empty slot) are empty. Nothing to do.
                frame.next_slot += 1;
                continue;
            }
            // Q' ← Q[1]…Q[i−1] R^i_{τ_old[i], t_new} Q[i+1]…Q[n]
            let q2 = frame.q.with_delta(i, interval);
            let outcome = ctx.execute(&q2, frame.sign)?;
            frame.next_slot += 1;
            if q2.slots.iter().any(|s| !s.is_delta()) {
                // Tables left of i were intended at τ_old, right of i at
                // t_new (Equation 2's convention); they were actually seen
                // at t_exec — compensate back, negated.
                let tau_intended: Vec<Csn> = (0..n)
                    .map(|j| match j.cmp(&i) {
                        std::cmp::Ordering::Less => frame.tau[j],
                        std::cmp::Ordering::Equal => 0, // delta slot: unused
                        std::cmp::Ordering::Greater => frame.t_new,
                    })
                    .collect();
                self.queue.push_back(Frame {
                    q: q2,
                    sign: -frame.sign,
                    tau: tau_intended,
                    t_new: outcome.exec_csn,
                    next_slot: 0,
                });
            }
        }
        Ok(())
    }
}

/// One-shot `ComputeDelta` (paper Fig. 4): propagate the delta of `q` from
/// `tau_old` to `t_new`, scaling all emitted counts by `sign`. Entries of
/// `tau_old` at delta slots are ignored.
///
/// `ComputeDelta(V, [a,…,a], t_b)` — i.e. `q = all_base(n)`,
/// `tau_old = [a; n]` — produces the view delta `V_{a,b}`.
///
/// Not resumable: if it fails partway, already-committed constituent
/// queries remain in the view delta. Long-lived propagation should hold a
/// [`DeltaWorker`] instead (as [`crate::Propagator`] and
/// [`crate::RollingPropagator`] do).
pub fn compute_delta(
    ctx: &MaintCtx,
    q: &PropQuery,
    sign: i64,
    tau_old: &[Csn],
    t_new: Csn,
) -> Result<()> {
    let mut worker = DeltaWorker::new();
    worker.enqueue(q.clone(), sign, tau_old.to_vec(), t_new);
    worker.run(ctx)
}

/// The number of propagation queries `ComputeDelta` issues for a query
/// with `k` base slots (assuming every interval is non-empty):
/// `T(k) = k · (1 + T(k−1))`, `T(0) = 0`. This is the asynchrony price the
/// paper pays relative to Equation 2's `n` synchronous queries. Used by
/// the experiment harness (E5) to check measured counts.
pub fn expected_query_count(k: usize) -> u64 {
    match k {
        0 => 0,
        _ => (k as u64) * (1 + expected_query_count(k - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_count_formula() {
        assert_eq!(expected_query_count(0), 0);
        assert_eq!(expected_query_count(1), 1);
        assert_eq!(expected_query_count(2), 4, "Equation 3 has four terms");
        assert_eq!(expected_query_count(3), 15);
        assert_eq!(expected_query_count(4), 64);
    }

    #[test]
    fn worker_starts_idle() {
        let w = DeltaWorker::new();
        assert!(w.is_idle());
        assert_eq!(w.pending_frames(), 0);
    }
}
