//! The `Execute` primitive (paper Figs. 4/10) and the maintenance context.
//!
//! Each propagation query runs as its **own strict-2PL transaction**:
//! S locks on every base-table slot (acquired in `TableId` order to avoid
//! deadlocks among maintenance transactions), an X lock on the view delta
//! table, evaluation, insertion of the timestamped results, commit.
//! `Execute` returns the commit CSN — the paper's "execution time" — which
//! is exactly the time at which the base tables were seen, because the S
//! locks were held through commit.
//!
//! Before reading a delta range ending at `t`, the process must wait for
//! log capture to have ingested every commit ≤ `t` (the paper's prototype
//! likewise waits for DPropR to catch up, §5). [`CaptureWait`] selects
//! between stepping capture inline (single-process setups) and blocking on
//! a background capture driver.

use crate::control::MaterializedView;
use crate::metering::CoreMeters;
use crate::policy::{CompactionPolicy, ExecTuning};
use crate::query::{PropQuery, Slot};
use crate::stats::{CompactionReport, PropStats};
use rolljoin_common::{Csn, Error, Result};
use rolljoin_obs::{JournalEntry, Obs, ObsConfig};
use rolljoin_relalg::{exec, fetch, fetch_cached, BuildCache, SlotInput, SlotSource};
use rolljoin_storage::{Engine, LockMode, ScanCache};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Span context for one propagation query: where it sits in the
/// `ComputeDelta` recursion tree. Passed by the propagation drivers to
/// [`MaintCtx::execute_traced`] so every query span can be parented under
/// the span that caused it — even across worker threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuerySpanCtx {
    /// Span id of the causing span (`0` = parent from the thread-local
    /// span stack, or root).
    pub parent: u64,
    /// Recursion depth in the compensation tree (`0` = issued directly by
    /// the propagation loop).
    pub depth: u32,
    /// The view slot whose delta this query newly introduced, when known.
    pub rel: Option<usize>,
}

/// How maintenance waits for the capture high-water mark to reach a CSN.
#[derive(Debug, Clone, Copy, Default)]
pub enum CaptureWait {
    /// Step the capture process inline until it catches up. Right choice
    /// when no background capture driver is running.
    #[default]
    Inline,
    /// Poll until a background capture driver catches up, giving up after
    /// the timeout (surfaced as [`Error::Internal`]).
    Block { poll: Duration, timeout: Duration },
}

/// Outcome of one executed propagation query.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Commit CSN of the query's transaction — the time at which its base
    /// slots were seen.
    pub exec_csn: Csn,
    /// Rows read per slot / rows written.
    pub stats: exec::ExecStats,
}

/// Shared context for all maintenance algorithms operating on one view.
#[derive(Clone)]
pub struct MaintCtx {
    pub engine: Engine,
    pub mv: Arc<MaterializedView>,
    pub stats: Arc<PropStats>,
    pub capture_wait: CaptureWait,
    /// Skip a propagation query (and its entire compensation subtree) when
    /// its newly-introduced delta slot is empty — every query in the
    /// subtree contains that same empty slot, so all results are provably
    /// empty. On by default; experiments that count the *structural*
    /// number of queries (E5) turn it off.
    pub skip_empty: bool,
    /// Executor tuning: worker count, probe-vs-scan threshold.
    pub tuning: ExecTuning,
    /// Step-scoped cache of materialized delta-range scans, shared by all
    /// constituent queries (and workers) of one propagation step. Sound
    /// because capture-complete delta ranges are immutable; entries are
    /// dropped when the capture HWM advances past the step (memory bound,
    /// not a correctness requirement).
    pub scan_cache: Arc<ScanCache>,
    /// Step-scoped cache of hash-join build sides over shared delta ranges.
    pub build_cache: Arc<BuildCache>,
    /// Observability handle (spans, metrics, journal), at the level set by
    /// `tuning.obs`. Shared across clones, workers, and drivers.
    pub obs: Arc<Obs>,
    /// Cached metric handles for the hot execute path.
    pub meters: Arc<CoreMeters>,
}

impl MaintCtx {
    /// Build a context with inline capture.
    pub fn new(engine: Engine, mv: Arc<MaterializedView>) -> Self {
        let obs = Obs::disabled();
        let meters = Arc::new(CoreMeters::new(&obs.meter));
        MaintCtx {
            engine,
            mv,
            stats: Arc::new(PropStats::new()),
            capture_wait: CaptureWait::Inline,
            skip_empty: true,
            tuning: ExecTuning::default(),
            scan_cache: Arc::new(ScanCache::new()),
            build_cache: Arc::new(BuildCache::new()),
            obs,
            meters,
        }
    }

    /// Use a blocking capture wait (background capture driver running).
    pub fn with_blocking_capture(mut self, poll: Duration, timeout: Duration) -> Self {
        self.capture_wait = CaptureWait::Block { poll, timeout };
        self
    }

    /// Disable the empty-delta pruning optimization.
    pub fn without_empty_skip(mut self) -> Self {
        self.skip_empty = false;
        self
    }

    /// Replace the executor tuning. The lock granularity in the tuning is
    /// applied to the shared engine — set it before concurrent activity.
    /// A changed `tuning.obs` level rebuilds the observability handle, so
    /// set it before handing clones to drivers or workers.
    pub fn with_tuning(mut self, tuning: ExecTuning) -> Self {
        if tuning.obs != self.tuning.obs {
            self.obs = Obs::new(tuning.obs);
            self.meters = Arc::new(CoreMeters::new(&self.obs.meter));
        }
        self.tuning = tuning;
        self.engine.set_lock_granularity(tuning.lock_granularity);
        self
    }

    /// Set the observability level (rebuilds the handle — set it before
    /// concurrent activity starts).
    pub fn with_obs_config(self, config: ObsConfig) -> Self {
        let tuning = self.tuning.with_obs(config);
        self.with_tuning(tuning)
    }

    /// Set the parallel-executor worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.tuning.workers = workers.max(1);
        self
    }

    /// Set the lock granularity (applied to the shared engine — set it
    /// before concurrent activity starts).
    pub fn with_lock_granularity(mut self, g: rolljoin_storage::LockGranularity) -> Self {
        self.tuning.lock_granularity = g;
        self.engine.set_lock_granularity(g);
        self
    }

    /// Set the φ-compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.tuning.compaction = policy;
        self
    }

    /// The global compaction low-water mark: the largest CSN such that no
    /// future delta-range read or roll starts below it. Propagation reads
    /// start at per-relation frontiers, all ≥ the view-delta HWM; apply
    /// reads start at the materialization time. Store history at or below
    /// `min` of the two can be φ-compacted in place without changing what
    /// any consumer can observe.
    pub fn compaction_lwm(&self) -> Csn {
        self.mv.hwm().min(self.mv.mat_time())
    }

    /// φ-compact every store of this view below its safe bound: each base
    /// delta store below [`MaintCtx::compaction_lwm`] (clamped to the
    /// capture HWM, since compaction may not rewrite rows capture is still
    /// appending behind) and the view delta store below the apply
    /// position. A [`CompactionPolicy::Background`] threshold skips stores
    /// holding fewer records. Returns total records removed.
    pub fn compact_stores(&self) -> Result<usize> {
        let started = Instant::now();
        let mut span = self.obs.span("compaction_pass");
        let threshold = self.tuning.compaction.background_threshold().unwrap_or(0);
        let lwm = self.compaction_lwm().min(self.engine.capture_hwm());
        let mut removed = 0usize;
        let mut bases: Vec<_> = self.mv.view.bases.clone();
        bases.sort();
        bases.dedup();
        for base in bases {
            if self.engine.delta_store(base)?.len() >= threshold.max(1) {
                removed += self.engine.compact_delta_history(base, lwm)?;
            }
        }
        if self.engine.vd_len(self.mv.vd_table)? >= threshold.max(1) {
            removed += self
                .engine
                .vd_compact(self.mv.vd_table, self.mv.mat_time())?;
        }
        span.arg("removed", removed as i64);
        span.arg("lwm", lwm as i64);
        if self.obs.tracing_on() && removed > 0 {
            self.obs.journal_step(
                JournalEntry::new("compaction")
                    .with_rows(0, removed as u64)
                    .with_duration_ns(started.elapsed().as_nanos() as u64)
                    .with_hwm(lwm),
            );
        }
        Ok(removed)
    }

    /// Lifetime store-level compaction counters for this view's stores.
    pub fn compaction_report(&self) -> Result<CompactionReport> {
        let mut report = CompactionReport::default();
        let mut bases: Vec<_> = self.mv.view.bases.clone();
        bases.sort();
        bases.dedup();
        for base in bases {
            report
                .base
                .merge(&self.engine.delta_compaction_stats(base)?);
        }
        report.vd = self.engine.vd_compaction_stats(self.mv.vd_table)?;
        Ok(report)
    }

    /// Wait until the capture HWM reaches `csn`.
    pub fn ensure_captured(&self, csn: Csn) -> Result<()> {
        if csn > self.engine.current_csn() {
            return Err(Error::Internal(format!(
                "cannot capture through CSN {csn}: only {} commits exist",
                self.engine.current_csn()
            )));
        }
        match self.capture_wait {
            CaptureWait::Inline => {
                while self.engine.capture_hwm() < csn {
                    let n = self.engine.capture_step(4096)?;
                    if n == 0 && self.engine.capture_hwm() < csn {
                        return Err(Error::Internal(format!(
                            "capture exhausted the log below CSN {csn}"
                        )));
                    }
                }
                Ok(())
            }
            CaptureWait::Block { poll, timeout } => {
                let start = Instant::now();
                while self.engine.capture_hwm() < csn {
                    if start.elapsed() > timeout {
                        return Err(Error::Internal(format!(
                            "timed out waiting for capture to reach CSN {csn} (hwm {})",
                            self.engine.capture_hwm()
                        )));
                    }
                    std::thread::sleep(poll);
                }
                Ok(())
            }
        }
    }

    /// Fetch one delta slot's *full* range through the step-scoped scan
    /// cache, recording cache and scan-compaction stats.
    fn fetch_delta_full(
        &self,
        txn: &mut rolljoin_storage::Txn,
        table: rolljoin_common::TableId,
        iv: rolljoin_common::TimeInterval,
        compact: bool,
    ) -> Result<SlotInput> {
        let source = SlotSource::Delta(table, iv);
        let (input, hit, raw) =
            fetch_cached(&self.engine, txn, &source, &self.scan_cache, compact)?;
        self.stats.record_scan_cache(hit, input.len() as u64);
        if self.obs.metrics_on() {
            if hit {
                self.meters.scan_cache_hits.inc(1);
            } else {
                self.meters.scan_cache_misses.inc(1);
            }
        }
        if compact && !hit {
            self.stats
                .record_scan_compaction(raw as u64, input.len() as u64);
        }
        Ok(input)
    }

    /// Fetch all slot row sets of a propagation query within `txn`: the
    /// smallest delta range first (the seed), then the rest in cascaded
    /// semi-join order — a slot equi-joined to an **already-fetched**
    /// neighbor with an index on its join column is probed by the
    /// neighbor's distinct key values instead of scanned. Base slots probe
    /// through their secondary index; delta slots probe through their
    /// keyed time-range index, resolving each key to a binary-search
    /// posting slice of `σ_{a,b}(Δ^R)`. Because fetched keyed slots become
    /// probe sources themselves, the keying cascades down a chain —
    /// `ΔR1`'s keys probe `σ`-ranges of `Δ^{R2}`, whose rows' keys probe
    /// `R3`, and so on — so the transaction touches (and, under striped
    /// locking, locks) rows proportional to the *delta*, not the tables or
    /// the delta history depth. Probe-vs-scan decisions: base slots use
    /// `keys × probe_scan_ratio < distinct table keys`; delta slots use
    /// the *exact* posting-slice count, `estimate × delta_probe_ratio <
    /// range rows`. Only when no fetched neighbor offers a cheap enough
    /// probe does a slot fall back to a full fetch (range scan for deltas,
    /// table-granularity S-locked scan for bases). Under table granularity
    /// callers must already hold the base-table locks; under striped
    /// granularity the fetches acquire IS + key-stripe S locks (or table S
    /// for scans) on demand — keyed delta probes take the same footprint
    /// as keyed base probes.
    pub fn fetch_slots(
        &self,
        txn: &mut rolljoin_storage::Txn,
        q: &PropQuery,
    ) -> Result<Vec<SlotInput>> {
        let view = &self.mv.view;
        let n = q.n();
        let offsets = view.spec.offsets();
        let slot_of = |col: usize| -> usize {
            offsets
                .windows(2)
                .position(|w| col >= w[0] && col < w[1])
                .expect("validated column")
        };
        let compact = self.tuning.compaction.compact_on_scan();
        let mut slot_rows: Vec<Option<SlotInput>> = (0..n).map(|_| None).collect();

        // Seed the cascade. With delta probing on, only the smallest delta
        // range is materialized unconditionally — the others stay pending
        // so the cascade may resolve them as keyed probes. With it off,
        // every delta range is fetched up front (the pre-index behavior).
        let deltas: Vec<(usize, rolljoin_common::TimeInterval)> = q
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Delta(iv) => Some((i, *iv)),
                Slot::Base => None,
            })
            .collect();
        let prefetch: Vec<(usize, rolljoin_common::TimeInterval)> =
            if self.tuning.delta_probe && deltas.len() > 1 {
                let seed = deltas
                    .iter()
                    .copied()
                    .min_by_key(|&(i, iv)| {
                        self.engine
                            .delta_count(view.bases[i], iv)
                            .unwrap_or(usize::MAX)
                    })
                    .expect("deltas is non-empty");
                vec![seed]
            } else {
                deltas
            };
        for (i, iv) in prefetch {
            slot_rows[i] = Some(self.fetch_delta_full(txn, view.bases[i], iv, compact)?);
        }

        let mut remaining: Vec<usize> = (0..n).filter(|&i| slot_rows[i].is_none()).collect();
        while !remaining.is_empty() {
            // Find a remaining slot probeable from a fetched neighbor.
            // `Option<TimeInterval>` distinguishes a keyed delta probe
            // from a keyed base probe.
            type Picked = (
                usize,
                usize,
                Vec<rolljoin_common::Value>,
                Option<rolljoin_common::TimeInterval>,
            );
            let mut picked: Option<Picked> = None;
            'slots: for &i in &remaining {
                let base = view.bases[i];
                let delta_iv = match q.slots[i] {
                    Slot::Delta(iv) => Some(iv),
                    Slot::Base => None,
                };
                for &(a, b) in &view.spec.equi {
                    let (sa, sb) = (slot_of(a), slot_of(b));
                    let (bcol, nslot, ncol) = if sa == i && slot_rows[sb].is_some() {
                        (a, sb, b)
                    } else if sb == i && slot_rows[sa].is_some() {
                        (b, sa, a)
                    } else {
                        continue;
                    };
                    let local_col = bcol - offsets[i];
                    let indexed = match delta_iv {
                        Some(_) => self.engine.has_delta_index(base, local_col)?,
                        None => self.engine.has_index(base, local_col)?,
                    };
                    if !indexed {
                        continue;
                    }
                    let nrows = slot_rows[nslot].as_ref().expect("neighbor fetched");
                    let nlocal = ncol - offsets[nslot];
                    let keys: Vec<rolljoin_common::Value> = nrows
                        .rows()
                        .iter()
                        .map(|r| r.tuple.get(nlocal).clone())
                        .filter(|v| !v.is_null())
                        .collect::<std::collections::HashSet<_>>()
                        .into_iter()
                        .collect();
                    match delta_iv {
                        // Delta side: the posting-slice count is exact, so
                        // compare estimated matching rows against the full
                        // range's row count directly.
                        Some(iv) => {
                            let est = self
                                .engine
                                .delta_keyed_estimate(base, iv, local_col, &keys)?
                                .unwrap_or(usize::MAX);
                            let range = self.engine.delta_count(base, iv)?;
                            if est.saturating_mul(self.tuning.delta_probe_ratio) >= range.max(1) {
                                continue;
                            }
                        }
                        // Base side: probing beats scanning only while the
                        // key set is small relative to the table.
                        None => {
                            if keys.len() * self.tuning.probe_scan_ratio
                                >= self.engine.table_distinct(base)?.max(1)
                            {
                                continue;
                            }
                        }
                    }
                    picked = Some((i, local_col, keys, delta_iv));
                    break 'slots;
                }
            }
            match picked {
                // Keyed delta probe: per-key posting slices, φ-compacted,
                // bypassing the scan cache (the result is key-set-specific).
                Some((i, col, keys, Some(iv))) => {
                    let source = SlotSource::DeltaKeyed {
                        table: view.bases[i],
                        interval: iv,
                        col,
                        keys: std::sync::Arc::new(keys),
                    };
                    let (input, _, raw) =
                        fetch_cached(&self.engine, txn, &source, &self.scan_cache, compact)?;
                    self.stats.record_delta_decision(true, raw as u64);
                    if compact {
                        self.stats
                            .record_scan_compaction(raw as u64, input.len() as u64);
                    }
                    if self.obs.metrics_on() {
                        self.meters.delta_index_probes.inc(1);
                        self.meters.delta_index_probe_rows.inc(raw as u64);
                    }
                    slot_rows[i] = Some(input);
                    remaining.retain(|&x| x != i);
                }
                Some((i, col, keys, None)) => {
                    let source = SlotSource::BaseKeyed {
                        table: view.bases[i],
                        col,
                        keys: std::sync::Arc::new(keys),
                    };
                    slot_rows[i] = Some(SlotInput::Owned(fetch(&self.engine, txn, &source)?));
                    remaining.retain(|&x| x != i);
                }
                None => {
                    // No probeable slot. Pending delta slots fall back to a
                    // full range fetch (recorded as a scan decision); after
                    // that, full-scan the lowest-TableId base slot (its rows
                    // may make neighbors probeable next round).
                    if let Some(&i) = remaining
                        .iter()
                        .filter(|&&i| q.slots[i].is_delta())
                        .min_by_key(|&&i| view.bases[i])
                    {
                        let iv = match q.slots[i] {
                            Slot::Delta(iv) => iv,
                            Slot::Base => unreachable!("filtered to delta slots"),
                        };
                        slot_rows[i] =
                            Some(self.fetch_delta_full(txn, view.bases[i], iv, compact)?);
                        self.stats.record_delta_decision(false, 0);
                        if self.obs.metrics_on() {
                            self.meters.delta_index_scans.inc(1);
                        }
                        remaining.retain(|&x| x != i);
                    } else {
                        let &i = remaining
                            .iter()
                            .min_by_key(|&&i| view.bases[i])
                            .expect("remaining is non-empty");
                        let source = SlotSource::Base(view.bases[i]);
                        slot_rows[i] = Some(SlotInput::Owned(fetch(&self.engine, txn, &source)?));
                        remaining.retain(|&x| x != i);
                    }
                }
            }
        }
        Ok(slot_rows
            .into_iter()
            .map(|r| r.expect("all fetched"))
            .collect())
    }

    /// Execute one propagation query (≥ 1 delta slot) as a transaction and
    /// insert its results into the view delta table. `sign` scales counts
    /// (−1 for compensation).
    pub fn execute(&self, q: &PropQuery, sign: i64) -> Result<ExecOutcome> {
        self.execute_traced(q, sign, QuerySpanCtx::default())
            .map(|(outcome, _)| outcome)
    }

    /// [`MaintCtx::execute`] with span context: records one span per
    /// query (named `forward` or `comp`, tagged with relation, interval,
    /// recursion depth, and row counts) and returns its id so the caller
    /// can parent the query's compensation subtree under it. The id is
    /// `0` unless tracing is on.
    pub fn execute_traced(
        &self,
        q: &PropQuery,
        sign: i64,
        sctx: QuerySpanCtx,
    ) -> Result<(ExecOutcome, u64)> {
        let view = &self.mv.view;
        debug_assert_eq!(q.n(), view.n());
        let hi = q.max_delta_hi().ok_or_else(|| {
            Error::Invalid("propagation queries must contain a delta slot".into())
        })?;
        let is_forward = q.is_forward() && sign == 1;
        let mut qspan = if sctx.parent != 0 {
            self.obs
                .span_under(if is_forward { "forward" } else { "comp" }, sctx.parent)
        } else {
            self.obs.span(if is_forward { "forward" } else { "comp" })
        };
        let span_id = qspan.id();
        if !qspan.is_noop() {
            qspan.label(q.to_string());
            qspan.arg("depth", sctx.depth as i64);
            qspan.arg("sign", sign);
            if let Some(rel) = sctx.rel {
                qspan.arg("rel", rel as i64);
                if let Slot::Delta(iv) = q.slots[rel] {
                    qspan.arg("lo", iv.lo as i64);
                    qspan.arg("hi", iv.hi as i64);
                }
            }
        }
        let wall_start = Instant::now();
        {
            let _s = self.obs.span("capture_wait");
            self.ensure_captured(hi)?;
        }
        // Step-scope the caches: the propagation HWM only advances when a
        // step completes, so entries live exactly for the step that
        // materialized them and are dropped when the frontier moves past
        // it. (Capture-complete delta ranges are immutable, so this is a
        // memory bound, never a staleness concern — and keying off the
        // propagation HWM rather than the capture HWM keeps concurrent
        // updater commits from evicting a live step's working set.)
        let hwm = self.mv.hwm();
        self.scan_cache.advance_epoch(hwm);
        self.build_cache.advance_epoch(hwm);

        let mut txn = self.engine.begin();
        // Table granularity: pre-lock base-table slots S in TableId order
        // (deadlock avoidance among maintenance transactions). The view
        // delta table's X lock is taken lazily by the first `vd_insert` —
        // after the fetch and join — so writers contend on it only for
        // the insert+commit tail of the query; the lock order is still
        // globally consistent because the view delta table was created
        // after every base (larger `TableId`).
        //
        // Striped granularity: no pre-lock. The fetches take IS + the S
        // stripes of their key sets (or table S for full scans) as they
        // run, so a keyed probe conflicts only with updaters of colliding
        // keys. Acquisition order is no longer global, but maintenance
        // transactions hold only shared/intent-shared base locks — which
        // are mutually compatible — plus the vd-table X last, so they
        // cannot deadlock each other; cycles through updaters are
        // resolved by lock timeout and retry, same as at table grain.
        if self.engine.lock_granularity() == rolljoin_storage::LockGranularity::Table {
            let mut lock_order: Vec<_> = q
                .slots
                .iter()
                .zip(&view.bases)
                .filter(|(s, _)| !s.is_delta())
                .map(|(_, t)| *t)
                .collect();
            lock_order.sort();
            lock_order.dedup();
            for t in lock_order {
                txn.lock(t, LockMode::Shared)?;
            }
        }

        let slot_rows = {
            let _s = self.obs.span("fetch");
            self.fetch_slots(&mut txn, q)?
        };

        let (rows, stats) = {
            let _s = self.obs.span("join");
            exec::execute_shared(slot_rows, &view.spec, sign, Some(&self.build_cache))?
        };
        let mut written = 0u64;
        for row in rows {
            let ts = row.ts.ok_or_else(|| {
                Error::Internal("propagation result row lost its timestamp".into())
            })?;
            if row.count != 0 {
                txn.vd_insert(self.mv.vd_table, ts, row.count, row.tuple)?;
                written += 1;
            }
        }
        let lock_wait = txn.lock_wait();
        let exec_csn = {
            let _s = self.obs.span("commit");
            txn.commit()?
        };
        let wall = wall_start.elapsed();
        self.stats.record_query_wall(wall.as_nanos() as u64);
        self.stats.record_lock_wait(lock_wait.as_nanos() as u64);

        let (mut base_rows, mut delta_rows) = (0u64, 0u64);
        for (slot, n) in q.slots.iter().zip(&stats.rows_in) {
            match slot {
                Slot::Base => base_rows += *n as u64,
                Slot::Delta(_) => delta_rows += *n as u64,
            }
        }
        self.stats
            .record_query(is_forward, base_rows, delta_rows, written);

        if self.obs.metrics_on() {
            let m = &self.meters;
            if is_forward {
                m.forward_queries.inc(1);
            } else {
                m.comp_queries.inc(1);
            }
            m.base_rows_read.inc(base_rows);
            m.delta_rows_read.inc(delta_rows);
            m.vd_rows_written.inc(written);
            m.query_wall_us.observe(wall.as_micros() as u64);
            m.query_lock_wait_us.observe(lock_wait.as_micros() as u64);
            self.refresh_gauges();
        }
        if !qspan.is_noop() {
            qspan.arg("rows_read", (base_rows + delta_rows) as i64);
            qspan.arg("rows_out", written as i64);
            qspan.arg("lock_wait_us", lock_wait.as_micros() as i64);
            qspan.arg("csn", exec_csn as i64);
        }

        Ok((ExecOutcome { exec_csn, stats }, span_id))
    }

    /// Recompute the lag gauges from the current frontiers:
    /// `propagation_lag = capture_hwm − prop_hwm` and
    /// `view_staleness = capture_hwm − mat_time` (saturating — apply and
    /// propagation commits themselves advance the engine clock past the
    /// capture HWM, so the raw differences can transiently run negative).
    /// No-op unless metrics are on.
    pub fn refresh_gauges(&self) {
        if !self.obs.metrics_on() {
            return;
        }
        let capture = self.engine.capture_hwm();
        let hwm = self.mv.hwm();
        let mat = self.mv.mat_time();
        let m = &self.meters;
        m.capture_hwm.set(capture as i64);
        m.prop_hwm.set(hwm as i64);
        m.mat_time.set(mat as i64);
        m.propagation_lag.set(capture.saturating_sub(hwm) as i64);
        m.view_staleness.set(capture.saturating_sub(mat) as i64);
        m.delta_postings_bytes
            .set(self.engine.delta_postings_bytes() as i64);
    }

    /// Fold the cold-path sources into the metrics registry — the lock
    /// manager's per-granularity stats, store-level compaction totals,
    /// scan-level compaction counters — and refresh the lag gauges.
    /// Call before exporting; [`MaintCtx::prometheus`] does.
    pub fn observe_now(&self) -> Result<()> {
        if !self.obs.metrics_on() {
            return Ok(());
        }
        self.refresh_gauges();
        let m = &self.meters;
        let meter = &self.obs.meter;
        m.fold_lock_stats(meter, &self.engine.locks().stats().snapshot_full());
        m.fold_compaction(meter, &self.compaction_report()?);
        m.fold_prop_stats(meter, &self.stats.snapshot());
        Ok(())
    }

    /// Fold everything current and export the registry in Prometheus text
    /// format.
    pub fn prometheus(&self) -> Result<String> {
        self.observe_now()?;
        Ok(self.obs.meter.prometheus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ViewDef;
    use rolljoin_common::{tup, ColumnType, Schema, TimeInterval};
    use rolljoin_relalg::JoinSpec;

    fn two_table_ctx() -> (MaintCtx, rolljoin_common::TableId, rolljoin_common::TableId) {
        let e = Engine::new();
        let r = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        let s = e
            .create_table(
                "s",
                Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
            )
            .unwrap();
        let view = ViewDef::new(
            &e,
            "v",
            vec![r, s],
            JoinSpec {
                slot_schemas: vec![e.schema(r).unwrap(), e.schema(s).unwrap()],
                equi: vec![(1, 2)],
                filter: None,
                projection: vec![0, 3],
            },
        )
        .unwrap();
        let mv = MaterializedView::register(&e, view).unwrap();
        (MaintCtx::new(e, mv), r, s)
    }

    #[test]
    fn forward_query_writes_timestamped_vd_rows() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        let mut w = e.begin();
        w.insert(s, tup![10, 100]).unwrap();
        w.commit().unwrap();
        let mut w = e.begin();
        w.insert(r, tup![1, 10]).unwrap();
        let c2 = w.commit().unwrap();

        // Forward query ΔR ⋈ S over (0, c2].
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(0, c2));
        let out = ctx.execute(&q, 1).unwrap();
        assert!(out.exec_csn > c2);
        let rows = e
            .vd_range(ctx.mv.vd_table, TimeInterval::new(0, c2))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tuple, tup![1, 100]);
        assert_eq!(rows[0].ts, Some(c2), "timestamp from the delta side");
        let snap = ctx.stats.snapshot();
        assert_eq!(snap.forward_queries, 1);
        assert_eq!(snap.vd_rows_written, 1);
    }

    #[test]
    fn execute_requires_a_delta_slot() {
        let (ctx, _r, _s) = two_table_ctx();
        let q = PropQuery::all_base(2);
        assert!(ctx.execute(&q, 1).is_err());
    }

    #[test]
    fn ensure_captured_rejects_future_csns() {
        let (ctx, _r, _s) = two_table_ctx();
        assert!(ctx.ensure_captured(99).is_err());
    }

    #[test]
    fn pushdown_probes_indexed_base_slots() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        e.create_index(s, 0).unwrap();
        // 1000 s-rows, one r-row: the forward query ΔR ⋈ S should probe S
        // by ΔR's join keys instead of scanning it.
        let mut w = e.begin();
        for i in 0..1000i64 {
            w.insert(s, tup![i, i]).unwrap();
        }
        w.commit().unwrap();
        let mut w = e.begin();
        w.insert(r, tup![1, 77]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(c - 1, c));
        let out = ctx.execute(&q, 1).unwrap();
        assert_eq!(out.stats.rows_in, vec![1, 1], "probed, not scanned");
        assert_eq!(out.stats.rows_out, 1);
        let rows = e
            .vd_range(ctx.mv.vd_table, TimeInterval::new(0, c))
            .unwrap();
        assert_eq!(rows[0].tuple, tup![1, 77]);
    }

    #[test]
    fn pushdown_falls_back_without_index_or_with_wide_keys() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        // No index: full scan of the S side.
        let mut w = e.begin();
        for i in 0..50i64 {
            w.insert(s, tup![i, i]).unwrap();
        }
        w.insert(r, tup![1, 7]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(0, c));
        let out = ctx.execute(&q, 1).unwrap();
        assert_eq!(out.stats.rows_in[1], 50, "no index → scan");
        // With an index but keys covering most of the table, the planner
        // heuristic also scans.
        e.create_index(s, 0).unwrap();
        let mut w = e.begin();
        for i in 0..60i64 {
            w.insert(r, tup![100 + i, i % 50]).unwrap();
        }
        let c2 = w.commit().unwrap();
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(c, c2));
        let out = ctx.execute(&q, 1).unwrap();
        assert_eq!(out.stats.rows_in[1], 50, "wide key set → scan");
    }

    #[test]
    fn probe_scan_ratio_tunes_pushdown_boundary() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        e.create_index(s, 0).unwrap();
        // 50 distinct s-rows; the delta carries 10 distinct join keys, so
        // the probe/scan decision flips exactly at ratio 5 (10×5 ≥ 50).
        let mut w = e.begin();
        for i in 0..50i64 {
            w.insert(s, tup![i, i]).unwrap();
        }
        w.commit().unwrap();
        let mut w = e.begin();
        for i in 0..10i64 {
            w.insert(r, tup![i, i]).unwrap();
        }
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(c - 1, c));

        let probing = ctx
            .clone()
            .with_tuning(crate::policy::ExecTuning::sequential().with_probe_scan_ratio(4));
        let out = probing.execute(&q, 1).unwrap();
        assert_eq!(out.stats.rows_in[1], 10, "10×4 < 50 → probe");

        let scanning = ctx
            .clone()
            .with_tuning(crate::policy::ExecTuning::sequential().with_probe_scan_ratio(5));
        let out = scanning.execute(&q, 1).unwrap();
        assert_eq!(out.stats.rows_in[1], 50, "10×5 ≥ 50 → scan");
    }

    #[test]
    fn pushdown_probes_indexed_delta_slots() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        e.create_delta_index(s, 0).unwrap();
        // Deep Δ^S history: 200 single-row commits on distinct keys, then
        // one ΔR row joining key 77. The compensation query ΔR ⋈ Δ^S
        // should resolve the Δ^S slot by a keyed posting probe.
        let mut last = 0;
        for i in 0..200i64 {
            let mut w = e.begin();
            w.insert(s, tup![i, i]).unwrap();
            last = w.commit().unwrap();
        }
        let mut w = e.begin();
        w.insert(r, tup![1, 77]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2)
            .with_delta(0, TimeInterval::new(last, c))
            .with_delta(1, TimeInterval::new(0, last));
        let out = ctx.execute(&q, -1).unwrap();
        assert_eq!(
            out.stats.rows_in,
            vec![1, 1],
            "ΔR's key probed Δ^S's postings, not the 200-row range"
        );
        assert_eq!(out.stats.rows_out, 1);
        let snap = ctx.stats.snapshot();
        assert_eq!(snap.delta_probe_decisions, 1);
        assert_eq!(snap.delta_scan_decisions, 0);
        assert_eq!(snap.delta_probe_rows, 1);
        assert!(snap.delta_probe_rate() > 0.99);

        // With probing disabled the same query scans the whole Δ^S range.
        let scanning = ctx
            .clone()
            .with_tuning(crate::policy::ExecTuning::sequential().with_delta_probe(false));
        let out = scanning.execute(&q, -1).unwrap();
        assert_eq!(out.stats.rows_in, vec![1, 200], "probing off → range scan");
    }

    #[test]
    fn delta_probe_estimate_rejects_hot_key_ranges() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        e.create_delta_index(s, 0).unwrap();
        // Every Δ^S row carries the probe key: the posting-slice estimate
        // equals the range size, so probing cannot win and the planner
        // falls back to the range scan (recorded as a scan decision).
        let mut last = 0;
        for i in 0..20i64 {
            let mut w = e.begin();
            w.insert(s, tup![77, i]).unwrap();
            last = w.commit().unwrap();
        }
        let mut w = e.begin();
        w.insert(r, tup![1, 77]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2)
            .with_delta(0, TimeInterval::new(last, c))
            .with_delta(1, TimeInterval::new(0, last));
        let out = ctx.execute(&q, -1).unwrap();
        assert_eq!(
            out.stats.rows_in,
            vec![1, 20],
            "hot key → estimate says scan"
        );
        let snap = ctx.stats.snapshot();
        assert_eq!(snap.delta_probe_decisions, 0);
        assert_eq!(snap.delta_scan_decisions, 1);
    }

    #[test]
    fn delta_index_metrics_reach_prometheus() {
        let (ctx, r, s) = two_table_ctx();
        let ctx = ctx.with_obs_config(rolljoin_obs::ObsConfig::Metrics);
        let e = &ctx.engine;
        e.create_delta_index(s, 0).unwrap();
        let mut last = 0;
        for i in 0..50i64 {
            let mut w = e.begin();
            w.insert(s, tup![i, i]).unwrap();
            last = w.commit().unwrap();
        }
        let mut w = e.begin();
        w.insert(r, tup![1, 7]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2)
            .with_delta(0, TimeInterval::new(last, c))
            .with_delta(1, TimeInterval::new(0, last));
        ctx.execute(&q, -1).unwrap();
        let text = ctx.prometheus().unwrap();
        assert!(text.contains("rolljoin_delta_index_total{decision=\"probe\"} 1"));
        assert!(text.contains("rolljoin_delta_index_total{decision=\"scan\"} 0"));
        assert!(text.contains("rolljoin_delta_index_probe_rows_total 1"));
        // The postings gauge reflects live index memory.
        let line = text
            .lines()
            .find(|l| l.starts_with("rolljoin_delta_postings_bytes"))
            .expect("postings gauge rendered");
        let bytes: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(bytes > 0, "postings bytes gauge is live: {line}");
    }

    #[test]
    fn scan_cache_serves_repeated_delta_ranges() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        let mut w = e.begin();
        w.insert(r, tup![1, 10]).unwrap();
        w.insert(s, tup![10, 100]).unwrap();
        let c = w.commit().unwrap();
        let q = PropQuery::all_base(2).with_delta(0, TimeInterval::new(0, c));
        ctx.execute(&q, 1).unwrap();
        ctx.execute(&q, 1).unwrap();
        let snap = ctx.stats.snapshot();
        assert_eq!(snap.scan_cache_misses, 1);
        assert_eq!(snap.scan_cache_hits, 1);
        assert_eq!(snap.scan_cache_rows, 1);
        assert!(snap.query_wall_nanos > 0);
        // Completing the step advances the propagation HWM past the cached
        // ranges; the next step starts cold.
        let mut w = e.begin();
        w.insert(r, tup![2, 11]).unwrap();
        let c2 = w.commit().unwrap();
        ctx.mv.set_hwm(c);
        let q2 = PropQuery::all_base(2).with_delta(0, TimeInterval::new(c, c2));
        ctx.execute(&q2, 1).unwrap();
        assert_eq!(ctx.stats.snapshot().scan_cache_misses, 2);
        assert_eq!(ctx.scan_cache.len(), 1, "old step's entries evicted");
    }

    #[test]
    fn compensation_sign_negates_counts() {
        let (ctx, r, s) = two_table_ctx();
        let e = &ctx.engine;
        let mut w = e.begin();
        w.insert(r, tup![1, 10]).unwrap();
        w.insert(s, tup![10, 100]).unwrap();
        let c = w.commit().unwrap();
        // All-delta compensation over (0, c] with sign −1.
        let q = PropQuery::all_base(2)
            .with_delta(0, TimeInterval::new(0, c))
            .with_delta(1, TimeInterval::new(0, c));
        ctx.execute(&q, -1).unwrap();
        let rows = e
            .vd_range(ctx.mv.vd_table, TimeInterval::new(0, c))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, -1);
        assert_eq!(ctx.stats.snapshot().comp_queries, 1);
    }
}
