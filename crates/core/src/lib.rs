//! `rolljoin-core` — rolling join propagation: asynchronous incremental
//! view maintenance (Salem, Beyer, Lindsay, Cochrane — SIGMOD 2000).
//!
//! The library maintains select–project–join materialized views with the
//! paper's three properties: propagation is **asynchronous** (compensation
//! instead of snapshots), **continuous and small-stepped** (per-relation
//! tunable transaction sizes), and **timestamped** (point-in-time refresh
//! decoupled from propagation).
//!
//! Map from paper artifact to module:
//!
//! | paper | module |
//! |---|---|
//! | §2 propagation queries, realizability | [`query`] |
//! | Fig. 4 `ComputeDelta` | [`mod@compute_delta`] |
//! | Fig. 5 `Propagate` | [`propagate`] |
//! | Fig. 10 `RollingPropagate` | [`rolling`] |
//! | Eq. 1 / Eq. 2 synchronous baselines | [`sync`] |
//! | apply process, point-in-time refresh | [`apply`] |
//! | Fig. 11 control tables | [`control`] |
//! | §3.3 interval tuning | [`policy`] |
//! | background propagate/apply/capture drivers | [`driver`] |
//! | §4 correctness oracles | [`oracle`] |
//! | summary-delta aggregation extension | [`summary`] |

pub mod apply;
pub mod compute_delta;
pub mod control;
pub mod driver;
pub mod execute;
pub mod metering;
pub mod oracle;
pub mod policy;
pub mod propagate;
pub mod query;
pub mod rolling;
pub mod stats;
pub mod summary;
pub mod sync;
pub mod union;
pub mod view;

pub use apply::{full_refresh, materialize, roll_to, roll_to_wallclock, ApplyOutcome};
pub use compute_delta::{compute_delta, expected_query_count, DeltaWorker};
pub use control::MaterializedView;
pub use driver::{
    spawn_apply_driver, spawn_capture_driver, spawn_compaction_driver, spawn_rolling_driver,
    DriverHandle,
};
pub use execute::{CaptureWait, ExecOutcome, MaintCtx, QuerySpanCtx};
pub use metering::CoreMeters;
pub use policy::{
    CompactionPolicy, ExecTuning, FullWidth, IntervalPolicy, LatencyBudget, PerRelationInterval,
    TargetRows, UniformInterval,
};
pub use propagate::Propagator;
pub use query::{PropQuery, Slot};
pub use rolling::{CompensationMode, RollingPropagator, RollingStep};
pub use rolljoin_obs::{Journal, JournalEntry, Meter, Obs, ObsConfig, SpanRecorder};
pub use stats::{
    format_lock_breakdown, CompactionReport, CompactionStats, GranStatsSnapshot, LockStatsSnapshot,
    PropStats, PropStatsSnapshot,
};
pub use summary::{AggFn, AggSpec, SummaryDeltaRow, SummaryView};
pub use sync::{
    eq1_query_count, eq2_query_count, sync_propagate_eq1, sync_propagate_eq2, SyncOutcome,
};
pub use union::UnionView;
pub use view::ViewDef;
