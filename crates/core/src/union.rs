//! Union views — the paper's §2 extension.
//!
//! "Although rolling propagation is presented for select-project-join
//! views, it can be extended easily to accommodate views involving union."
//! The extension really is easy, and this module shows why: the delta of a
//! (multiset) union is the union of the branch deltas, so a union view
//! `V = B_1 + B_2 + … + B_k` of SPJ branches is maintained by running one
//! propagation process per branch, all writing timestamped records into a
//! **shared** view delta table. The apply process does not change at all —
//! it net-effects the shared delta and installs it, and point-in-time
//! refresh works to the minimum of the branch high-water marks.

use crate::apply::ApplyOutcome;
use crate::control::MaterializedView;
use crate::execute::MaintCtx;
use crate::view::ViewDef;
use rolljoin_common::{Csn, Error, Result, TableId, TimeInterval};
use rolljoin_relalg::{exec, fetch, SlotSource};
use rolljoin_storage::{Engine, LockMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A materialized union of SPJ branches sharing one MV table and one view
/// delta table.
pub struct UnionView {
    /// Branch control entries. Each shares `mv_table`/`vd_table`; their
    /// per-branch HWMs are maintained by their own propagators.
    pub branches: Vec<Arc<MaterializedView>>,
    pub mv_table: TableId,
    pub vd_table: TableId,
    mat_time: AtomicU64,
}

impl UnionView {
    /// Register a union view from SPJ branch definitions. All branches
    /// must produce the same output schema.
    pub fn register(engine: &Engine, name: &str, defs: Vec<ViewDef>) -> Result<UnionView> {
        if defs.is_empty() {
            return Err(Error::Invalid(
                "union view needs at least one branch".into(),
            ));
        }
        for d in &defs {
            d.validate(engine)?;
        }
        let out = defs[0].output_schema();
        for d in &defs[1..] {
            if d.output_schema() != out {
                return Err(Error::SchemaMismatch(format!(
                    "union branch {} produces {}, expected {}",
                    d.name,
                    d.output_schema(),
                    out
                )));
            }
        }
        let mv_table = engine.create_table(&format!("{name}__mv"), out.clone())?;
        let vd_table = engine.create_view_delta(&format!("{name}__vd"), out)?;
        let branches = defs
            .into_iter()
            .map(|d| MaterializedView::attach(d, mv_table, vd_table))
            .collect();
        Ok(UnionView {
            branches,
            mv_table,
            vd_table,
            mat_time: AtomicU64::new(0),
        })
    }

    /// Maintenance context for branch `i` (hand these to propagators).
    pub fn branch_ctx(&self, engine: &Engine, i: usize) -> MaintCtx {
        MaintCtx::new(engine.clone(), self.branches[i].clone())
    }

    /// The union's materialization time.
    pub fn mat_time(&self) -> Csn {
        self.mat_time.load(Ordering::Acquire)
    }

    /// The union's high-water mark: the minimum branch HWM — the furthest
    /// point every branch's delta is complete to.
    pub fn hwm(&self) -> Csn {
        self.branches
            .iter()
            .map(|b| b.hwm())
            .min()
            .expect("≥ 1 branch")
    }

    /// Initially materialize: one transaction evaluating every branch's
    /// all-base join and installing the multiset union. Every branch's
    /// mat time / HWM and the union's mat time are set to the commit CSN.
    pub fn materialize(&self, engine: &Engine) -> Result<Csn> {
        let mut txn = engine.begin();
        let mut order: Vec<TableId> = self
            .branches
            .iter()
            .flat_map(|b| b.view.bases.iter().copied())
            .collect();
        order.sort();
        order.dedup();
        for t in order {
            txn.lock(t, LockMode::Shared)?;
        }
        txn.lock(self.mv_table, LockMode::Exclusive)?;
        for branch in &self.branches {
            let mut slot_rows = Vec::with_capacity(branch.view.n());
            for base in &branch.view.bases {
                slot_rows.push(fetch(engine, &mut txn, &SlotSource::Base(*base))?);
            }
            let (rows, _) = exec::execute(slot_rows, &branch.view.spec, 1)?;
            for row in rows {
                txn.apply_count(self.mv_table, &row.tuple, row.count)?;
            }
        }
        let csn = txn.commit()?;
        self.mat_time.store(csn, Ordering::Release);
        for branch in &self.branches {
            branch.set_mat_time(csn);
            branch.set_hwm(csn);
        }
        Ok(csn)
    }

    /// Point-in-time refresh of the union to `target ≤` the union HWM.
    pub fn roll_to(&self, engine: &Engine, target: Csn) -> Result<ApplyOutcome> {
        let mat = self.mat_time();
        let hwm = self.hwm();
        if target < mat {
            return Err(Error::RollBackward {
                requested: target,
                current: mat,
            });
        }
        if target > hwm {
            return Err(Error::BeyondHighWaterMark {
                requested: target,
                hwm,
            });
        }
        if target == mat {
            return Ok(ApplyOutcome {
                rolled_to: mat,
                tuples_changed: 0,
                insertions: 0,
                deletions: 0,
            });
        }
        let mut txn = engine.begin();
        txn.lock(self.vd_table, LockMode::Shared)?;
        txn.lock(self.mv_table, LockMode::Exclusive)?;
        let net = engine.vd_net_range(self.vd_table, TimeInterval::new(mat, target))?;
        let tuples_changed = net.len();
        let (mut insertions, mut deletions) = (0i64, 0i64);
        for (tuple, count) in net {
            if count > 0 {
                insertions += count;
            } else {
                deletions += -count;
            }
            txn.apply_count(self.mv_table, &tuple, count)?;
        }
        txn.commit()?;
        self.mat_time.store(target, Ordering::Release);
        for branch in &self.branches {
            branch.set_mat_time(target);
        }
        Ok(ApplyOutcome {
            rolled_to: target,
            tuples_changed,
            insertions,
            deletions,
        })
    }

    /// `φ` of the current materialized union (oracle-style accessor).
    pub fn mv_state(&self, engine: &Engine) -> Result<rolljoin_relalg::NetEffect> {
        let mut txn = engine.begin();
        let counts = txn.scan_counts(self.mv_table)?;
        txn.commit()?;
        Ok(counts.into_iter().collect())
    }

    /// Oracle: `φ` of the union at time `t`, recomputed branch by branch.
    pub fn oracle_at(&self, engine: &Engine, t: Csn) -> Result<rolljoin_relalg::NetEffect> {
        let mut acc = rolljoin_relalg::NetEffect::new();
        for branch in &self.branches {
            let b = crate::oracle::view_at(engine, &branch.view, t)?;
            acc = rolljoin_relalg::add(&acc, &b);
        }
        Ok(acc)
    }
}
