//! Propagation queries and realizability (paper §2).
//!
//! A propagation query for view `V` has `V`'s shape with one or more base
//! tables replaced by their delta tables over a time interval. [`Slot`]
//! captures the per-position binding; [`PropQuery`] is the full pattern.
//!
//! Realizability: a query result `Q^V_τ` is *realizable at `t_x`* iff every
//! base slot is seen at `t_x` and every delta slot's interval ends at or
//! before `t_x`. A real (serializable) transaction can only ever produce
//! realizable results — the whole point of compensation is to express the
//! unrealizable results the synchronous methods need as combinations of
//! realizable ones.

use rolljoin_common::{Csn, TimeInterval};
use std::fmt;

/// Binding of one view slot within a propagation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The base table `R^i` (seen at the query's execution time).
    Base,
    /// The delta `R^i_{a,b}` over `(a, b]`.
    Delta(TimeInterval),
}

impl Slot {
    /// True iff this slot is a delta binding.
    pub fn is_delta(&self) -> bool {
        matches!(self, Slot::Delta(_))
    }
}

/// A propagation-query pattern: one binding per view slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropQuery {
    pub slots: Vec<Slot>,
}

impl PropQuery {
    /// All-base pattern (the view definition itself).
    pub fn all_base(n: usize) -> Self {
        PropQuery {
            slots: vec![Slot::Base; n],
        }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Number of delta slots.
    pub fn delta_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_delta()).count()
    }

    /// A *forward query* replaces exactly one base table by its delta
    /// (paper §3.2 footnote); queries with more than one delta slot are
    /// compensation queries.
    pub fn is_forward(&self) -> bool {
        self.delta_count() == 1
    }

    /// True iff every slot is a delta (realizable at any time after the
    /// latest interval end).
    pub fn is_all_delta(&self) -> bool {
        self.slots.iter().all(Slot::is_delta)
    }

    /// Latest delta-interval end, if any delta slot exists.
    pub fn max_delta_hi(&self) -> Option<Csn> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Delta(iv) => Some(iv.hi),
                Slot::Base => None,
            })
            .max()
    }

    /// Replace slot `i` with a delta binding.
    pub fn with_delta(&self, i: usize, interval: TimeInterval) -> PropQuery {
        let mut slots = self.slots.clone();
        slots[i] = Slot::Delta(interval);
        PropQuery { slots }
    }

    /// Paper §2's realizability predicate: given the vector timestamp `τ`
    /// (a time for each **base** slot; delta-slot entries are ignored), the
    /// result `Q_τ` is realizable at `t_x` iff `τ[i] = t_x` for every base
    /// slot and every delta interval ends at or before `t_x`.
    pub fn realizable_at(&self, tau: &[Csn], t_x: Csn) -> bool {
        self.slots.iter().enumerate().all(|(i, s)| match s {
            Slot::Base => tau[i] == t_x,
            Slot::Delta(iv) => iv.hi <= t_x,
        })
    }

    /// Is there *any* time at which `Q_τ` is realizable? (`None` when the
    /// base-slot times disagree or precede a delta interval's end.)
    pub fn realizable(&self, tau: &[Csn]) -> Option<Csn> {
        let base_times: Vec<Csn> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_delta())
            .map(|(i, _)| tau[i])
            .collect();
        match base_times.first() {
            Some(&t) => {
                if base_times.iter().all(|&x| x == t) && self.realizable_at(tau, t) {
                    Some(t)
                } else {
                    None
                }
            }
            None => {
                // All-delta queries are realizable at any time after the
                // latest interval end.
                self.max_delta_hi()
            }
        }
    }

    /// Render like the paper: `R1(a,b] ⋈ R2 ⋈ R3`.
    pub fn display(&self, names: &[String]) -> String {
        let parts: Vec<String> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let name = names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("R{}", i + 1));
                match s {
                    Slot::Base => name,
                    Slot::Delta(iv) => format!("{name}{iv}"),
                }
            })
            .collect();
        parts.join(" ⋈ ")
    }
}

impl fmt::Display for PropQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Csn, b: Csn) -> TimeInterval {
        TimeInterval::new(a, b)
    }

    #[test]
    fn forward_and_all_delta_classification() {
        let q = PropQuery::all_base(3).with_delta(1, iv(0, 5));
        assert!(q.is_forward());
        assert!(!q.is_all_delta());
        let q = q.with_delta(0, iv(0, 5)).with_delta(2, iv(2, 5));
        assert_eq!(q.delta_count(), 3);
        assert!(q.is_all_delta());
        assert_eq!(q.max_delta_hi(), Some(5));
    }

    #[test]
    fn paper_realizability_examples() {
        // §2's examples (t_a < t_b < t_c), three-way view:
        // R1_{a,b} ⋈ R2_{a,b} ⋈ R3 is realizable at t_b and only t_b.
        let (a, b, c) = (1, 2, 3);
        let q = PropQuery::all_base(3)
            .with_delta(0, iv(a, b))
            .with_delta(1, iv(a, b));
        assert!(q.realizable_at(&[0, 0, b], b));
        // The *result* with R3 seen at t_b is realizable only at t_b:
        assert!(!q.realizable_at(&[0, 0, b], c));
        assert_eq!(q.realizable(&[0, 0, b]), Some(b));
        // …R1 ⋈ R2_{a,b} ⋈ R3 with R1 at t_a, R3 at t_c is not realizable:
        let q = PropQuery::all_base(3).with_delta(1, iv(a, b));
        assert_eq!(
            q.realizable(&[a, 0, c]),
            None,
            "bases seen at different times"
        );
        // R1 ⋈ R2_{a,b} ⋈ R3 with both bases at t_a (< t_b) is not realizable:
        assert_eq!(
            q.realizable(&[a, 0, a]),
            None,
            "bases precede the delta's end"
        );
        // with both bases at t_b it is realizable, at t_b:
        assert_eq!(q.realizable(&[b, 0, b]), Some(b));
    }

    #[test]
    fn all_delta_realizable_after_latest_end() {
        let q = PropQuery::all_base(2)
            .with_delta(0, iv(1, 4))
            .with_delta(1, iv(2, 6));
        assert_eq!(q.realizable(&[0, 0]), Some(6));
        assert!(q.realizable_at(&[0, 0], 6));
        assert!(q.realizable_at(&[0, 0], 100));
        assert!(!q.realizable_at(&[0, 0], 5));
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = PropQuery::all_base(2).with_delta(0, iv(2, 5));
        assert_eq!(q.display(&["R1".into(), "R2".into()]), "R1(2,5] ⋈ R2");
    }
}
