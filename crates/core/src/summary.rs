//! Summary-delta aggregation views (paper §2/§6 extension).
//!
//! "Rolling propagation … can also be extended to accommodate
//! select-project-join views with aggregation by using summary delta
//! tables, as described in \[8\]" (Mumick, Quass, Mumick — *Maintenance of
//! Data Cubes and Summary Tables in a Warehouse*). A summary-delta records
//! the net change to each group's aggregates over a time window; applying
//! it folds those changes into the aggregate table.
//!
//! [`SummaryView`] layers exactly that on top of a rolling-maintained SPJ
//! view: the underlying view's timestamped **view delta** is grouped into a
//! summary delta, which is then applied to a stored aggregate table — so
//! the aggregate view inherits asynchronous propagation and point-in-time
//! refresh for free.

use crate::execute::MaintCtx;
use rolljoin_common::{
    ColumnType, Csn, Error, Result, Schema, TableId, TimeInterval, Tuple, Value,
};
use rolljoin_storage::LockMode;
use std::collections::HashMap;

/// An aggregate function over the underlying view's output columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)` of view rows in the group.
    Count,
    /// `SUM(col)` of an integer view column.
    Sum(usize),
    /// `MIN(col)` of an integer view column. Holistic: a deletion can
    /// remove the current extreme, so changed groups are recomputed from
    /// the materialized view — which must therefore be rolled to the same
    /// target before [`SummaryView::refresh_to`].
    Min(usize),
    /// `MAX(col)`; same recompute caveat as [`AggFn::Min`].
    Max(usize),
}

impl AggFn {
    /// Algebraic aggregates fold incrementally from the delta alone;
    /// holistic ones (MIN/MAX) need the group recomputed on change.
    pub fn is_algebraic(&self) -> bool {
        matches!(self, AggFn::Count | AggFn::Sum(_))
    }

    fn source_col(&self) -> Option<usize> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(c) | AggFn::Min(c) | AggFn::Max(c) => Some(*c),
        }
    }
}

/// Aggregation shape: `GROUP BY group_by` with one or more aggregates.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// View output columns to group by.
    pub group_by: Vec<usize>,
    /// Aggregates to maintain.
    pub aggregates: Vec<AggFn>,
}

/// One group's net change over a window — an entry of a summary delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryDeltaRow {
    pub group: Tuple,
    /// Net change per aggregate (for `Count`: row-count change; for
    /// `Sum(c)`: signed sum change).
    pub changes: Vec<i64>,
}

/// A maintained aggregate view over an SPJ view's delta stream.
pub struct SummaryView {
    ctx: MaintCtx,
    spec: AggSpec,
    /// Aggregate storage: group columns, then `COUNT(*)`, then one column
    /// per aggregate.
    pub sv_table: TableId,
    mat_time: Csn,
}

impl SummaryView {
    /// Register an aggregate view over `ctx`'s view. The aggregate table is
    /// named `<view>__sv` and starts empty at the underlying view's current
    /// materialization time (normally 0; materialize through the summary
    /// view by rolling it forward).
    pub fn register(ctx: MaintCtx, spec: AggSpec) -> Result<SummaryView> {
        let out = ctx.mv.view.output_schema();
        for &g in &spec.group_by {
            if g >= out.arity() {
                return Err(Error::Invalid(format!("group-by column {g} out of range")));
            }
        }
        for agg in &spec.aggregates {
            if let Some(c) = agg.source_col() {
                if c >= out.arity() {
                    return Err(Error::Invalid(format!("aggregate column {c} out of range")));
                }
                if out.column_type(c) != ColumnType::Int {
                    return Err(Error::Invalid(format!(
                        "aggregate over non-integer column {c} ({})",
                        out.column_type(c)
                    )));
                }
            }
        }
        let mut cols: Vec<(String, ColumnType)> = spec
            .group_by
            .iter()
            .map(|&g| (out.name(g).to_string(), out.column_type(g)))
            .collect();
        cols.push(("__rows".to_string(), ColumnType::Int));
        for (k, agg) in spec.aggregates.iter().enumerate() {
            let name = match agg {
                AggFn::Count => format!("count_{k}"),
                AggFn::Sum(c) => format!("sum_{}_{k}", out.name(*c)),
                AggFn::Min(c) => format!("min_{}_{k}", out.name(*c)),
                AggFn::Max(c) => format!("max_{}_{k}", out.name(*c)),
            };
            cols.push((name, ColumnType::Int));
        }
        let sv_table = ctx
            .engine
            .create_table(&format!("{}__sv", ctx.mv.view.name), Schema::new(cols))?;
        let mat_time = ctx.mv.mat_time();
        Ok(SummaryView {
            ctx,
            spec,
            sv_table,
            mat_time,
        })
    }

    /// The time the aggregates currently reflect.
    pub fn mat_time(&self) -> Csn {
        self.mat_time
    }

    /// Compute the summary delta for `(self.mat_time, target]` from the
    /// underlying view delta (paper \[8\]'s summary-delta table).
    pub fn summary_delta(&self, target: Csn) -> Result<Vec<SummaryDeltaRow>> {
        let net = self.ctx.engine.vd_net_range(
            self.ctx.mv.vd_table,
            TimeInterval::new(self.mat_time, target),
        )?;
        let mut groups: HashMap<Tuple, Vec<i64>> = HashMap::new();
        // Slot 0 tracks the row count; aggregates follow.
        let width = 1 + self.spec.aggregates.len();
        for (tuple, count) in net {
            let key = tuple.project(&self.spec.group_by);
            let entry = groups.entry(key).or_insert_with(|| vec![0; width]);
            entry[0] += count;
            for (k, agg) in self.spec.aggregates.iter().enumerate() {
                entry[k + 1] += match agg {
                    AggFn::Count => count,
                    AggFn::Sum(c) => {
                        let v = tuple.get(*c);
                        match v {
                            Value::Int(x) => count * x,
                            Value::Null => 0,
                            other => {
                                return Err(Error::Internal(format!(
                                    "SUM over non-integer value {other}"
                                )))
                            }
                        }
                    }
                    // Holistic: the per-group value is recomputed during
                    // refresh; the delta entry just marks the group dirty.
                    AggFn::Min(_) | AggFn::Max(_) => 0,
                };
            }
        }
        let mut rows: Vec<SummaryDeltaRow> = groups
            .into_iter()
            .filter(|(_, changes)| changes.iter().any(|&c| c != 0))
            .map(|(group, changes)| SummaryDeltaRow { group, changes })
            .collect();
        rows.sort_by(|a, b| a.group.cmp(&b.group));
        Ok(rows)
    }

    /// Roll the aggregate table forward to `target ≤` the underlying
    /// view-delta HWM, folding the summary delta into the stored groups.
    pub fn refresh_to(&mut self, target: Csn) -> Result<usize> {
        if target < self.mat_time {
            return Err(Error::RollBackward {
                requested: target,
                current: self.mat_time,
            });
        }
        if target > self.ctx.mv.hwm() {
            return Err(Error::BeyondHighWaterMark {
                requested: target,
                hwm: self.ctx.mv.hwm(),
            });
        }
        let holistic = self.spec.aggregates.iter().any(|a| !a.is_algebraic());
        if holistic && self.ctx.mv.mat_time() != target {
            return Err(Error::Invalid(format!(
                "MIN/MAX aggregates need the materialized view rolled to the \
                 refresh target first (mv at {}, target {target})",
                self.ctx.mv.mat_time()
            )));
        }
        let sd = self.summary_delta(target)?;
        let mut txn = self.ctx.engine.begin();
        txn.lock(self.ctx.mv.vd_table, LockMode::Shared)?;
        if holistic {
            txn.lock(self.ctx.mv.mv_table, LockMode::Shared)?;
        }
        txn.lock(self.sv_table, LockMode::Exclusive)?;
        // For holistic recompute: the rolled view's rows grouped by key.
        let mv_groups: HashMap<Tuple, Vec<(Tuple, i64)>> = if holistic {
            let mut m: HashMap<Tuple, Vec<(Tuple, i64)>> = HashMap::new();
            for (tuple, count) in txn.scan_counts(self.ctx.mv.mv_table)? {
                m.entry(tuple.project(&self.spec.group_by))
                    .or_default()
                    .push((tuple, count));
            }
            m
        } else {
            HashMap::new()
        };
        // Index current groups.
        let gcols: Vec<usize> = (0..self.spec.group_by.len()).collect();
        let current: HashMap<Tuple, Tuple> = txn
            .scan(self.sv_table)?
            .into_iter()
            .map(|row| (row.project(&gcols), row))
            .collect();
        let changed = sd.len();
        for row in sd {
            let (mut rows_cnt, mut aggs): (i64, Vec<i64>) = match current.get(&row.group) {
                Some(old) => {
                    let base = self.spec.group_by.len();
                    let rows_cnt = old
                        .get(base)
                        .as_int()
                        .ok_or_else(|| Error::Internal("bad __rows".into()))?;
                    let aggs = (0..self.spec.aggregates.len())
                        .map(|k| {
                            old.get(base + 1 + k)
                                .as_int()
                                .ok_or_else(|| Error::Internal("bad agg".into()))
                        })
                        .collect::<Result<Vec<i64>>>()?;
                    txn.delete_one(self.sv_table, old)?;
                    (rows_cnt, aggs)
                }
                None => (0, vec![0; self.spec.aggregates.len()]),
            };
            rows_cnt += row.changes[0];
            for (k, a) in aggs.iter_mut().enumerate() {
                *a += row.changes[k + 1];
            }
            if rows_cnt < 0 {
                return Err(Error::Internal(format!(
                    "group {} fell below zero rows",
                    row.group
                )));
            }
            if rows_cnt > 0 {
                // Recompute holistic aggregates for the dirty group from
                // the rolled view.
                for (k, agg) in self.spec.aggregates.iter().enumerate() {
                    let (col, is_min) = match agg {
                        AggFn::Min(c) => (*c, true),
                        AggFn::Max(c) => (*c, false),
                        _ => continue,
                    };
                    let members = mv_groups.get(&row.group).ok_or_else(|| {
                        Error::Internal(format!(
                            "group {} has {rows_cnt} rows but is absent from the view",
                            row.group
                        ))
                    })?;
                    let vals = members.iter().filter_map(|(t, _)| t.get(col).as_int());
                    aggs[k] = if is_min { vals.min() } else { vals.max() }
                        .ok_or_else(|| Error::Internal("empty group extremes".into()))?;
                }
                let mut values: Vec<Value> = row.group.values().to_vec();
                values.push(Value::Int(rows_cnt));
                values.extend(aggs.into_iter().map(Value::Int));
                txn.insert(self.sv_table, Tuple::from(values))?;
            }
        }
        txn.commit()?;
        self.mat_time = target;
        Ok(changed)
    }

    /// Current aggregate state: group → (row count, aggregate values).
    pub fn state(&self) -> Result<HashMap<Tuple, (i64, Vec<i64>)>> {
        let mut txn = self.ctx.engine.begin();
        let rows = txn.scan(self.sv_table)?;
        txn.commit()?;
        let gcols: Vec<usize> = (0..self.spec.group_by.len()).collect();
        let base = self.spec.group_by.len();
        rows.into_iter()
            .map(|row| {
                let key = row.project(&gcols);
                let cnt = row
                    .get(base)
                    .as_int()
                    .ok_or_else(|| Error::Internal("bad __rows".into()))?;
                let aggs = (0..self.spec.aggregates.len())
                    .map(|k| {
                        row.get(base + 1 + k)
                            .as_int()
                            .ok_or_else(|| Error::Internal("bad agg".into()))
                    })
                    .collect::<Result<Vec<i64>>>()?;
                Ok((key, (cnt, aggs)))
            })
            .collect()
    }
}
