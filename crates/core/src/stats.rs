//! Maintenance statistics.
//!
//! Every propagation query reports what it read and wrote; the experiment
//! harness compares algorithms (Propagate vs. RollingPropagate vs. the
//! synchronous baselines) by these counters.

use std::sync::atomic::{AtomicU64, Ordering};

pub use rolljoin_storage::{
    CompactionStats, GranStatsSnapshot, LockStatsSnapshot, WAIT_HIST_BUCKETS,
};

/// Counters accumulated by a propagation process.
#[derive(Default)]
pub struct PropStats {
    /// Forward queries executed (exactly one delta slot, sign +1, issued
    /// directly by `Propagate`/`RollingPropagate`).
    pub forward_queries: AtomicU64,
    /// Compensation queries executed (issued by `ComputeDelta` recursion or
    /// the rolling compensation loop).
    pub comp_queries: AtomicU64,
    /// Rows fetched from base-table slots.
    pub base_rows_read: AtomicU64,
    /// Rows fetched from delta-range slots.
    pub delta_rows_read: AtomicU64,
    /// Rows written into the view delta table.
    pub vd_rows_written: AtomicU64,
    /// Total propagation transactions committed.
    pub transactions: AtomicU64,
    /// Largest number of rows read by any single propagation transaction —
    /// the per-transaction "size" the interval knob controls (paper §3.3).
    pub max_txn_rows: AtomicU64,
    /// Delta-range fetches served from the step-scoped scan cache.
    pub scan_cache_hits: AtomicU64,
    /// Delta-range fetches that materialized fresh rows.
    pub scan_cache_misses: AtomicU64,
    /// Rows served from the scan cache instead of re-materializing.
    pub scan_cache_rows: AtomicU64,
    /// Raw delta rows that entered scan-level φ-compaction (cache misses
    /// with [`crate::policy::CompactionPolicy::compact_on_scan`] set).
    pub compact_rows_in: AtomicU64,
    /// Rows eliminated by scan-level φ-compaction before any join, build
    /// side, or cache entry saw them.
    pub compact_rows_saved: AtomicU64,
    /// Total nanoseconds workers spent executing queries (summed across
    /// workers; divide by elapsed wall time for average busy workers).
    pub worker_busy_nanos: AtomicU64,
    /// Total per-query wall-clock nanoseconds (lock wait + fetch + join +
    /// commit), summed over all queries.
    pub query_wall_nanos: AtomicU64,
    /// Nanoseconds propagation transactions spent blocked on locks,
    /// summed over all committed queries — the portion of
    /// `query_wall_nanos` that is contention, not work. Per-granularity
    /// breakdowns (table vs stripe, with wait-time histograms) live on
    /// the engine's lock manager: `engine.locks().stats().snapshot_full()`.
    pub lock_wait_nanos: AtomicU64,
    /// Deepest the worker's pending-unit queue ever got.
    pub max_queue_depth: AtomicU64,
    /// Pending delta slots the planner resolved by a keyed delta-index
    /// probe (per-key posting slices) instead of a full range scan.
    pub delta_probe_decisions: AtomicU64,
    /// Pending delta slots that fell back to a full range scan (no index,
    /// or the posting-length estimate said probing wouldn't pay).
    pub delta_scan_decisions: AtomicU64,
    /// Rows fetched through keyed delta-index probes.
    pub delta_probe_rows: AtomicU64,
}

/// A point-in-time copy of [`PropStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropStatsSnapshot {
    pub forward_queries: u64,
    pub comp_queries: u64,
    pub base_rows_read: u64,
    pub delta_rows_read: u64,
    pub vd_rows_written: u64,
    pub transactions: u64,
    pub max_txn_rows: u64,
    pub scan_cache_hits: u64,
    pub scan_cache_misses: u64,
    pub scan_cache_rows: u64,
    pub compact_rows_in: u64,
    pub compact_rows_saved: u64,
    pub worker_busy_nanos: u64,
    pub query_wall_nanos: u64,
    pub lock_wait_nanos: u64,
    pub max_queue_depth: u64,
    pub delta_probe_decisions: u64,
    pub delta_scan_decisions: u64,
    pub delta_probe_rows: u64,
}

impl PropStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_query(
        &self,
        is_forward: bool,
        base_rows: u64,
        delta_rows: u64,
        rows_out: u64,
    ) {
        if is_forward {
            self.forward_queries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.comp_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.base_rows_read.fetch_add(base_rows, Ordering::Relaxed);
        self.delta_rows_read
            .fetch_add(delta_rows, Ordering::Relaxed);
        self.vd_rows_written.fetch_add(rows_out, Ordering::Relaxed);
        self.transactions.fetch_add(1, Ordering::Relaxed);
        self.max_txn_rows
            .fetch_max(base_rows + delta_rows, Ordering::Relaxed);
    }

    /// Record one scan-cache lookup outcome.
    pub(crate) fn record_scan_cache(&self, hit: bool, rows: u64) {
        if hit {
            self.scan_cache_hits.fetch_add(1, Ordering::Relaxed);
            self.scan_cache_rows.fetch_add(rows, Ordering::Relaxed);
        } else {
            self.scan_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one scan-level φ-compaction: `raw` rows materialized,
    /// `served` survived into the cache entry.
    pub(crate) fn record_scan_compaction(&self, raw: u64, served: u64) {
        self.compact_rows_in.fetch_add(raw, Ordering::Relaxed);
        self.compact_rows_saved
            .fetch_add(raw.saturating_sub(served), Ordering::Relaxed);
    }

    /// Record one query's wall-clock time.
    pub(crate) fn record_query_wall(&self, nanos: u64) {
        self.query_wall_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one query's time blocked on locks.
    pub(crate) fn record_lock_wait(&self, nanos: u64) {
        self.lock_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one worker's busy time for a batch of executions.
    pub(crate) fn record_worker_busy(&self, nanos: u64) {
        self.worker_busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record the pending-queue depth observed before a round.
    pub(crate) fn record_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one delta-slot planner decision: a keyed index probe that
    /// fetched `rows`, or a full range scan (`rows` ignored).
    pub(crate) fn record_delta_decision(&self, probed: bool, rows: u64) {
        if probed {
            self.delta_probe_decisions.fetch_add(1, Ordering::Relaxed);
            self.delta_probe_rows.fetch_add(rows, Ordering::Relaxed);
        } else {
            self.delta_scan_decisions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> PropStatsSnapshot {
        PropStatsSnapshot {
            forward_queries: self.forward_queries.load(Ordering::Relaxed),
            comp_queries: self.comp_queries.load(Ordering::Relaxed),
            base_rows_read: self.base_rows_read.load(Ordering::Relaxed),
            delta_rows_read: self.delta_rows_read.load(Ordering::Relaxed),
            vd_rows_written: self.vd_rows_written.load(Ordering::Relaxed),
            transactions: self.transactions.load(Ordering::Relaxed),
            max_txn_rows: self.max_txn_rows.load(Ordering::Relaxed),
            scan_cache_hits: self.scan_cache_hits.load(Ordering::Relaxed),
            scan_cache_misses: self.scan_cache_misses.load(Ordering::Relaxed),
            scan_cache_rows: self.scan_cache_rows.load(Ordering::Relaxed),
            compact_rows_in: self.compact_rows_in.load(Ordering::Relaxed),
            compact_rows_saved: self.compact_rows_saved.load(Ordering::Relaxed),
            worker_busy_nanos: self.worker_busy_nanos.load(Ordering::Relaxed),
            query_wall_nanos: self.query_wall_nanos.load(Ordering::Relaxed),
            lock_wait_nanos: self.lock_wait_nanos.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            delta_probe_decisions: self.delta_probe_decisions.load(Ordering::Relaxed),
            delta_scan_decisions: self.delta_scan_decisions.load(Ordering::Relaxed),
            delta_probe_rows: self.delta_probe_rows.load(Ordering::Relaxed),
        }
    }
}

impl PropStatsSnapshot {
    /// Total queries of both kinds.
    pub fn total_queries(&self) -> u64 {
        self.forward_queries + self.comp_queries
    }

    /// Total rows read from any slot.
    pub fn total_rows_read(&self) -> u64 {
        self.base_rows_read + self.delta_rows_read
    }

    /// Fraction of raw delta rows eliminated by scan-level φ-compaction,
    /// in `[0, 1]`; `0` when compaction never ran.
    pub fn scan_compaction_save_rate(&self) -> f64 {
        if self.compact_rows_in == 0 {
            0.0
        } else {
            self.compact_rows_saved as f64 / self.compact_rows_in as f64
        }
    }

    /// Fraction of delta-slot planner decisions that chose a keyed index
    /// probe, in `[0, 1]`; `0` when no pending delta slot was ever planned.
    pub fn delta_probe_rate(&self) -> f64 {
        let total = self.delta_probe_decisions + self.delta_scan_decisions;
        if total == 0 {
            0.0
        } else {
            self.delta_probe_decisions as f64 / total as f64
        }
    }

    /// Scan-cache hit fraction in `[0, 1]`; `0` when never consulted.
    pub fn scan_cache_hit_rate(&self) -> f64 {
        let total = self.scan_cache_hits + self.scan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.scan_cache_hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (self − earlier). Saturating: the two
    /// snapshots are not taken atomically, and background actors (the
    /// compaction driver, propagation workers) keep advancing counters
    /// between the individual loads — so a counter read for `earlier` can
    /// race past the value read for `self`. Clamping at zero keeps such
    /// races from wrapping to `u64::MAX`-sized "diffs".
    pub fn since(&self, earlier: &PropStatsSnapshot) -> PropStatsSnapshot {
        PropStatsSnapshot {
            forward_queries: self.forward_queries.saturating_sub(earlier.forward_queries),
            comp_queries: self.comp_queries.saturating_sub(earlier.comp_queries),
            base_rows_read: self.base_rows_read.saturating_sub(earlier.base_rows_read),
            delta_rows_read: self.delta_rows_read.saturating_sub(earlier.delta_rows_read),
            vd_rows_written: self.vd_rows_written.saturating_sub(earlier.vd_rows_written),
            transactions: self.transactions.saturating_sub(earlier.transactions),
            max_txn_rows: self.max_txn_rows, // high-water, not differenced
            scan_cache_hits: self.scan_cache_hits.saturating_sub(earlier.scan_cache_hits),
            scan_cache_misses: self
                .scan_cache_misses
                .saturating_sub(earlier.scan_cache_misses),
            scan_cache_rows: self.scan_cache_rows.saturating_sub(earlier.scan_cache_rows),
            compact_rows_in: self.compact_rows_in.saturating_sub(earlier.compact_rows_in),
            compact_rows_saved: self
                .compact_rows_saved
                .saturating_sub(earlier.compact_rows_saved),
            worker_busy_nanos: self
                .worker_busy_nanos
                .saturating_sub(earlier.worker_busy_nanos),
            query_wall_nanos: self
                .query_wall_nanos
                .saturating_sub(earlier.query_wall_nanos),
            lock_wait_nanos: self.lock_wait_nanos.saturating_sub(earlier.lock_wait_nanos),
            max_queue_depth: self.max_queue_depth, // high-water, not differenced
            delta_probe_decisions: self
                .delta_probe_decisions
                .saturating_sub(earlier.delta_probe_decisions),
            delta_scan_decisions: self
                .delta_scan_decisions
                .saturating_sub(earlier.delta_scan_decisions),
            delta_probe_rows: self
                .delta_probe_rows
                .saturating_sub(earlier.delta_probe_rows),
        }
    }
}

/// Store-level φ-compaction totals for one maintained view: the base
/// delta stores (merged) plus the view delta store. Produced by
/// [`crate::execute::MaintCtx::compaction_report`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionReport {
    /// Merged counters of every base table's delta store.
    pub base: CompactionStats,
    /// Counters of the view delta store.
    pub vd: CompactionStats,
}

impl CompactionReport {
    /// Total records physically removed across all stores.
    pub fn rows_removed(&self) -> u64 {
        self.base.rows_removed() + self.vd.rows_removed()
    }

    /// Total estimated heap bytes reclaimed across all stores.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.base.bytes_reclaimed + self.vd.bytes_reclaimed
    }
}

/// One-line lock-wait breakdown of a per-granularity lock snapshot, for
/// propagation summaries and the E17 report: waits/timeouts/mean wait at
/// each granularity.
pub fn format_lock_breakdown(s: &LockStatsSnapshot) -> String {
    format!(
        "lock waits: table {} ({} timeouts, mean {:?}) | stripe {} ({} timeouts, mean {:?})",
        s.table.waits,
        s.table.timeouts,
        s.table.mean_wait(),
        s.stripe.waits,
        s.stripe.timeouts,
        s.stripe.mean_wait(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = PropStats::new();
        s.record_query(true, 10, 5, 3);
        s.record_query(false, 0, 7, 2);
        let snap = s.snapshot();
        assert_eq!(snap.forward_queries, 1);
        assert_eq!(snap.comp_queries, 1);
        assert_eq!(snap.total_queries(), 2);
        assert_eq!(snap.base_rows_read, 10);
        assert_eq!(snap.delta_rows_read, 12);
        assert_eq!(snap.total_rows_read(), 22);
        assert_eq!(snap.vd_rows_written, 5);
        assert_eq!(snap.transactions, 2);
    }

    #[test]
    fn since_subtracts() {
        let s = PropStats::new();
        s.record_query(true, 1, 1, 1);
        let a = s.snapshot();
        s.record_query(false, 2, 2, 2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.comp_queries, 1);
        assert_eq!(d.forward_queries, 0);
        assert_eq!(d.base_rows_read, 2);
    }

    #[test]
    fn since_saturates_when_earlier_raced_ahead() {
        // Snapshots are not atomic: a background compactor or worker can
        // advance counters between the field loads of two snapshots, so
        // the "earlier" one may hold larger values on some fields. The
        // diff must clamp at zero, never wrap.
        let earlier = PropStatsSnapshot {
            comp_queries: 10,
            compact_rows_in: 500,
            compact_rows_saved: 400,
            worker_busy_nanos: 9_999,
            ..Default::default()
        };
        let later = PropStatsSnapshot {
            comp_queries: 8, // raced: read before earlier's load completed
            compact_rows_in: 650,
            compact_rows_saved: 390,
            worker_busy_nanos: 0,
            ..Default::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.comp_queries, 0, "clamped, not wrapped");
        assert_eq!(d.compact_rows_in, 150);
        assert_eq!(d.compact_rows_saved, 0);
        assert_eq!(d.worker_busy_nanos, 0);
    }

    #[test]
    fn gran_since_saturates_too() {
        let mut earlier = GranStatsSnapshot {
            waits: 5,
            ..Default::default()
        };
        earlier.wait_hist_us[2] = 3;
        let mut later = GranStatsSnapshot {
            waits: 4,
            acquisitions: 9,
            ..Default::default()
        };
        later.wait_hist_us[2] = 2;
        let d = later.since(&earlier);
        assert_eq!(d.waits, 0);
        assert_eq!(d.wait_hist_us[2], 0);
        assert_eq!(d.acquisitions, 9);
    }

    #[test]
    fn lock_breakdown_golden_string() {
        // Synthetic snapshot with round nanosecond totals so the Duration
        // Debug rendering is stable.
        let mut s = LockStatsSnapshot::default();
        s.table.waits = 2;
        s.table.timeouts = 1;
        s.table.wait_nanos = 2_000_000; // mean 1ms
        s.stripe.waits = 4;
        s.stripe.timeouts = 0;
        s.stripe.wait_nanos = 2_000; // mean 500ns
        assert_eq!(
            format_lock_breakdown(&s),
            "lock waits: table 2 (1 timeouts, mean 1ms) | stripe 4 (0 timeouts, mean 500ns)"
        );
        assert_eq!(
            format_lock_breakdown(&LockStatsSnapshot::default()),
            "lock waits: table 0 (0 timeouts, mean 0ns) | stripe 0 (0 timeouts, mean 0ns)"
        );
    }

    #[test]
    fn scan_compaction_counters_and_rate() {
        let s = PropStats::new();
        assert_eq!(s.snapshot().scan_compaction_save_rate(), 0.0);
        s.record_scan_compaction(10, 4);
        s.record_scan_compaction(2, 2);
        let snap = s.snapshot();
        assert_eq!(snap.compact_rows_in, 12);
        assert_eq!(snap.compact_rows_saved, 6);
        assert_eq!(snap.scan_compaction_save_rate(), 0.5);
    }

    #[test]
    fn delta_decision_counters_and_rate() {
        let s = PropStats::new();
        assert_eq!(s.snapshot().delta_probe_rate(), 0.0);
        s.record_delta_decision(true, 4);
        s.record_delta_decision(true, 2);
        s.record_delta_decision(false, 999);
        let snap = s.snapshot();
        assert_eq!(snap.delta_probe_decisions, 2);
        assert_eq!(snap.delta_scan_decisions, 1);
        assert_eq!(snap.delta_probe_rows, 6);
        assert!((snap.delta_probe_rate() - 2.0 / 3.0).abs() < 1e-9);
        let d = snap.since(&PropStatsSnapshot::default());
        assert_eq!(d.delta_probe_decisions, 2);
        assert_eq!(d.delta_scan_decisions, 1);
        assert_eq!(d.delta_probe_rows, 6);
    }

    #[test]
    fn lock_wait_accumulates_and_formats() {
        let s = PropStats::new();
        s.record_lock_wait(1_500);
        s.record_lock_wait(500);
        assert_eq!(s.snapshot().lock_wait_nanos, 2_000);
        let line = format_lock_breakdown(&LockStatsSnapshot::default());
        assert!(line.contains("table 0"));
        assert!(line.contains("stripe 0"));
    }
}
