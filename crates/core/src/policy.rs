//! Propagation-interval policies (paper §3.3–3.4).
//!
//! "The interval acts as a parameter that can be tuned to balance query
//! execution overhead against data contention" — and `RollingPropagate`'s
//! whole point is that each relation gets its **own** interval, so a cold
//! dimension table can be swept in wide strides while a hot fact table is
//! processed in many small transactions. An [`IntervalPolicy`] encapsulates
//! that choice.

use crate::execute::MaintCtx;
use rolljoin_common::{Csn, Result};
use rolljoin_storage::LockGranularity;
use std::time::Duration;

/// When delta streams are φ-compacted (net-effect reduced) ahead of
/// consumption. φ is linear over SPJ propagation (paper Lemma 4.2), so
/// collapsing same-tuple churn *before* it reaches a join, a cache, or
/// the store itself changes no net effect — only how many rows carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicy {
    /// Never compact (seed behavior).
    #[default]
    Off,
    /// φ-reduce freshly materialized delta ranges before they enter the
    /// scan cache, so joins, build sides, and cache memory all see net
    /// churn instead of raw churn.
    OnScan,
    /// Everything [`CompactionPolicy::OnScan`] does, plus a background
    /// compactor ([`crate::driver::spawn_compaction_driver`]) that
    /// rewrites store history below the global LWM in place whenever a
    /// store holds at least this many records.
    Background(usize),
}

impl CompactionPolicy {
    /// Should freshly materialized delta ranges be φ-reduced at scan time?
    /// `Background` subsumes `OnScan` — it is the strictly stronger policy.
    pub fn compact_on_scan(&self) -> bool {
        !matches!(self, CompactionPolicy::Off)
    }

    /// The store-size threshold for the background compactor, if any.
    pub fn background_threshold(&self) -> Option<usize> {
        match self {
            CompactionPolicy::Background(t) => Some(*t),
            _ => None,
        }
    }
}

/// Executor tuning knobs, separate from the interval policy: the interval
/// decides *what* each step covers, these decide *how* the step's queries
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecTuning {
    /// Worker threads for the parallel propagation executor. `1` keeps the
    /// original sequential `DeltaWorker` path; `> 1` runs independent
    /// constituent queries concurrently, each as its own strict-2PL
    /// transaction.
    pub workers: usize,
    /// Index-probe-vs-scan pushdown threshold: probe an indexed base slot
    /// only while `delta keys × ratio < distinct table keys`; otherwise
    /// scan. Larger values scan sooner.
    pub probe_scan_ratio: usize,
    /// Let delta slots participate in the keyed probe cascade: a pending
    /// `σ_{a,b}(Δ^R)` slot whose join column carries a keyed time-range
    /// index is probed by an already-fetched neighbor's keys instead of
    /// range-scanned. Off reproduces the fetch-every-delta-range-first
    /// behavior.
    pub delta_probe: bool,
    /// Probe-vs-scan threshold for delta slots. Unlike the base-side
    /// heuristic (key count × ratio vs distinct keys), the delta side has
    /// an *exact* matching-row count from posting-list slice lengths, so
    /// the rule is `estimated rows × ratio < range rows`. Larger values
    /// scan sooner; `1` probes whenever the keyed slice is strictly
    /// smaller than the range.
    pub delta_probe_ratio: usize,
    /// Lock granularity for base-table reads and writes. `Table` is the
    /// seed behavior (whole-table S/X); `Striped(n)` takes intention
    /// locks at the table plus S/X on `hash(key) % n` stripes, so keyed
    /// probes conflict only with updaters of colliding keys. Applied to
    /// the engine by [`MaintCtx::with_tuning`] — set it before concurrent
    /// activity starts.
    pub lock_granularity: LockGranularity,
    /// Early φ-compaction of delta streams (scan-level and/or store-level).
    /// `Off` is the seed behavior: every raw change record flows through
    /// every join.
    pub compaction: CompactionPolicy,
    /// How much observability the maintenance paths record: `Off` (the
    /// default — instrumented paths reduce to a few atomic loads),
    /// `Metrics` (counters/gauges/histograms), or `Full` (metrics plus
    /// span tracing and the propagation journal). Applied to the context
    /// by [`MaintCtx::with_tuning`].
    pub obs: rolljoin_obs::ObsConfig,
}

impl Default for ExecTuning {
    fn default() -> Self {
        ExecTuning {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            probe_scan_ratio: 4,
            delta_probe: true,
            delta_probe_ratio: 1,
            lock_granularity: LockGranularity::Table,
            compaction: CompactionPolicy::Off,
            obs: rolljoin_obs::ObsConfig::Off,
        }
    }
}

impl ExecTuning {
    /// Sequential tuning (one worker, default pushdown threshold).
    pub fn sequential() -> Self {
        ExecTuning {
            workers: 1,
            ..Self::default()
        }
    }

    /// Set the worker count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the probe-vs-scan threshold (clamped to ≥ 1).
    pub fn with_probe_scan_ratio(mut self, ratio: usize) -> Self {
        self.probe_scan_ratio = ratio.max(1);
        self
    }

    /// Enable or disable keyed delta-index probing of delta slots.
    pub fn with_delta_probe(mut self, on: bool) -> Self {
        self.delta_probe = on;
        self
    }

    /// Set the delta-slot probe-vs-scan threshold (clamped to ≥ 1).
    pub fn with_delta_probe_ratio(mut self, ratio: usize) -> Self {
        self.delta_probe_ratio = ratio.max(1);
        self
    }

    /// Set the lock granularity.
    pub fn with_lock_granularity(mut self, g: LockGranularity) -> Self {
        self.lock_granularity = g;
        self
    }

    /// Set the φ-compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Set the observability level.
    pub fn with_obs(mut self, obs: rolljoin_obs::ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

/// Chooses the width (in CSNs) of the next forward query for a relation.
pub trait IntervalPolicy: Send {
    /// Pick a width for relation `rel`'s next forward query starting at
    /// `from`, given that `available` CSNs of history exist past `from`.
    /// Must return a value in `1..=available` (callers guarantee
    /// `available ≥ 1`).
    fn choose(&mut self, ctx: &MaintCtx, rel: usize, from: Csn, available: u64) -> Result<u64>;

    /// Feedback after a step: the chosen `width` for `rel` took `took`
    /// wall time (forward query plus compensation). Default: ignored.
    fn observe(&mut self, rel: usize, width: u64, took: Duration) {
        let _ = (rel, width, took);
    }
}

/// The same fixed width for every relation — with this policy,
/// `RollingPropagate` degenerates to `Propagate`'s uniform stepping.
pub struct UniformInterval(pub u64);

impl IntervalPolicy for UniformInterval {
    fn choose(&mut self, _ctx: &MaintCtx, _rel: usize, _from: Csn, available: u64) -> Result<u64> {
        Ok(self.0.clamp(1, available))
    }
}

/// A fixed width per relation (paper §3.4: "a different interval … for
/// each base table", its `n` independent tunables).
pub struct PerRelationInterval(pub Vec<u64>);

impl IntervalPolicy for PerRelationInterval {
    fn choose(&mut self, _ctx: &MaintCtx, rel: usize, _from: Csn, available: u64) -> Result<u64> {
        Ok(self.0[rel].clamp(1, available))
    }
}

/// Adaptive: widen the interval until it contains about `target_rows`
/// change records for the relation (or the available history runs out).
/// This directly bounds forward-query transaction size regardless of how
/// update rates differ across tables — the tuning knob the paper motivates
/// with the star-schema example.
pub struct TargetRows {
    pub target_rows: usize,
}

impl IntervalPolicy for TargetRows {
    fn choose(&mut self, ctx: &MaintCtx, rel: usize, from: Csn, available: u64) -> Result<u64> {
        let table = ctx.mv.view.bases[rel];
        let store = ctx.engine.delta_store(table)?;
        match store.nth_ts_after(from, self.target_rows) {
            Some(ts) if ts > from && ts - from <= available => Ok(ts - from),
            _ => Ok(available),
        }
    }
}

/// Adaptive control loop on *observed step latency*: multiplicatively
/// shrinks the interval when a step exceeds the latency budget and grows
/// it when steps run well under — so maintenance transactions stay short
/// (the paper's contention goal) without hand-tuning δ per workload.
pub struct LatencyBudget {
    /// Target wall time per rolling step.
    pub budget: Duration,
    /// Hard cap on the interval width.
    pub max_width: u64,
    width: u64,
}

impl LatencyBudget {
    pub fn new(budget: Duration, max_width: u64) -> Self {
        LatencyBudget {
            budget,
            max_width: max_width.max(1),
            width: 1,
        }
    }

    /// The current adapted width (for inspection/tests).
    pub fn current_width(&self) -> u64 {
        self.width
    }
}

impl IntervalPolicy for LatencyBudget {
    fn choose(&mut self, _ctx: &MaintCtx, _rel: usize, _from: Csn, available: u64) -> Result<u64> {
        Ok(self.width.clamp(1, available))
    }

    fn observe(&mut self, _rel: usize, width: u64, took: Duration) {
        // Only adapt on steps that actually used the current width (the
        // caller may have clamped to a smaller `available`).
        if width < self.width && took <= self.budget {
            return;
        }
        if took > self.budget {
            self.width = (self.width / 2).max(1);
        } else if took < self.budget / 2 {
            self.width = (self.width * 2).min(self.max_width);
        }
    }
}

/// Always take everything available — largest transactions, fewest queries.
pub struct FullWidth;

impl IntervalPolicy for FullWidth {
    fn choose(&mut self, _ctx: &MaintCtx, _rel: usize, _from: Csn, available: u64) -> Result<u64> {
        Ok(available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::MaterializedView;
    use crate::view::ViewDef;
    use rolljoin_common::{tup, ColumnType, Schema};
    use rolljoin_relalg::JoinSpec;
    use rolljoin_storage::Engine;

    fn ctx() -> MaintCtx {
        let e = Engine::new();
        let r = e
            .create_table("r", Schema::new([("a", ColumnType::Int)]))
            .unwrap();
        let view = ViewDef::new(
            &e,
            "v",
            vec![r],
            JoinSpec {
                slot_schemas: vec![e.schema(r).unwrap()],
                equi: vec![],
                filter: None,
                projection: vec![0],
            },
        )
        .unwrap();
        let mv = MaterializedView::register(&e, view).unwrap();
        MaintCtx::new(e, mv)
    }

    #[test]
    fn exec_tuning_defaults_and_builders() {
        let t = ExecTuning::default();
        assert!((1..=4).contains(&t.workers));
        assert_eq!(t.probe_scan_ratio, 4);
        assert_eq!(ExecTuning::sequential().workers, 1);
        let t = ExecTuning::sequential()
            .with_workers(0)
            .with_probe_scan_ratio(0);
        assert_eq!(t.workers, 1);
        assert_eq!(t.probe_scan_ratio, 1);
        assert_eq!(ExecTuning::sequential().with_workers(8).workers, 8);
        assert!(t.delta_probe, "delta probing is on by default");
        assert_eq!(t.delta_probe_ratio, 1);
        let t2 = ExecTuning::sequential()
            .with_delta_probe(false)
            .with_delta_probe_ratio(0);
        assert!(!t2.delta_probe);
        assert_eq!(t2.delta_probe_ratio, 1, "ratio clamps to ≥ 1");
        assert_eq!(
            ExecTuning::sequential()
                .with_delta_probe_ratio(3)
                .delta_probe_ratio,
            3
        );
        assert_eq!(t.lock_granularity, LockGranularity::Table);
        assert_eq!(
            ExecTuning::sequential()
                .with_lock_granularity(LockGranularity::Striped(64))
                .lock_granularity,
            LockGranularity::Striped(64)
        );
        assert_eq!(t.compaction, CompactionPolicy::Off);
        assert!(!CompactionPolicy::Off.compact_on_scan());
        assert!(CompactionPolicy::OnScan.compact_on_scan());
        assert!(CompactionPolicy::Background(100).compact_on_scan());
        assert_eq!(CompactionPolicy::OnScan.background_threshold(), None);
        assert_eq!(
            ExecTuning::sequential()
                .with_compaction(CompactionPolicy::Background(512))
                .compaction
                .background_threshold(),
            Some(512)
        );
        assert_eq!(t.obs, rolljoin_obs::ObsConfig::Off);
        assert_eq!(
            ExecTuning::sequential()
                .with_obs(rolljoin_obs::ObsConfig::Full)
                .obs,
            rolljoin_obs::ObsConfig::Full
        );
    }

    #[test]
    fn uniform_clamps_to_available() {
        let c = ctx();
        let mut p = UniformInterval(10);
        assert_eq!(p.choose(&c, 0, 0, 100).unwrap(), 10);
        assert_eq!(p.choose(&c, 0, 0, 4).unwrap(), 4);
    }

    #[test]
    fn per_relation_widths() {
        let c = ctx();
        let mut p = PerRelationInterval(vec![2, 50]);
        assert_eq!(p.choose(&c, 0, 0, 100).unwrap(), 2);
        assert_eq!(p.choose(&c, 1, 0, 100).unwrap(), 50);
    }

    #[test]
    fn latency_budget_adapts_multiplicatively() {
        let mut p = LatencyBudget::new(Duration::from_millis(10), 64);
        assert_eq!(p.current_width(), 1);
        // Fast steps: grow.
        p.observe(0, 1, Duration::from_millis(1));
        assert_eq!(p.current_width(), 2);
        p.observe(0, 2, Duration::from_millis(1));
        p.observe(0, 4, Duration::from_millis(1));
        assert_eq!(p.current_width(), 8);
        // Over budget: shrink.
        p.observe(0, 8, Duration::from_millis(50));
        assert_eq!(p.current_width(), 4);
        // In the comfort band: hold.
        p.observe(0, 4, Duration::from_millis(7));
        assert_eq!(p.current_width(), 4);
        // Clamped observations under budget don't grow the width.
        p.observe(0, 1, Duration::from_millis(1));
        assert_eq!(p.current_width(), 4);
        // Cap respected.
        for _ in 0..20 {
            p.observe(0, p.current_width(), Duration::from_micros(10));
        }
        assert_eq!(p.current_width(), 64);
    }

    #[test]
    fn target_rows_sizes_to_delta_density() {
        let c = ctx();
        let r = c.mv.view.bases[0];
        // 10 commits, one row each; registration may have used CSNs
        // already, so track where our data commits begin.
        let mut first = 0;
        for i in 0..10i64 {
            let mut t = c.engine.begin();
            t.insert(r, tup![i]).unwrap();
            let csn = t.commit().unwrap();
            if i == 0 {
                first = csn;
            }
        }
        c.engine.capture_catch_up().unwrap();
        let base = first - 1;
        let mut p = TargetRows { target_rows: 3 };
        // From just before the data, the 3rd change is 3 commits later.
        assert_eq!(p.choose(&c, 0, base, 10).unwrap(), 3);
        // Only 2 rows remain after the 8th data commit → take everything.
        assert_eq!(p.choose(&c, 0, base + 8, 2).unwrap(), 2);
    }
}
