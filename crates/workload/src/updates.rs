//! Update-stream generation.
//!
//! A [`TableStream`] produces insert/delete/update transactions for one
//! table, tracking its own live tuples so every delete is valid. Streams
//! are seeded, so experiments are reproducible run to run.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolljoin_common::{Result, TableId, Tuple};
use rolljoin_storage::Engine;

/// Tuple factory used by [`TableStream`]: `(rng, sequence number) → tuple`.
pub type TupleFactory = Box<dyn FnMut(&mut StdRng, u64) -> Tuple + Send>;

/// Fractions of operation kinds; must sum to ≤ 1.0 (the remainder goes to
/// inserts).
#[derive(Debug, Clone, Copy)]
pub struct UpdateMix {
    pub delete_frac: f64,
    pub update_frac: f64,
}

impl Default for UpdateMix {
    fn default() -> Self {
        UpdateMix {
            delete_frac: 0.2,
            update_frac: 0.2,
        }
    }
}

/// One table's seeded update stream.
pub struct TableStream {
    pub table: TableId,
    rng: StdRng,
    mix: UpdateMix,
    make: TupleFactory,
    live: Vec<Tuple>,
    seq: u64,
    zipf: Option<Zipf>,
}

impl TableStream {
    /// Create a stream for `table`; `make` builds fresh tuples.
    pub fn new(
        table: TableId,
        seed: u64,
        mix: UpdateMix,
        make: impl FnMut(&mut StdRng, u64) -> Tuple + Send + 'static,
    ) -> Self {
        TableStream {
            table,
            rng: StdRng::seed_from_u64(seed),
            mix,
            make: Box::new(make),
            live: Vec::new(),
            seq: 0,
            zipf: None,
        }
    }

    /// Pick delete/update victims with Zipfian skew over the live list
    /// instead of uniformly.
    pub fn with_zipf_victims(mut self, theta: f64, domain_hint: usize) -> Self {
        self.zipf = Some(Zipf::new(domain_hint.max(1), theta));
        self
    }

    fn pick_victim(&mut self) -> Option<usize> {
        if self.live.is_empty() {
            return None;
        }
        Some(match &self.zipf {
            Some(z) => z.sample(&mut self.rng) % self.live.len(),
            None => self.rng.gen_range(0..self.live.len()),
        })
    }

    /// Apply one single-operation transaction; returns its commit CSN.
    pub fn step(&mut self, engine: &Engine) -> Result<u64> {
        let roll: f64 = self.rng.gen();
        let mut txn = engine.begin();
        if roll < self.mix.delete_frac {
            if let Some(i) = self.pick_victim() {
                let victim = self.live.swap_remove(i);
                txn.delete_one(self.table, &victim)?;
                return txn.commit();
            }
        } else if roll < self.mix.delete_frac + self.mix.update_frac {
            if let Some(i) = self.pick_victim() {
                let old = self.live[i].clone();
                self.seq += 1;
                let new = (self.make)(&mut self.rng, self.seq);
                txn.update(self.table, &old, new.clone())?;
                self.live[i] = new;
                return txn.commit();
            }
        }
        // Insert (also the fallback when there is nothing to delete/update).
        self.seq += 1;
        let t = (self.make)(&mut self.rng, self.seq);
        txn.insert(self.table, t.clone())?;
        self.live.push(t);
        txn.commit()
    }

    /// Bulk-load `n` tuples in one transaction (initial population).
    pub fn load(&mut self, engine: &Engine, n: usize) -> Result<u64> {
        let mut txn = engine.begin();
        for _ in 0..n {
            self.seq += 1;
            let t = (self.make)(&mut self.rng, self.seq);
            txn.insert(self.table, t.clone())?;
            self.live.push(t);
        }
        txn.commit()
    }

    /// Number of live tuples the stream believes exist.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

/// Convenience factory: tuples `(key_fn(seq), payload_fn(rng))` for two-int
/// tables — the shape of every experiment schema's tables.
pub fn int_pair_stream(table: TableId, seed: u64, mix: UpdateMix, key_domain: i64) -> TableStream {
    TableStream::new(table, seed, mix, move |rng, seq| {
        rolljoin_common::tup![seq as i64, rng.gen_range(0..key_domain)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::{ColumnType, Schema};

    fn engine() -> (Engine, TableId) {
        let e = Engine::new();
        let t = e
            .create_table(
                "w",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        (e, t)
    }

    #[test]
    fn stream_is_reproducible() {
        let (e1, t1) = engine();
        let (e2, t2) = engine();
        let mut s1 = int_pair_stream(t1, 99, UpdateMix::default(), 10);
        let mut s2 = int_pair_stream(t2, 99, UpdateMix::default(), 10);
        for _ in 0..200 {
            s1.step(&e1).unwrap();
            s2.step(&e2).unwrap();
        }
        let mut a = e1.begin();
        let mut b = e2.begin();
        let mut r1 = a.scan(t1).unwrap();
        let mut r2 = b.scan(t2).unwrap();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
    }

    #[test]
    fn deletes_and_updates_are_always_valid() {
        let (e, t) = engine();
        let mut s = TableStream::new(
            t,
            5,
            UpdateMix {
                delete_frac: 0.45,
                update_frac: 0.3,
            },
            |rng, seq| rolljoin_common::tup![seq as i64, rng.gen_range(0..5i64)],
        );
        for _ in 0..500 {
            s.step(&e).unwrap(); // would Err on an invalid delete
        }
        assert_eq!(e.table_len(t).unwrap(), s.live_count() as u64);
    }

    #[test]
    fn load_bulk_populates() {
        let (e, t) = engine();
        let mut s = int_pair_stream(t, 1, UpdateMix::default(), 100);
        s.load(&e, 250).unwrap();
        assert_eq!(e.table_len(t).unwrap(), 250);
        assert_eq!(s.live_count(), 250);
    }

    #[test]
    fn zipf_victims_work() {
        let (e, t) = engine();
        let mut s = int_pair_stream(
            t,
            5,
            UpdateMix {
                delete_frac: 0.5,
                update_frac: 0.0,
            },
            100,
        )
        .with_zipf_victims(0.99, 1000);
        s.load(&e, 100).unwrap();
        for _ in 0..100 {
            s.step(&e).unwrap();
        }
    }
}
