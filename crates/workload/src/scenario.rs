//! Concurrent scenario runner: foreground updater threads with latency
//! collection, used by the contention experiments (E9).

use crate::updates::TableStream;
use rolljoin_storage::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency distribution summary of one updater thread.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdaterReport {
    /// Committed transactions.
    pub ops: u64,
    /// Transactions aborted by lock timeout (deadlock resolution).
    pub aborts: u64,
    /// Wall time the thread ran.
    pub elapsed: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
}

impl UpdaterReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Aggregate several per-thread reports (latencies pooled approximately by
/// taking the worst percentile across threads — conservative but stable).
pub fn aggregate(reports: &[UpdaterReport]) -> UpdaterReport {
    assert!(!reports.is_empty());
    UpdaterReport {
        ops: reports.iter().map(|r| r.ops).sum(),
        aborts: reports.iter().map(|r| r.aborts).sum(),
        elapsed: reports.iter().map(|r| r.elapsed).max().unwrap(),
        p50: reports.iter().map(|r| r.p50).max().unwrap(),
        p95: reports.iter().map(|r| r.p95).max().unwrap(),
        p99: reports.iter().map(|r| r.p99).max().unwrap(),
        max: reports.iter().map(|r| r.max).max().unwrap(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run updater threads until `stop_after` elapses (or `ops_per_thread`
/// transactions commit, whichever comes first), each thread driving its
/// own [`TableStream`]s round-robin. Lock-timeout aborts are counted and
/// retried with a fresh operation.
pub fn run_updaters(
    engine: &Engine,
    streams_per_thread: Vec<Vec<TableStream>>,
    ops_per_thread: u64,
    stop_after: Duration,
    pace: Option<Duration>,
) -> Vec<UpdaterReport> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for mut streams in streams_per_thread {
        let engine = engine.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let started = Instant::now();
            let mut latencies: Vec<Duration> = Vec::new();
            let mut ops = 0u64;
            let mut aborts = 0u64;
            let mut k = 0usize;
            while ops < ops_per_thread
                && started.elapsed() < stop_after
                && !stop.load(Ordering::Acquire)
            {
                let i = k % streams.len();
                k += 1;
                let t0 = Instant::now();
                match streams[i].step(&engine) {
                    Ok(_) => {
                        latencies.push(t0.elapsed());
                        ops += 1;
                    }
                    Err(rolljoin_common::Error::LockTimeout { .. }) => {
                        aborts += 1;
                    }
                    Err(e) => panic!("updater failed: {e}"),
                }
                if let Some(p) = pace {
                    std::thread::sleep(p);
                }
            }
            latencies.sort();
            UpdaterReport {
                ops,
                aborts,
                elapsed: started.elapsed(),
                p50: percentile(&latencies, 0.50),
                p95: percentile(&latencies, 0.95),
                p99: percentile(&latencies, 0.99),
                max: latencies.last().copied().unwrap_or(Duration::ZERO),
            }
        }));
    }
    let reports: Vec<UpdaterReport> = handles
        .into_iter()
        .map(|h| h.join().expect("updater thread panicked"))
        .collect();
    stop.store(true, Ordering::Release);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updates::{int_pair_stream, UpdateMix};
    use rolljoin_common::{ColumnType, Schema};

    #[test]
    fn updaters_run_and_report() {
        let e = Engine::new();
        let t = e
            .create_table(
                "u",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        let streams = vec![
            vec![int_pair_stream(t, 1, UpdateMix::default(), 50)],
            vec![int_pair_stream(t, 2, UpdateMix::default(), 50)],
        ];
        let reports = run_updaters(&e, streams, 100, Duration::from_secs(10), None);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.ops, 100);
            assert!(r.p50 <= r.p99);
            assert!(r.p99 <= r.max);
            assert!(r.throughput() > 0.0);
        }
        let agg = aggregate(&reports);
        assert_eq!(agg.ops, 200);
    }

    #[test]
    fn percentile_math() {
        let d: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&d, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&d, 1.0), Duration::from_millis(100));
        let p50 = percentile(&d, 0.5);
        assert!(p50 >= Duration::from_millis(49) && p50 <= Duration::from_millis(52));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
