//! A small Zipf sampler (no external distribution crate).
//!
//! Uses a precomputed CDF over a bounded domain — fine for the domain
//! sizes the experiments use (≤ 10^6) and exactly reproducible from a
//! seed.

use rand::Rng;

/// Zipf-distributed ranks over `1..=n` with exponent `theta` (0 =
/// uniform; 0.99 = classic YCSB-style skew).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (0 is the hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "uniform-ish: {c}");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hot = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 5 {
                hot += 1;
            }
        }
        assert!(hot > 5_000, "top 5 of 100 should dominate, got {hot}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
