//! Experiment schemas: two-way join, n-way chain join, and the star schema
//! that motivates rolling propagation (paper §3.4).

use rolljoin_common::{ColumnType, Result, Schema, TableId};
use rolljoin_core::{MaintCtx, MaterializedView, ViewDef};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;
use std::sync::Arc;

/// A registered two-way join view `R(a,b) ⋈ S(b,c) → (a,c)`.
pub struct TwoWay {
    pub engine: Engine,
    pub r: TableId,
    pub s: TableId,
    pub mv: Arc<MaterializedView>,
}

impl TwoWay {
    /// Create tables and register the view.
    pub fn setup(name: &str) -> Result<TwoWay> {
        let engine = Engine::new();
        let r = engine.create_table(
            &format!("{name}_r"),
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )?;
        let s = engine.create_table(
            &format!("{name}_s"),
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        )?;
        // Indexes on the join columns (paper substrate: DB2 would have
        // them; propagation queries probe them with delta keys).
        engine.create_index(r, 1)?;
        engine.create_index(s, 0)?;
        let view = ViewDef::new(
            &engine,
            name,
            vec![r, s],
            JoinSpec {
                slot_schemas: vec![engine.schema(r)?, engine.schema(s)?],
                equi: vec![(1, 2)],
                filter: None,
                projection: vec![0, 3],
            },
        )?;
        let mv = MaterializedView::register(&engine, view)?;
        Ok(TwoWay { engine, r, s, mv })
    }

    /// Maintenance context for this view.
    pub fn ctx(&self) -> MaintCtx {
        MaintCtx::new(self.engine.clone(), self.mv.clone())
    }
}

/// An `n`-way chain join `R1(k0,k1) ⋈ R2(k1,k2) ⋈ … ⋈ Rn(k_{n-1},k_n)`
/// projected to `(k0, k_n)` — used by the Eq. 1 / Eq. 2 query-count
/// experiments (E4, E5).
pub struct Chain {
    pub engine: Engine,
    pub tables: Vec<TableId>,
    pub mv: Arc<MaterializedView>,
}

impl Chain {
    /// Create an `n`-way chain (n ≥ 1).
    pub fn setup(name: &str, n: usize) -> Result<Chain> {
        let engine = Engine::new();
        let mut tables = Vec::with_capacity(n);
        for i in 0..n {
            let t = engine.create_table(
                &format!("{name}_r{i}"),
                Schema::new([
                    (format!("k{i}"), ColumnType::Int),
                    (format!("k{}", i + 1), ColumnType::Int),
                ]),
            )?;
            engine.create_index(t, 0)?;
            engine.create_index(t, 1)?;
            tables.push(t);
        }
        let slot_schemas: Vec<Schema> = tables
            .iter()
            .map(|t| engine.schema(*t))
            .collect::<Result<_>>()?;
        // Slot i's columns are (2i, 2i+1); join column 2i+1 with 2(i+1).
        let equi: Vec<(usize, usize)> = (0..n.saturating_sub(1))
            .map(|i| (2 * i + 1, 2 * (i + 1)))
            .collect();
        let view = ViewDef::new(
            &engine,
            name,
            tables.clone(),
            JoinSpec {
                slot_schemas,
                equi,
                filter: None,
                projection: vec![0, 2 * n - 1],
            },
        )?;
        let mv = MaterializedView::register(&engine, view)?;
        Ok(Chain { engine, tables, mv })
    }

    pub fn ctx(&self) -> MaintCtx {
        MaintCtx::new(self.engine.clone(), self.mv.clone())
    }
}

/// The star schema of paper §3.4: a hot central fact table and `d` cold
/// dimension tables. Fact: `(fk_1, …, fk_d, measure)`; dimension `i`:
/// `(pk, attr)`. The view joins the fact with every dimension and projects
/// the measure plus every dimension attribute.
pub struct Star {
    pub engine: Engine,
    pub fact: TableId,
    pub dims: Vec<TableId>,
    pub mv: Arc<MaterializedView>,
    /// Rows per dimension (key domain for fact foreign keys).
    pub dim_size: usize,
}

impl Star {
    /// Create a star with `d` dimensions of `dim_size` rows each
    /// (dimension rows are loaded here; facts are the workload's job).
    pub fn setup(name: &str, d: usize, dim_size: usize) -> Result<Star> {
        assert!(d >= 1, "star needs at least one dimension");
        let engine = Engine::new();
        let mut fact_cols: Vec<(String, ColumnType)> = (1..=d)
            .map(|i| (format!("fk_{i}"), ColumnType::Int))
            .collect();
        fact_cols.push(("measure".to_string(), ColumnType::Int));
        let fact = engine.create_table(&format!("{name}_fact"), Schema::new(fact_cols))?;
        let mut dims = Vec::with_capacity(d);
        for i in 1..=d {
            let dim = engine.create_table(
                &format!("{name}_dim{i}"),
                Schema::new([("pk", ColumnType::Int), ("attr", ColumnType::Int)]),
            )?;
            dims.push(dim);
        }
        for (i, dim) in dims.iter().enumerate() {
            engine.create_index(*dim, 0)?;
            engine.create_index(fact, i)?;
        }
        // Load dimensions.
        for dim in &dims {
            let mut txn = engine.begin();
            for pk in 0..dim_size {
                txn.insert(*dim, rolljoin_common::tup![pk as i64, (pk as i64) * 10])?;
            }
            txn.commit()?;
        }

        // View: fact ⋈ dim_1 ⋈ … ⋈ dim_d.
        let mut slots = vec![fact];
        slots.extend(dims.iter().copied());
        let slot_schemas: Vec<Schema> = slots
            .iter()
            .map(|t| engine.schema(*t))
            .collect::<Result<_>>()?;
        let fact_arity = d + 1;
        // Global columns: fact = [0, fact_arity); dim_i starts at
        // fact_arity + 2(i-1).
        let equi: Vec<(usize, usize)> = (0..d).map(|i| (i, fact_arity + 2 * i)).collect();
        let mut projection = vec![d]; // measure
        projection.extend((0..d).map(|i| fact_arity + 2 * i + 1)); // attrs
        let view = ViewDef::new(
            &engine,
            name,
            slots,
            JoinSpec {
                slot_schemas,
                equi,
                filter: None,
                projection,
            },
        )?;
        let mv = MaterializedView::register(&engine, view)?;
        Ok(Star {
            engine,
            fact,
            dims,
            mv,
            dim_size,
        })
    }

    pub fn ctx(&self) -> MaintCtx {
        MaintCtx::new(self.engine.clone(), self.mv.clone())
    }

    /// Number of relations in the view (1 fact + d dimensions).
    pub fn n(&self) -> usize {
        1 + self.dims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;
    use rolljoin_core::{materialize, oracle};

    #[test]
    fn two_way_setup_works() {
        let w = TwoWay::setup("t2").unwrap();
        let ctx = w.ctx();
        let mut txn = ctx.engine.begin();
        txn.insert(w.r, tup![1, 5]).unwrap();
        txn.insert(w.s, tup![5, 50]).unwrap();
        txn.commit().unwrap();
        materialize(&ctx).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[&tup![1, 50]], 1);
    }

    #[test]
    fn chain_setup_joins_end_to_end() {
        let c = Chain::setup("c4", 4).unwrap();
        let ctx = c.ctx();
        let mut txn = ctx.engine.begin();
        for (i, t) in c.tables.iter().enumerate() {
            txn.insert(*t, tup![i as i64, (i + 1) as i64]).unwrap();
        }
        txn.commit().unwrap();
        materialize(&ctx).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[&tup![0, 4]], 1);
    }

    #[test]
    fn star_setup_dimensions_loaded_and_join_works() {
        let s = Star::setup("s3", 3, 10).unwrap();
        let ctx = s.ctx();
        assert_eq!(s.n(), 4);
        let mut txn = ctx.engine.begin();
        txn.insert(s.fact, tup![1, 2, 3, 500]).unwrap();
        txn.commit().unwrap();
        materialize(&ctx).unwrap();
        let got = oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
        assert_eq!(got.len(), 1);
        // measure, attr of dim1 pk=1, dim2 pk=2, dim3 pk=3.
        assert_eq!(got[&tup![500, 10, 20, 30]], 1);
    }
}
