//! `rolljoin-workload` — seeded workload generators and a concurrent
//! scenario runner for the rolling-join-propagation experiments.
//!
//! * [`schemas`] — the experiment schemas: a two-way join, an `n`-way
//!   chain join, and the hot-fact/cold-dimension **star schema** that
//!   motivates per-relation propagation intervals (paper §3.4).
//! * [`updates`] — reproducible per-table update streams (insert /
//!   delete / update mixes, optional Zipfian victim skew).
//! * [`scenario`] — foreground updater threads with latency percentile
//!   collection, used to measure maintenance/updater contention (E9).
//! * [`zipf`] — a small seeded Zipf sampler.

pub mod scenario;
pub mod schemas;
pub mod updates;
pub mod zipf;

pub use scenario::{aggregate, run_updaters, UpdaterReport};
pub use schemas::{Chain, Star, TwoWay};
pub use updates::{int_pair_stream, TableStream, UpdateMix};
pub use zipf::Zipf;
