//! `rolljoin-obs` — end-to-end observability for asynchronous view
//! maintenance: span tracing, a metrics registry, and a propagation
//! journal.
//!
//! The paper's whole architecture is *asynchronous*: the materialized view
//! trails the base tables by a staleness bound set by propagation
//! intervals and compensation depth (Fig. 3, §3.3). That bound — and where
//! time goes inside a propagation step (lock waits vs. compensation
//! fan-out vs. scan volume) — is invisible without instrumentation. This
//! crate provides the three pillars the maintenance stack hooks into:
//!
//! * [`span::SpanRecorder`] — a lightweight, zero-dependency span recorder
//!   (thread-safe ring buffer, RAII [`span::SpanGuard`]s, thread-local
//!   parenting) exportable as Chrome `trace_event` JSON and as a flat
//!   top-k-by-inclusive-time table;
//! * [`metrics::Meter`] — a registry of counters, gauges, and
//!   power-of-two-bucket histograms with Prometheus text-format and JSON
//!   snapshot exporters;
//! * [`journal::Journal`] — an append-only per-step event log of what each
//!   propagation step chose, issued, and produced.
//!
//! Everything is gated by [`ObsConfig`]: `Off` costs a couple of atomic
//! loads per query, `Metrics` enables the registry, `Full` adds spans and
//! the journal. The crate depends only on `rolljoin-common` (for the CSN
//! type) and the standard library.

pub mod journal;
pub mod metrics;
pub mod span;

pub use journal::{Journal, JournalEntry};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Meter, HIST_BUCKETS};
pub use span::{FinishedSpan, SpanGuard, SpanRecorder, TraceSummaryRow};

use std::sync::Arc;

/// How much observability the maintenance stack records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// Record nothing. The instrumented paths reduce to a few atomic
    /// loads (the gate checks themselves).
    #[default]
    Off,
    /// Maintain the metrics registry (counters, gauges, histograms) but
    /// record no spans and no journal entries.
    Metrics,
    /// Metrics plus span tracing of the full propagate path and the
    /// per-step propagation journal.
    Full,
}

impl ObsConfig {
    /// True when the metrics registry records.
    pub fn metrics_enabled(&self) -> bool {
        !matches!(self, ObsConfig::Off)
    }

    /// True when spans and the journal record.
    pub fn tracing_enabled(&self) -> bool {
        matches!(self, ObsConfig::Full)
    }
}

/// Default capacity of the span ring buffer (finished spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// The combined observability handle one maintenance context threads
/// through its propagate, apply, and compaction paths. Shared by `Arc`
/// across workers and background drivers.
pub struct Obs {
    config: ObsConfig,
    /// The metrics registry.
    pub meter: Meter,
    /// The span recorder.
    pub spans: SpanRecorder,
    /// The propagation journal.
    pub journal: Journal,
}

impl Obs {
    /// Build a handle for the given configuration.
    pub fn new(config: ObsConfig) -> Arc<Obs> {
        Arc::new(Obs {
            config,
            meter: Meter::new(config.metrics_enabled()),
            spans: SpanRecorder::new(DEFAULT_SPAN_CAPACITY),
            journal: Journal::new(),
        })
    }

    /// The fully-disabled handle ([`ObsConfig::Off`]).
    pub fn disabled() -> Arc<Obs> {
        Self::new(ObsConfig::Off)
    }

    /// The configuration this handle records at.
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// True when metrics record.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.config.metrics_enabled()
    }

    /// True when spans and the journal record.
    #[inline]
    pub fn tracing_on(&self) -> bool {
        self.config.tracing_enabled()
    }

    /// Start a span parented to the calling thread's innermost live span
    /// (no-op guard unless [`ObsConfig::Full`]).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if self.tracing_on() {
            self.spans.start(name)
        } else {
            SpanGuard::noop()
        }
    }

    /// Start a span under an explicit parent span id (`0` = root). Used
    /// where the logical parent lives on another thread — e.g. a
    /// compensation query whose parent query ran on a different worker.
    #[inline]
    pub fn span_under(&self, name: &'static str, parent: u64) -> SpanGuard<'_> {
        if self.tracing_on() {
            self.spans.start_under(name, parent)
        } else {
            SpanGuard::noop()
        }
    }

    /// Append a journal entry (dropped unless [`ObsConfig::Full`]).
    /// Returns the assigned step id (`0` when disabled).
    pub fn journal_step(&self, entry: JournalEntry) -> u64 {
        if self.tracing_on() {
            self.journal.append(entry)
        } else {
            0
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_gating() {
        assert!(!ObsConfig::Off.metrics_enabled());
        assert!(!ObsConfig::Off.tracing_enabled());
        assert!(ObsConfig::Metrics.metrics_enabled());
        assert!(!ObsConfig::Metrics.tracing_enabled());
        assert!(ObsConfig::Full.metrics_enabled());
        assert!(ObsConfig::Full.tracing_enabled());
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        {
            let mut g = obs.span("x");
            g.arg("a", 1);
            assert_eq!(g.id(), 0);
        }
        assert_eq!(obs.spans.len(), 0);
        assert_eq!(obs.journal_step(JournalEntry::new("step")), 0);
        assert_eq!(obs.journal.len(), 0);
    }

    #[test]
    fn full_handle_records_spans_and_journal() {
        let obs = Obs::new(ObsConfig::Full);
        {
            let _g = obs.span("outer");
            let mut h = obs.span("inner");
            assert!(h.id() > 0);
            h.arg("rows", 7);
        }
        assert_eq!(obs.spans.len(), 2);
        let spans = obs.spans.finished();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id, "thread-local parenting");
        assert!(obs.journal_step(JournalEntry::new("step")) > 0);
        assert_eq!(obs.journal.len(), 1);
    }

    #[test]
    fn json_escape_special_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain ⋈"), "plain ⋈");
    }
}
