//! Span tracing: a zero-dependency recorder of timed, tree-structured
//! spans with a thread-safe ring buffer.
//!
//! A [`SpanGuard`] measures one region of work; dropping it records a
//! [`FinishedSpan`] (name, thread, start/duration, numeric args, optional
//! label, parent span). Parenting is automatic within a thread — each
//! recorder keeps a thread-local stack of live spans — and explicit across
//! threads via [`SpanRecorder::start_under`] (a compensation query's
//! parent may have executed on a different worker).
//!
//! Exports:
//! * [`SpanRecorder::chrome_trace_json`] — Chrome `trace_event` JSON
//!   (load in `chrome://tracing` or [ui.perfetto.dev]); nesting on each
//!   thread track shows the recursion shape, and every event carries its
//!   `span`/`parent` ids in `args` so the logical tree survives even when
//!   parent and child ran on different threads;
//! * [`SpanRecorder::top_spans`] — a self-profiled flat table of the
//!   top-k span names by inclusive time.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::json_escape;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Unique id (> 0).
    pub id: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Static span name (e.g. `"comp_query"`).
    pub name: &'static str,
    /// Small integer id of the recording thread.
    pub tid: u64,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Inclusive duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric attributes (relation, interval bounds, depth, rows, …).
    pub args: Vec<(&'static str, i64)>,
    /// Optional free-form label (e.g. the propagation query's display).
    pub label: Option<String>,
}

/// One row of the self-profiled flat table: a span name aggregated over
/// all its recorded instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummaryRow {
    pub name: &'static str,
    /// Recorded instances.
    pub count: u64,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Largest single instance, nanoseconds.
    pub max_ns: u64,
}

struct Ring {
    spans: VecDeque<FinishedSpan>,
    capacity: usize,
}

/// Thread-safe span recorder with a bounded ring buffer of finished
/// spans; when the buffer is full the oldest span is dropped (and
/// counted).
pub struct SpanRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
    tids: Mutex<HashMap<std::thread::ThreadId, u64>>,
    next_tid: AtomicU64,
}

thread_local! {
    /// Live-span stack per thread: `(recorder identity, span id)` pairs,
    /// innermost last. Keyed by recorder identity so two recorders used
    /// on one thread (e.g. in tests) never cross-parent.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

impl SpanRecorder {
    /// A recorder retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                spans: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            tids: Mutex::new(HashMap::new()),
            next_tid: AtomicU64::new(1),
        }
    }

    fn identity(&self) -> usize {
        self as *const SpanRecorder as usize
    }

    fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = self.tids.lock().expect("tid registry poisoned");
        let next = &self.next_tid;
        *tids
            .entry(id)
            .or_insert_with(|| next.fetch_add(1, Ordering::Relaxed))
    }

    /// The calling thread's innermost live span of *this* recorder
    /// (`0` when none).
    pub fn current(&self) -> u64 {
        let me = self.identity();
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(rec, _)| *rec == me)
                .map(|(_, id)| *id)
                .unwrap_or(0)
        })
    }

    /// Start a span parented to the thread's current span.
    pub fn start(&self, name: &'static str) -> SpanGuard<'_> {
        let parent = self.current();
        self.start_under(name, parent)
    }

    /// Start a span under an explicit parent id (`0` = root).
    pub fn start_under(&self, name: &'static str, parent: u64) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push((self.identity(), id)));
        SpanGuard {
            rec: Some(self),
            pending: Some(Pending {
                id,
                parent,
                name,
                tid: self.tid(),
                start_ns: self.epoch.elapsed().as_nanos() as u64,
                started: Instant::now(),
                args: Vec::new(),
                label: None,
            }),
        }
    }

    fn finish(&self, p: Pending) {
        let span = FinishedSpan {
            id: p.id,
            parent: p.parent,
            name: p.name,
            tid: p.tid,
            start_ns: p.start_ns,
            dur_ns: p.started.elapsed().as_nanos() as u64,
            args: p.args,
            label: p.label,
        };
        let me = self.identity();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(rec, id)| rec == me && id == p.id) {
                stack.remove(pos);
            }
        });
        let mut ring = self.ring.lock().expect("span ring poisoned");
        if ring.spans.len() == ring.capacity {
            ring.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.spans.push_back(span);
    }

    /// Finished spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("span ring poisoned").spans.len()
    }

    /// True when no span has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out all retained spans (oldest first).
    pub fn finished(&self) -> Vec<FinishedSpan> {
        self.ring
            .lock()
            .expect("span ring poisoned")
            .spans
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all retained spans (the drop counter is kept).
    pub fn clear(&self) {
        self.ring.lock().expect("span ring poisoned").spans.clear();
    }

    /// Export as Chrome `trace_event` JSON (complete events, `ph: "X"`).
    /// Timestamps are microseconds since the recorder's epoch; each
    /// event's `args` carries the logical `span`/`parent` ids plus every
    /// numeric attribute and the optional `q` label.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.finished();
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, s) in spans.iter().enumerate() {
            let mut args = format!("\"span\": {}, \"parent\": {}", s.id, s.parent);
            for (k, v) in &s.args {
                args.push_str(&format!(", \"{k}\": {v}"));
            }
            if let Some(l) = &s.label {
                args.push_str(&format!(", \"q\": \"{}\"", json_escape(l)));
            }
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"cat\": \"rolljoin\", \"ph\": \"X\", \
                 \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{{}}}}}{}\n",
                json_escape(s.name),
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                args,
                if i + 1 == spans.len() { "" } else { "," },
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// The top-`k` span names by total inclusive time.
    pub fn top_spans(&self, k: usize) -> Vec<TraceSummaryRow> {
        let mut agg: HashMap<&'static str, TraceSummaryRow> = HashMap::new();
        for s in self.finished() {
            let row = agg.entry(s.name).or_insert(TraceSummaryRow {
                name: s.name,
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            row.count += 1;
            row.total_ns += s.dur_ns;
            row.max_ns = row.max_ns.max(s.dur_ns);
        }
        let mut rows: Vec<TraceSummaryRow> = agg.into_values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        rows.truncate(k);
        rows
    }

    /// Render [`SpanRecorder::top_spans`] as an aligned text table.
    pub fn format_top_spans(&self, k: usize) -> String {
        let rows = self.top_spans(k);
        let mut out = format!(
            "{:<16} {:>8} {:>12} {:>12} {:>12}\n",
            "span", "count", "total_ms", "mean_us", "max_us"
        );
        for r in rows {
            out.push_str(&format!(
                "{:<16} {:>8} {:>12.3} {:>12.1} {:>12.1}\n",
                r.name,
                r.count,
                r.total_ns as f64 / 1e6,
                r.total_ns as f64 / r.count.max(1) as f64 / 1e3,
                r.max_ns as f64 / 1e3,
            ));
        }
        out
    }
}

struct Pending {
    id: u64,
    parent: u64,
    name: &'static str,
    tid: u64,
    start_ns: u64,
    started: Instant,
    args: Vec<(&'static str, i64)>,
    label: Option<String>,
}

/// RAII guard for one in-flight span; records on drop. The no-op variant
/// (tracing disabled) carries no state and records nothing.
pub struct SpanGuard<'a> {
    rec: Option<&'a SpanRecorder>,
    pending: Option<Pending>,
}

impl SpanGuard<'_> {
    /// A guard that records nothing.
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard {
            rec: None,
            pending: None,
        }
    }

    /// This span's id (`0` for a no-op guard) — usable as an explicit
    /// parent for spans started later, possibly on other threads.
    pub fn id(&self) -> u64 {
        self.pending.as_ref().map(|p| p.id).unwrap_or(0)
    }

    /// Attach a numeric attribute.
    pub fn arg(&mut self, key: &'static str, value: i64) {
        if let Some(p) = &mut self.pending {
            p.args.push((key, value));
        }
    }

    /// Attach (or replace) the free-form label.
    pub fn label(&mut self, label: String) {
        if let Some(p) = &mut self.pending {
            p.label = Some(label);
        }
    }

    /// True when this guard records nothing.
    pub fn is_noop(&self) -> bool {
        self.pending.is_none()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(p)) = (self.rec, self.pending.take()) {
            rec.finish(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_parents_within_a_thread() {
        let rec = SpanRecorder::new(16);
        {
            let a = rec.start("a");
            let a_id = a.id();
            {
                let b = rec.start("b");
                assert_eq!(rec.current(), b.id());
            }
            assert_eq!(rec.current(), a_id);
        }
        let spans = rec.finished();
        assert_eq!(spans.len(), 2);
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.parent, a.id);
        assert_eq!(a.parent, 0);
        assert!(b.start_ns >= a.start_ns);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let rec = std::sync::Arc::new(SpanRecorder::new(16));
        let root_id = {
            let root = rec.start("root");
            root.id()
        };
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            let _child = rec2.start_under("child", root_id);
        })
        .join()
        .unwrap();
        let spans = rec.finished();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(child.parent, root.id);
        assert_ne!(child.tid, root.tid, "distinct thread tracks");
    }

    #[test]
    fn ring_drops_oldest() {
        let rec = SpanRecorder::new(2);
        for _ in 0..3 {
            let _g = rec.start("x");
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_args() {
        let rec = SpanRecorder::new(16);
        {
            let mut g = rec.start("query");
            g.arg("rel", 1);
            g.arg("depth", 2);
            g.label("R1(2,5] ⋈ R2 \"quoted\"".into());
        }
        let json = rec.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"query\""));
        assert!(json.contains("\"rel\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        let (mut braces, mut brackets) = (0i64, 0i64);
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!((braces, brackets), (0, 0), "balanced JSON");
    }

    #[test]
    fn top_spans_aggregates_by_name() {
        let rec = SpanRecorder::new(16);
        for _ in 0..3 {
            let _g = rec.start("hot");
        }
        {
            let _g = rec.start("cold");
        }
        let rows = rec.top_spans(10);
        assert_eq!(rows.iter().find(|r| r.name == "hot").unwrap().count, 3);
        assert_eq!(rows.iter().find(|r| r.name == "cold").unwrap().count, 1);
        assert_eq!(rec.top_spans(1).len(), 1);
        let table = rec.format_top_spans(10);
        assert!(table.contains("hot") && table.contains("count"));
    }
}
