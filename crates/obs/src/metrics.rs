//! The metrics registry: named counters, gauges, and power-of-two-bucket
//! histograms with Prometheus text-format and JSON snapshot exporters.
//!
//! Instruments are registered by `(name, optional label)` and cached —
//! registering the same series twice returns a handle to the same
//! underlying atomics, so call sites may either hold handles (hot paths)
//! or re-register on each use (cold paths). All recording is lock-free
//! atomics; the registry lock is taken only on registration and export.
//!
//! Histograms use 16 power-of-two buckets: bucket `i` counts values in
//! `[2^i, 2^{i+1})` (bucket 0 also holds zero, the last is open-ended) —
//! deliberately the same shape as the storage layer's lock-wait
//! histograms, so those fold in verbatim via [`Histogram::set_buckets`].

use crate::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets (power-of-two; matches the storage
/// layer's `WAIT_HIST_BUCKETS`).
pub const HIST_BUCKETS: usize = 16;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — for mirroring a counter maintained
    /// elsewhere (e.g. folding lifetime compaction totals in); the
    /// source must itself be monotone.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A histogram over non-negative integer values (the unit — µs, rows, … —
/// is the instrument's, named in its help text).
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrite all buckets from counts maintained elsewhere (e.g. the
    /// lock manager's wait-time histograms). `counts` longer than
    /// [`HIST_BUCKETS`] is truncated; shorter is zero-extended. `sum` is
    /// the total observed value in the histogram's unit.
    pub fn set_buckets(&self, counts: &[u64], sum: u64) {
        let mut total = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = counts.get(i).copied().unwrap_or(0);
            b.store(c, Ordering::Relaxed);
            total += c;
        }
        self.0.sum.store(sum, Ordering::Relaxed);
        self.0.count.store(total, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (o, b) in buckets.iter_mut().zip(&self.0.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
    pub count: u64,
}

#[derive(Clone)]
enum Instrument {
    C(Counter),
    G(Gauge),
    H(Histogram),
}

struct Family {
    kind: &'static str,
    help: &'static str,
    /// Rendered label (e.g. `{kind="forward"}`) → instrument; the empty
    /// string is the unlabeled series.
    series: BTreeMap<String, Instrument>,
}

/// The metrics registry.
pub struct Meter {
    enabled: bool,
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Meter {
    /// A registry; `enabled` is advisory (call sites gate on it — the
    /// instruments themselves always work, so exporters and tests can
    /// use a meter directly).
    pub fn new(enabled: bool) -> Self {
        Meter {
            enabled,
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instrumented call sites should record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn register(
        &self,
        name: &'static str,
        label: Option<(&str, &str)>,
        kind: &'static str,
        help: &'static str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let key = match label {
            Some((k, v)) => format!("{{{k}=\"{}\"}}", json_escape(v)),
            None => String::new(),
        };
        let mut fams = self.families.lock().expect("meter poisoned");
        let fam = fams.entry(name).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric {name} re-registered as a different kind"
        );
        fam.series.entry(key).or_insert_with(make).clone()
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_l(name, None, help)
    }

    /// Register (or look up) a counter with one label.
    pub fn counter_l(
        &self,
        name: &'static str,
        label: Option<(&str, &str)>,
        help: &'static str,
    ) -> Counter {
        match self.register(name, label, "counter", help, || {
            Instrument::C(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Instrument::C(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_l(name, None, help)
    }

    /// Register (or look up) a gauge with one label.
    pub fn gauge_l(
        &self,
        name: &'static str,
        label: Option<(&str, &str)>,
        help: &'static str,
    ) -> Gauge {
        match self.register(name, label, "gauge", help, || {
            Instrument::G(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Instrument::G(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_l(name, None, help)
    }

    /// Register (or look up) a histogram with one label.
    pub fn histogram_l(
        &self,
        name: &'static str,
        label: Option<(&str, &str)>,
        help: &'static str,
    ) -> Histogram {
        match self.register(name, label, "histogram", help, || {
            Instrument::H(Histogram(Arc::new(HistCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })))
        }) {
            Instrument::H(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Export in Prometheus text format (families and series in sorted
    /// order, so output is deterministic). Histogram `le` bounds are the
    /// upper edges of the power-of-two buckets; the open-ended last
    /// bucket folds into `+Inf`.
    pub fn prometheus(&self) -> String {
        let fams = self.families.lock().expect("meter poisoned");
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
            for (labels, inst) in &fam.series {
                match inst {
                    Instrument::C(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Instrument::G(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Instrument::H(h) => {
                        let s = h.snapshot();
                        let mut cum = 0u64;
                        let base = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}'));
                        let with = |extra: &str| match base {
                            Some(inner) => format!("{{{inner},{extra}}}"),
                            None => format!("{{{extra}}}"),
                        };
                        for (i, b) in s.buckets.iter().enumerate().take(HIST_BUCKETS - 1) {
                            cum += b;
                            let le = 1u64 << (i + 1);
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                with(&format!("le=\"{le}\""))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            with("le=\"+Inf\""),
                            s.count
                        ));
                        out.push_str(&format!("{name}_sum{labels} {}\n", s.sum));
                        out.push_str(&format!("{name}_count{labels} {}\n", s.count));
                    }
                }
            }
        }
        out
    }

    /// Export as a JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with series keyed `name{label="val"}`.
    pub fn json(&self) -> String {
        let fams = self.families.lock().expect("meter poisoned");
        let (mut cs, mut gs, mut hs) = (Vec::new(), Vec::new(), Vec::new());
        for (name, fam) in fams.iter() {
            for (labels, inst) in &fam.series {
                let key = json_escape(&format!("{name}{labels}"));
                match inst {
                    Instrument::C(c) => cs.push(format!("    \"{key}\": {}", c.get())),
                    Instrument::G(g) => gs.push(format!("    \"{key}\": {}", g.get())),
                    Instrument::H(h) => {
                        let s = h.snapshot();
                        let buckets: Vec<String> =
                            s.buckets.iter().map(|b| b.to_string()).collect();
                        hs.push(format!(
                            "    \"{key}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                            s.count,
                            s.sum,
                            buckets.join(", ")
                        ));
                    }
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \"histograms\": {{\n{}\n  }}\n}}\n",
            cs.join(",\n"),
            gs.join(",\n"),
            hs.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_record_and_cache() {
        let m = Meter::new(true);
        let c = m.counter("x_total", "things");
        c.inc(2);
        m.counter("x_total", "things").inc(3);
        assert_eq!(c.get(), 5, "same underlying series");
        let g = m.gauge("lag", "how far behind");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        let h = m.histogram("wait_us", "waits");
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(1_000_000); // beyond the last bound → open-ended bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1_000_004);
        assert_eq!(s.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn set_buckets_mirrors_external_histograms() {
        let m = Meter::new(true);
        let h = m.histogram("lock_wait_us", "folded");
        let mut counts = [0u64; HIST_BUCKETS];
        counts[3] = 5;
        counts[10] = 2;
        h.set_buckets(&counts, 12345);
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 12345);
        assert_eq!(s.buckets[3], 5);
        // Shorter slices zero-extend.
        h.set_buckets(&[1, 1], 2);
        assert_eq!(h.snapshot().count, 2);
    }

    /// Golden snapshot of the Prometheus text exposition: counters with
    /// and without labels, a gauge, and a histogram — exact text, pinned.
    #[test]
    fn prometheus_golden() {
        let m = Meter::new(true);
        m.counter_l(
            "rolljoin_queries_total",
            Some(("kind", "forward")),
            "Propagation queries executed.",
        )
        .inc(5);
        m.counter_l(
            "rolljoin_queries_total",
            Some(("kind", "comp")),
            "Propagation queries executed.",
        )
        .inc(3);
        m.gauge(
            "rolljoin_propagation_lag_csn",
            "Capture HWM minus propagation HWM, in CSNs.",
        )
        .set(4);
        let h = m.histogram(
            "rolljoin_query_wall_us",
            "Per-query wall time, microseconds.",
        );
        h.observe(1); // bucket 0 (le 2)
        h.observe(3); // bucket 1 (le 4)
        h.observe(70_000); // bucket 15 (+Inf only)
        let golden = "\
# HELP rolljoin_propagation_lag_csn Capture HWM minus propagation HWM, in CSNs.
# TYPE rolljoin_propagation_lag_csn gauge
rolljoin_propagation_lag_csn 4
# HELP rolljoin_queries_total Propagation queries executed.
# TYPE rolljoin_queries_total counter
rolljoin_queries_total{kind=\"comp\"} 3
rolljoin_queries_total{kind=\"forward\"} 5
# HELP rolljoin_query_wall_us Per-query wall time, microseconds.
# TYPE rolljoin_query_wall_us histogram
rolljoin_query_wall_us_bucket{le=\"2\"} 1
rolljoin_query_wall_us_bucket{le=\"4\"} 2
rolljoin_query_wall_us_bucket{le=\"8\"} 2
rolljoin_query_wall_us_bucket{le=\"16\"} 2
rolljoin_query_wall_us_bucket{le=\"32\"} 2
rolljoin_query_wall_us_bucket{le=\"64\"} 2
rolljoin_query_wall_us_bucket{le=\"128\"} 2
rolljoin_query_wall_us_bucket{le=\"256\"} 2
rolljoin_query_wall_us_bucket{le=\"512\"} 2
rolljoin_query_wall_us_bucket{le=\"1024\"} 2
rolljoin_query_wall_us_bucket{le=\"2048\"} 2
rolljoin_query_wall_us_bucket{le=\"4096\"} 2
rolljoin_query_wall_us_bucket{le=\"8192\"} 2
rolljoin_query_wall_us_bucket{le=\"16384\"} 2
rolljoin_query_wall_us_bucket{le=\"32768\"} 2
rolljoin_query_wall_us_bucket{le=\"+Inf\"} 3
rolljoin_query_wall_us_sum 70004
rolljoin_query_wall_us_count 3
";
        assert_eq!(m.prometheus(), golden);
    }

    #[test]
    fn labeled_histogram_buckets_carry_the_label() {
        let m = Meter::new(true);
        m.histogram_l("h_us", Some(("gran", "table")), "x")
            .observe(1);
        let text = m.prometheus();
        assert!(text.contains("h_us_bucket{gran=\"table\",le=\"2\"} 1"));
        assert!(text.contains("h_us_sum{gran=\"table\"} 1"));
    }

    #[test]
    fn json_snapshot_contains_all_kinds() {
        let m = Meter::new(true);
        m.counter("c_total", "c").inc(1);
        m.gauge("g", "g").set(-2);
        m.histogram("h_us", "h").observe(9);
        let j = m.json();
        assert!(j.contains("\"c_total\": 1"));
        assert!(j.contains("\"g\": -2"));
        assert!(j.contains("\"count\": 1"));
    }
}
