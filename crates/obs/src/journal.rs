//! The propagation journal: an append-only per-step event log.
//!
//! Each propagation step — a `Propagate` round, a `RollingPropagate`
//! per-relation step (including empty-skipped ones), an apply
//! (`roll_to`), or a compaction pass — appends one [`JournalEntry`]
//! recording what the step chose (relation, interval), what it issued
//! (forward + compensation queries), what it produced (rows read /
//! written), how long it took, and the resulting view-delta HWM. The
//! bench harness consumes the journal so every benchmark run also emits
//! a journal artifact alongside its `BENCH_*.json`.

use crate::json_escape;
use rolljoin_common::Csn;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One propagation-step record. Built with [`JournalEntry::new`] plus
/// the chained `with_*` setters; fields are public so consumers (the
/// harness, tests) can read them back directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Step id, assigned by [`Journal::append`] (1-based; 0 = unset).
    pub step: u64,
    /// Step kind: `"propagate"`, `"rolling"`, `"apply"`, `"compaction"`, …
    pub kind: &'static str,
    /// Relation index the step advanced, if relation-scoped.
    pub relation: Option<usize>,
    /// The propagation interval `(t_old, t_new]` the step covered.
    pub interval: Option<(Csn, Csn)>,
    /// Queries issued (forward + compensation).
    pub queries: u64,
    /// Of those, compensation queries.
    pub comp_queries: u64,
    /// Rows read from base/delta stores.
    pub rows_read: u64,
    /// Rows written to the view delta (or applied to the view).
    pub rows_written: u64,
    /// Wall-clock duration of the step, nanoseconds.
    pub duration_ns: u64,
    /// View-delta HWM (or mat_time, for apply steps) after the step.
    pub hwm: Csn,
    /// True when the step advanced the frontier without issuing any
    /// queries because the interval contained no captured deltas.
    pub skipped_empty: bool,
    /// Free-form annotation.
    pub note: Option<String>,
}

impl JournalEntry {
    /// An empty entry of the given kind.
    pub fn new(kind: &'static str) -> JournalEntry {
        JournalEntry {
            step: 0,
            kind,
            relation: None,
            interval: None,
            queries: 0,
            comp_queries: 0,
            rows_read: 0,
            rows_written: 0,
            duration_ns: 0,
            hwm: 0,
            skipped_empty: false,
            note: None,
        }
    }

    pub fn with_relation(mut self, rel: usize) -> Self {
        self.relation = Some(rel);
        self
    }

    pub fn with_interval(mut self, lo: Csn, hi: Csn) -> Self {
        self.interval = Some((lo, hi));
        self
    }

    pub fn with_queries(mut self, total: u64, comp: u64) -> Self {
        self.queries = total;
        self.comp_queries = comp;
        self
    }

    pub fn with_rows(mut self, read: u64, written: u64) -> Self {
        self.rows_read = read;
        self.rows_written = written;
        self
    }

    pub fn with_duration_ns(mut self, ns: u64) -> Self {
        self.duration_ns = ns;
        self
    }

    pub fn with_hwm(mut self, hwm: Csn) -> Self {
        self.hwm = hwm;
        self
    }

    pub fn with_skipped_empty(mut self, skipped: bool) -> Self {
        self.skipped_empty = skipped;
        self
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// Render as one JSON object (no trailing newline).
    pub fn json(&self) -> String {
        let mut fields = vec![
            format!("\"step\": {}", self.step),
            format!("\"kind\": \"{}\"", json_escape(self.kind)),
        ];
        if let Some(rel) = self.relation {
            fields.push(format!("\"relation\": {rel}"));
        }
        if let Some((lo, hi)) = self.interval {
            fields.push(format!("\"interval\": [{lo}, {hi}]"));
        }
        fields.push(format!("\"queries\": {}", self.queries));
        fields.push(format!("\"comp_queries\": {}", self.comp_queries));
        fields.push(format!("\"rows_read\": {}", self.rows_read));
        fields.push(format!("\"rows_written\": {}", self.rows_written));
        fields.push(format!("\"duration_ns\": {}", self.duration_ns));
        fields.push(format!("\"hwm\": {}", self.hwm));
        fields.push(format!("\"skipped_empty\": {}", self.skipped_empty));
        if let Some(note) = &self.note {
            fields.push(format!("\"note\": \"{}\"", json_escape(note)));
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// Append-only log of [`JournalEntry`]s with monotonically increasing
/// step ids.
pub struct Journal {
    entries: Mutex<Vec<JournalEntry>>,
    next_step: AtomicU64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal {
            entries: Mutex::new(Vec::new()),
            next_step: AtomicU64::new(1),
        }
    }

    /// Append an entry, assigning and returning its step id.
    pub fn append(&self, mut entry: JournalEntry) -> u64 {
        let step = self.next_step.fetch_add(1, Ordering::Relaxed);
        entry.step = step;
        self.entries.lock().expect("journal poisoned").push(entry);
        step
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal poisoned").len()
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out all entries, in append order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().expect("journal poisoned").clone()
    }

    /// Render the whole journal as a JSON array (one entry per line).
    pub fn json(&self) -> String {
        let entries = self.entries.lock().expect("journal poisoned");
        let lines: Vec<String> = entries.iter().map(|e| format!("  {}", e.json())).collect();
        format!("[\n{}\n]\n", lines.join(",\n"))
    }

    /// Drop all entries (step ids keep increasing).
    pub fn clear(&self) {
        self.entries.lock().expect("journal poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_monotone_step_ids() {
        let j = Journal::new();
        let a = j.append(JournalEntry::new("propagate"));
        let b = j.append(JournalEntry::new("rolling"));
        assert_eq!((a, b), (1, 2));
        let entries = j.entries();
        assert_eq!(entries[0].step, 1);
        assert_eq!(entries[1].kind, "rolling");
    }

    #[test]
    fn builder_round_trips_through_json() {
        let e = JournalEntry::new("rolling")
            .with_relation(1)
            .with_interval(4, 9)
            .with_queries(3, 2)
            .with_rows(120, 7)
            .with_duration_ns(5_000)
            .with_hwm(9)
            .with_note("deferred");
        let json = e.json();
        assert!(json.contains("\"kind\": \"rolling\""));
        assert!(json.contains("\"relation\": 1"));
        assert!(json.contains("\"interval\": [4, 9]"));
        assert!(json.contains("\"comp_queries\": 2"));
        assert!(json.contains("\"skipped_empty\": false"));
        assert!(json.contains("\"note\": \"deferred\""));
    }

    #[test]
    fn journal_json_is_an_array() {
        let j = Journal::new();
        j.append(JournalEntry::new("a"));
        j.append(JournalEntry::new("b").with_skipped_empty(true));
        let json = j.json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"step\"").count(), 2);
        assert!(json.contains("\"skipped_empty\": true"));
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.append(JournalEntry::new("c")), 3, "ids keep rising");
    }
}
