//! Propagation benchmarks: the cost of one maintenance step as a function
//! of the interval width δ (the paper's §3.3 tuning knob), for both
//! `Propagate` and `RollingPropagate`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_core::{materialize, Propagator, RollingPropagator, UniformInterval};
use rolljoin_workload::{int_pair_stream, TwoWay, UpdateMix};

const ROWS: usize = 10_000;
const KEYS: i64 = 2_000;
const CHURN: usize = 2_000;

fn setup() -> (TwoWay, rolljoin_core::MaintCtx, u64, u64) {
    let w = TwoWay::setup("bench").unwrap();
    let still = UpdateMix {
        delete_frac: 0.0,
        update_frac: 0.0,
    };
    int_pair_stream(w.r, 1, still, KEYS)
        .load(&w.engine, ROWS)
        .unwrap();
    int_pair_stream(w.s, 2, still, KEYS)
        .load(&w.engine, ROWS)
        .unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    let mut sr = int_pair_stream(w.r, 3, UpdateMix::default(), KEYS);
    let mut ss = int_pair_stream(w.s, 4, UpdateMix::default(), KEYS);
    let mut end = mat;
    for i in 0..CHURN {
        end = if i % 2 == 0 {
            sr.step(&w.engine).unwrap()
        } else {
            ss.step(&w.engine).unwrap()
        };
    }
    ctx.engine.capture_catch_up().unwrap();
    (w, ctx, mat, end)
}

fn bench_propagate_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("propagate_full_interval");
    g.sample_size(10);
    for delta in [16u64, 128, 1024] {
        g.bench_function(format!("propagate_2k_updates_delta_{delta}"), |b| {
            b.iter_batched(
                setup,
                |(_w, ctx, mat, end)| {
                    let mut p = Propagator::new(ctx, mat);
                    p.propagate_to(end, delta).unwrap()
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_rolling_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("rolling_full_interval");
    g.sample_size(10);
    for delta in [16u64, 128, 1024] {
        g.bench_function(format!("rolling_2k_updates_delta_{delta}"), |b| {
            b.iter_batched(
                setup,
                |(_w, ctx, mat, end)| {
                    let mut p = RollingPropagator::new(ctx, mat);
                    p.drain_to(end, &mut UniformInterval(delta)).unwrap()
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply");
    g.sample_size(10);
    g.bench_function("roll_2k_updates", |b| {
        b.iter_batched(
            || {
                let (w, ctx, mat, end) = setup();
                let mut p = Propagator::new(ctx.clone(), mat);
                p.propagate_to(end, 256).unwrap();
                (w, ctx, end)
            },
            |(_w, ctx, end)| rolljoin_core::roll_to(&ctx, end).unwrap(),
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_propagate_interval,
    bench_rolling_interval,
    bench_apply
);
criterion_main!(benches);
