//! Keyed time-range delta-index benchmarks: the raw posting-slice lookup
//! against the filtered full-range scan it replaces (at two key-set
//! selectivities), and a compensation-shaped two-delta query with the
//! probe planner on vs off. Guards both sides of the tentpole: the keyed
//! slice must stay near-proportional to its result (not to history
//! depth), and the probed query must stay far under the scanning one on
//! selective keys over deep history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_common::{tup, ColumnType, Schema, TimeInterval, Value};
use rolljoin_core::{materialize, ExecTuning, MaintCtx, PropQuery};
use rolljoin_storage::Engine;
use rolljoin_workload::TwoWay;

/// Key domain of the indexed column.
const KEYS: i64 = 64;
/// Delta-history rows for the storage-level lookups.
const HISTORY: usize = 10_000;
/// Δ^S commits for the executor-level query (one row each — deep
/// history, uniform keys).
const QUERY_HISTORY: usize = 1_000;

/// An engine with one captured table carrying `HISTORY` delta rows over
/// `KEYS` uniform keys, keyed-indexed on column 0.
fn indexed_store() -> (Engine, rolljoin_common::TableId, u64) {
    let e = Engine::new();
    let t = e
        .create_table(
            "bench_di",
            Schema::new([("k", ColumnType::Int), ("v", ColumnType::Int)]),
        )
        .unwrap();
    e.create_delta_index(t, 0).unwrap();
    let mut last = 0;
    for chunk in 0..(HISTORY / 5) {
        let mut txn = e.begin();
        for r in 0..5 {
            let i = (chunk * 5 + r) as i64;
            txn.insert(t, tup![i % KEYS, i]).unwrap();
        }
        last = txn.commit().unwrap();
    }
    e.capture_catch_up().unwrap();
    (e, t, last)
}

/// A two-way join with deep uniform Δ^S history, a keyed delta index on
/// the S join column, and one ΔR row — the compensation-query shape.
fn query_setup(probe: bool) -> (TwoWay, MaintCtx, PropQuery) {
    let w = TwoWay::setup("bench_diq").unwrap();
    w.engine.create_delta_index(w.s, 0).unwrap();
    let ctx = w
        .ctx()
        .with_tuning(ExecTuning::sequential().with_delta_probe(probe));
    materialize(&ctx).unwrap();
    let mut last = 0;
    for i in 0..QUERY_HISTORY as i64 {
        let mut txn = w.engine.begin();
        txn.insert(w.s, tup![i % KEYS, i]).unwrap();
        last = txn.commit().unwrap();
    }
    let mut txn = w.engine.begin();
    txn.insert(w.r, tup![1, 7]).unwrap();
    let c = txn.commit().unwrap();
    w.engine.capture_catch_up().unwrap();
    let q = PropQuery::all_base(2)
        .with_delta(0, TimeInterval::new(last, c))
        .with_delta(1, TimeInterval::new(0, last));
    (w, ctx, q)
}

fn bench_delta_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_index");
    g.sample_size(10);

    let (e, t, hi) = indexed_store();
    let iv = TimeInterval::new(0, hi);
    for sel in [1usize, 16] {
        let keys: Vec<Value> = (0..sel as i64).map(Value::Int).collect();
        g.bench_function(format!("range_keyed_{sel}_of_{KEYS}"), |b| {
            b.iter(|| {
                e.delta_range_keyed(t, iv, 0, &keys)
                    .unwrap()
                    .expect("index exists")
                    .len()
            });
        });
        g.bench_function(format!("range_scan_filter_{sel}_of_{KEYS}"), |b| {
            b.iter(|| {
                let set: std::collections::HashSet<&Value> = keys.iter().collect();
                e.delta_range(t, iv)
                    .unwrap()
                    .into_iter()
                    .filter(|r| set.contains(r.tuple.get(0)))
                    .count()
            });
        });
    }

    for (label, probe) in [("probe", true), ("scan", false)] {
        g.bench_function(format!("comp_query_{label}"), |b| {
            b.iter_batched(
                || query_setup(probe),
                |(_w, ctx, q)| ctx.execute(&q, -1).unwrap().stats.rows_out,
                BatchSize::PerIteration,
            );
        });
    }

    g.finish();
}

criterion_group!(benches, bench_delta_index);
criterion_main!(benches);
