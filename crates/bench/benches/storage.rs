//! Microbenchmarks of the storage substrate: tuple codec, WAL append,
//! single-row transactions, and capture throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rolljoin_common::{tup, ColumnType, Schema};
use rolljoin_storage::codec;
use rolljoin_storage::Engine;

fn bench_codec(c: &mut Criterion) {
    let tuple = tup![42i64, "some medium string payload", 3.25f64, true, -7i64];
    let encoded = codec::encode_tuple(&tuple);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_tuple", |b| {
        b.iter(|| codec::encode_tuple(std::hint::black_box(&tuple)))
    });
    g.bench_function("decode_tuple", |b| {
        b.iter(|| codec::decode_tuple(std::hint::black_box(&encoded)).unwrap())
    });
    g.finish();
}

fn engine_with_table() -> (Engine, rolljoin_common::TableId) {
    let e = Engine::new();
    let t = e
        .create_table(
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
    (e, t)
}

fn bench_txn(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn");
    g.bench_function("single_insert_commit", |b| {
        let (e, t) = engine_with_table();
        let mut i = 0i64;
        b.iter(|| {
            let mut txn = e.begin();
            txn.insert(t, tup![i, i % 97]).unwrap();
            i += 1;
            txn.commit().unwrap()
        });
    });
    g.bench_function("insert_then_abort", |b| {
        let (e, t) = engine_with_table();
        let mut i = 0i64;
        b.iter(|| {
            let mut txn = e.begin();
            txn.insert(t, tup![i, i % 97]).unwrap();
            i += 1;
            txn.abort();
        });
    });
    g.finish();
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1000));
    g.bench_function("ingest_1000_commits", |b| {
        b.iter_batched(
            || {
                let (e, t) = engine_with_table();
                for i in 0..1000i64 {
                    let mut txn = e.begin();
                    txn.insert(t, tup![i, i % 97]).unwrap();
                    txn.commit().unwrap();
                }
                e
            },
            |e| e.capture_catch_up().unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let (e, t) = engine_with_table();
    let mut txn = e.begin();
    for i in 0..10_000i64 {
        txn.insert(t, tup![i, i % 97]).unwrap();
    }
    txn.commit().unwrap();
    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("scan_10k_rows_from_pages", |b| {
        b.iter(|| {
            let mut txn = e.begin();
            let rows = txn.scan(t).unwrap();
            txn.commit().unwrap();
            rows.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_txn, bench_capture, bench_scan);
criterion_main!(benches);
