//! Refresh strategies head-to-head (the Fig. 1 / Fig. 2 comparison as a
//! criterion bench): full recompute vs atomic Eq. 1 vs asynchronous
//! rolling propagation, at a fixed delta size.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_core::{
    full_refresh, materialize, roll_to, sync_propagate_eq1, RollingPropagator, TargetRows,
};
use rolljoin_workload::{int_pair_stream, TwoWay, UpdateMix};

const ROWS: usize = 20_000;
const KEYS: i64 = 4_000;
const CHURN: usize = 1_000;

fn setup() -> (TwoWay, rolljoin_core::MaintCtx, u64, u64) {
    let w = TwoWay::setup("refresh").unwrap();
    let still = UpdateMix {
        delete_frac: 0.0,
        update_frac: 0.0,
    };
    int_pair_stream(w.r, 1, still, KEYS)
        .load(&w.engine, ROWS)
        .unwrap();
    int_pair_stream(w.s, 2, still, KEYS)
        .load(&w.engine, ROWS)
        .unwrap();
    let ctx = w.ctx();
    let mat = materialize(&ctx).unwrap();
    let mut sr = int_pair_stream(w.r, 3, UpdateMix::default(), KEYS);
    let mut ss = int_pair_stream(w.s, 4, UpdateMix::default(), KEYS);
    let mut end = mat;
    for i in 0..CHURN {
        end = if i % 2 == 0 {
            sr.step(&w.engine).unwrap()
        } else {
            ss.step(&w.engine).unwrap()
        };
    }
    ctx.engine.capture_catch_up().unwrap();
    (w, ctx, mat, end)
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("refresh_1k_updates_over_20k_rows");
    g.sample_size(10);

    g.bench_function("full_recompute", |b| {
        b.iter_batched(
            setup,
            |(_w, ctx, _mat, _end)| full_refresh(&ctx).unwrap(),
            BatchSize::PerIteration,
        );
    });

    g.bench_function("atomic_eq1_plus_apply", |b| {
        b.iter_batched(
            setup,
            |(_w, ctx, mat, _end)| {
                let out = sync_propagate_eq1(&ctx, mat).unwrap();
                roll_to(&ctx, out.to).unwrap()
            },
            BatchSize::PerIteration,
        );
    });

    g.bench_function("rolling_plus_apply", |b| {
        b.iter_batched(
            setup,
            |(_w, ctx, mat, end)| {
                let mut rp = RollingPropagator::new(ctx.clone(), mat);
                rp.drain_to(end, &mut TargetRows { target_rows: 256 })
                    .unwrap();
                roll_to(&ctx, end).unwrap()
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
