//! Executor microbenchmarks: the left-deep hash-join pipeline that every
//! propagation query runs through, and the net-effect operator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rolljoin_common::{tup, ColumnType, DeltaRow, Schema};
use rolljoin_relalg::{exec, net_effect, ops, JoinSpec};

fn rows(n: usize, keys: i64) -> Vec<DeltaRow> {
    (0..n)
        .map(|i| DeltaRow::base(tup![i as i64, (i as i64) % keys]))
        .collect()
}

fn spec() -> JoinSpec {
    JoinSpec {
        slot_schemas: vec![
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            Schema::new([("b", ColumnType::Int), ("c", ColumnType::Int)]),
        ],
        equi: vec![(1, 2)],
        filter: None,
        projection: vec![0, 3],
    }
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_join");
    g.sample_size(20);
    for size in [1_000usize, 10_000, 50_000] {
        // Key domain scales with size so the join fan-out (and therefore
        // output cardinality) stays ~1 per probe row.
        let keys = (size / 10) as i64;
        let r = rows(size, keys);
        let s: Vec<DeltaRow> = (0..size)
            .map(|i| DeltaRow::base(tup![(i as i64) % keys, i as i64]))
            .collect();
        g.throughput(Throughput::Elements(2 * size as u64));
        g.bench_function(format!("two_way_{size}x{size}"), |b| {
            b.iter(|| {
                let (out, _) = exec::execute(vec![r.clone(), s.clone()], &spec(), 1).unwrap();
                out.len()
            });
        });
    }
    g.finish();
}

fn bench_delta_join(c: &mut Criterion) {
    // The propagation shape: a small timestamped delta against a large
    // base side.
    let mut g = c.benchmark_group("delta_join");
    g.sample_size(20);
    let base: Vec<DeltaRow> = (0..50_000)
        .map(|i| DeltaRow::base(tup![(i as i64) % 1_000, i as i64]))
        .collect();
    for delta_size in [10usize, 100, 1_000] {
        let delta: Vec<DeltaRow> = (0..delta_size)
            .map(|i| DeltaRow::change(i as u64 + 1, 1, tup![i as i64, (i as i64) % 1_000]))
            .collect();
        g.throughput(Throughput::Elements(delta_size as u64));
        g.bench_function(format!("delta_{delta_size}_vs_base_50k"), |b| {
            b.iter(|| {
                let (out, _) =
                    exec::execute(vec![delta.clone(), base.clone()], &spec(), 1).unwrap();
                out.len()
            });
        });
    }
    g.finish();
}

fn bench_net_effect(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_effect");
    g.sample_size(20);
    let rows: Vec<DeltaRow> = (0..100_000)
        .map(|i| {
            DeltaRow::change(
                i as u64 + 1,
                if i % 3 == 0 { -1 } else { 1 },
                tup![(i as i64) % 5_000],
            )
        })
        .collect();
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("phi_100k_rows_5k_groups", |b| {
        b.iter(|| net_effect(rows.clone()).len());
    });
    g.finish();
}

fn bench_row_ops(c: &mut Criterion) {
    // Guards the in-place row operators: negate/scale mutate counts
    // without reallocating, and identity projections keep the original
    // tuple allocation (an `Arc` bump instead of a rebuild). Compensation
    // queries run every row through negate+project, so a regression here
    // taxes every propagation step.
    let mut g = c.benchmark_group("row_ops");
    g.sample_size(20);
    let rows: Vec<DeltaRow> = (0..100_000)
        .map(|i| DeltaRow::change(i as u64 + 1, 1, tup![i as i64, (i as i64) % 97]))
        .collect();
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("negate_scale_100k", |b| {
        b.iter(|| {
            let it = ops::scale(ops::negate(ops::scan(rows.clone())), 3);
            it.map(|r| r.count).sum::<i64>()
        });
    });
    g.bench_function("identity_project_100k", |b| {
        b.iter(|| {
            let it = ops::project(ops::scan(rows.clone()), vec![0, 1]);
            it.count()
        });
    });
    g.bench_function("narrowing_project_100k", |b| {
        b.iter(|| {
            let it = ops::project(ops::scan(rows.clone()), vec![1]);
            it.count()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_join,
    bench_delta_join,
    bench_net_effect,
    bench_row_ops
);
criterion_main!(benches);
