//! Parallel propagation benchmarks: one `ComputeDelta` step over a chain
//! view, swept across worker-pool sizes. Without updater contention there
//! is nothing for the pool to overlap, so this sweep measures its fixed
//! costs in isolation — round barriers, per-round thread spawn, channel
//! traffic — the price a quiescent system pays for the pool. The win side
//! of the ledger (overlapping lock waits under contention) is E16 in the
//! harness; this guard keeps the overhead side from regressing unnoticed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_common::tup;
use rolljoin_core::{materialize, DeltaWorker, MaintCtx, PropQuery};
use rolljoin_workload::Chain;

const KEYS: i64 = 8;
const CHURN: usize = 24;

/// A chain view with seeded tables and churn to propagate; capture caught
/// up so the measured step never waits on the capture driver.
fn setup(n: usize, workers: usize) -> (Chain, MaintCtx, u64, u64) {
    let c = Chain::setup("bench_par", n).unwrap();
    let ctx = c.ctx().with_workers(workers);
    let mat = materialize(&ctx).unwrap();
    let mut txn = ctx.engine.begin();
    for t in 0..n {
        for k in 0..KEYS {
            txn.insert(c.tables[t], tup![k, k]).unwrap();
        }
    }
    txn.commit().unwrap();
    for i in 0..CHURN {
        let mut txn = ctx.engine.begin();
        txn.insert(c.tables[i % n], tup![(i as i64) % KEYS, (i as i64) % KEYS])
            .unwrap();
        txn.commit().unwrap();
    }
    let end = ctx.engine.current_csn();
    ctx.engine.capture_catch_up().unwrap();
    (c, ctx, mat, end)
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_propagation");
    g.sample_size(10);
    for n in [3usize, 4] {
        for workers in [1usize, 2, 4, 8] {
            g.bench_function(format!("chain_{n}_workers_{workers}"), |b| {
                b.iter_batched(
                    || setup(n, workers),
                    |(_c, ctx, mat, end)| {
                        let mut w = DeltaWorker::new();
                        w.enqueue(PropQuery::all_base(n), 1, vec![mat; n], end);
                        w.run_auto(&ctx).unwrap();
                        ctx.stats.snapshot().total_queries()
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
