//! φ-compaction benchmarks: the raw `compact_rows` reducer over churny
//! delta streams, a propagation step over hot-key churn with scan-level
//! compaction off vs on, and the in-place store rewrite below the LWM.
//! Guards the two sides of the ledger: the reducer and the rewrite must
//! stay cheap (they sit on the fetch path and the background compactor),
//! and the compacted propagation step must stay far under the raw one.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_common::{tup, DeltaRow};
use rolljoin_core::{materialize, roll_to, CompactionPolicy, DeltaWorker, MaintCtx, PropQuery};
use rolljoin_relalg::compact_rows;
use rolljoin_workload::TwoWay;

const KEYS: i64 = 16;
/// Paired insert+delete commits per side — nets to almost nothing.
const CHURN_PAIRS: usize = 200;

/// A hot-key churn stream: `rows` delta rows over `KEYS` tuples,
/// alternating +1/−1 so nearly everything cancels.
fn churny_rows(rows: usize) -> Vec<DeltaRow> {
    (0..rows)
        .map(|i| {
            let k = (i as i64) % KEYS;
            DeltaRow::change(i as u64 + 1, if i % 2 == 0 { 1 } else { -1 }, tup![k, k])
        })
        .collect()
}

/// A two-way join loaded with matching keys and paired hot-key churn;
/// capture caught up so propagation never steps it inline.
fn setup(policy: CompactionPolicy) -> (TwoWay, MaintCtx, u64, u64) {
    let w = TwoWay::setup("bench_compact").unwrap();
    let mut txn = w.engine.begin();
    for k in 0..KEYS {
        txn.insert(w.r, tup![k, k]).unwrap();
        txn.insert(w.s, tup![k, k]).unwrap();
    }
    txn.commit().unwrap();
    let ctx = w.ctx().with_compaction(policy);
    let mat = materialize(&ctx).unwrap();
    for i in 0..CHURN_PAIRS {
        let k = (i as i64) % KEYS;
        let mut txn = w.engine.begin();
        txn.insert(w.r, tup![k + 100, k]).unwrap();
        txn.commit().unwrap();
        let mut txn = w.engine.begin();
        txn.delete_one(w.r, &tup![k + 100, k]).unwrap();
        txn.commit().unwrap();
    }
    let end = w.engine.current_csn();
    w.engine.capture_catch_up().unwrap();
    (w, ctx, mat, end)
}

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction");
    g.sample_size(10);

    for rows in [1_000usize, 10_000] {
        let input = churny_rows(rows);
        g.bench_function(format!("compact_rows_{rows}"), |b| {
            b.iter(|| compact_rows(&input).1.rows_out);
        });
    }

    for (label, policy) in [
        ("off", CompactionPolicy::Off),
        ("on_scan", CompactionPolicy::OnScan),
    ] {
        g.bench_function(format!("propagate_churn_{label}"), |b| {
            b.iter_batched(
                || setup(policy),
                |(_w, ctx, mat, end)| {
                    let mut worker = DeltaWorker::new();
                    worker.enqueue(PropQuery::all_base(2), 1, vec![mat; 2], end);
                    worker.run_auto(&ctx).unwrap();
                    ctx.stats.snapshot().delta_rows_read
                },
                BatchSize::PerIteration,
            );
        });
    }

    g.bench_function("store_compact_through", |b| {
        b.iter_batched(
            || {
                let (w, ctx, mat, end) = setup(CompactionPolicy::Background(1));
                // Propagate and roll to the end of history so the LWM
                // (min of HWM and apply position) covers all the churn.
                let mut worker = DeltaWorker::new();
                worker.enqueue(PropQuery::all_base(2), 1, vec![mat; 2], end);
                worker.run_auto(&ctx).unwrap();
                ctx.mv.set_hwm(end);
                roll_to(&ctx, end).unwrap();
                (w, ctx)
            },
            |(w, ctx)| {
                let removed = ctx.compact_stores().unwrap();
                assert!(removed > 0);
                w.engine.delta_store(w.r).unwrap().len()
            },
            BatchSize::PerIteration,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
