//! Observability overhead: the same propagation-churn step under
//! `ObsConfig::Off`, `Metrics`, and `Full`. Guards the tentpole's cost
//! contract — the disabled path must stay within noise of a build that
//! never heard of observability, and even `Full` (spans + journal) must
//! stay a small constant factor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolljoin_common::tup;
use rolljoin_core::{materialize, DeltaWorker, MaintCtx, ObsConfig, PropQuery};
use rolljoin_workload::TwoWay;

const KEYS: i64 = 16;
const CHURN_PAIRS: usize = 200;

/// A two-way join with matching keys and paired hot-key churn; capture is
/// caught up so propagation never steps it inline.
fn setup(obs: ObsConfig) -> (TwoWay, MaintCtx, u64, u64) {
    let w = TwoWay::setup("bench_obs").unwrap();
    let mut txn = w.engine.begin();
    for k in 0..KEYS {
        txn.insert(w.r, tup![k, k]).unwrap();
        txn.insert(w.s, tup![k, k]).unwrap();
    }
    txn.commit().unwrap();
    let ctx = w.ctx().with_obs_config(obs);
    let mat = materialize(&ctx).unwrap();
    for i in 0..CHURN_PAIRS {
        let k = (i as i64) % KEYS;
        let mut txn = w.engine.begin();
        txn.insert(w.r, tup![k + 100, k]).unwrap();
        txn.commit().unwrap();
        let mut txn = w.engine.begin();
        txn.delete_one(w.r, &tup![k + 100, k]).unwrap();
        txn.commit().unwrap();
    }
    let end = w.engine.current_csn();
    w.engine.capture_catch_up().unwrap();
    (w, ctx, mat, end)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    for (label, obs) in [
        ("off", ObsConfig::Off),
        ("metrics", ObsConfig::Metrics),
        ("full", ObsConfig::Full),
    ] {
        g.bench_function(format!("propagate_churn_{label}"), |b| {
            b.iter_batched(
                || setup(obs),
                |(_w, ctx, mat, end)| {
                    let mut worker = DeltaWorker::new();
                    worker.enqueue(PropQuery::all_base(2), 1, vec![mat; 2], end);
                    worker.run_auto(&ctx).unwrap();
                    ctx.stats.snapshot().delta_rows_read
                },
                BatchSize::PerIteration,
            );
        });
    }

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
