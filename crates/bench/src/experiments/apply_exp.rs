//! E10 / E11 — point-in-time refresh cost and the summary-delta
//! aggregation extension.

use super::{churn_two_way, loaded_two_way};
use crate::{ms, timed, Table};
use rolljoin_common::Result;
use rolljoin_core::{
    materialize, oracle, roll_to, AggFn, AggSpec, Propagator, RollingPropagator, SummaryView,
    TargetRows,
};
use rolljoin_workload::Star;

/// E10 (§1, §3.3): with the view delta staged, the apply process can roll
/// to *any* intermediate time; cost scales with the rolled distance, and
/// every stop lands exactly on the oracle.
pub fn e10() -> Result<()> {
    let (w, ctx, mat) = loaded_two_way("e10", 10_000, 10_000)?;
    let end = churn_two_way(&w, 3_000, 3, 10_000)?;
    let mut prop = Propagator::new(ctx.clone(), mat);
    prop.propagate_to(end, 256)?;
    ctx.engine.capture_catch_up()?;

    let mut t = Table::new(&[
        "roll target (csn)",
        "distance rolled",
        "apply ms",
        "tuples changed",
        "oracle check",
    ]);
    let stops = 6u64;
    let mut prev = mat;
    for k in 1..=stops {
        let target = mat + (end - mat) * k / stops;
        if target <= prev {
            continue;
        }
        let (out, d) = timed(|| roll_to(&ctx, target).unwrap());
        let got = oracle::mv_state(&ctx.engine, &ctx.mv)?;
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, target)?;
        t.row(vec![
            target.to_string(),
            (target - prev).to_string(),
            ms(d),
            out.tuples_changed.to_string(),
            if got == want { "ok" } else { "MISMATCH" }.to_string(),
        ]);
        prev = target;
    }
    t.print("E10: point-in-time refresh — roll cost vs distance, oracle-checked at every stop");
    Ok(())
}

/// E11 (§3/§6): aggregation views via summary-delta tables — incremental
/// aggregate maintenance from the view delta vs recomputing the aggregate
/// from the (oracle) view.
pub fn e11() -> Result<()> {
    let mut t = Table::new(&[
        "facts",
        "groups",
        "incr refresh ms",
        "recompute ms",
        "speedup",
        "check",
    ]);
    for facts in [1_000usize, 5_000, 20_000] {
        let star = Star::setup(&format!("e11f{facts}"), 2, 50)?;
        let ctx = star.ctx();
        let mat = materialize(&ctx)?;
        // Aggregate: GROUP BY dim1.attr, COUNT(*) + SUM(measure).
        let mut sv = SummaryView::register(
            ctx.clone(),
            AggSpec {
                group_by: vec![1],
                aggregates: vec![AggFn::Count, AggFn::Sum(0)],
            },
        )?;
        // Insert facts.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let mut end = mat;
        for i in 0..facts {
            let mut txn = star.engine.begin();
            txn.insert(
                star.fact,
                rolljoin_common::tup![rng.gen_range(0..50i64), rng.gen_range(0..50i64), i as i64],
            )?;
            end = txn.commit()?;
        }
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        rp.drain_to(end, &mut TargetRows { target_rows: 512 })?;

        let (changed, d_inc) = timed(|| sv.refresh_to(end).unwrap());
        // Recompute the same aggregate from the oracle view state.
        ctx.engine.capture_catch_up()?;
        let ((), d_full) = timed(|| {
            let view = oracle::view_at(&ctx.engine, &ctx.mv.view, end).unwrap();
            let mut groups: std::collections::HashMap<rolljoin_common::Value, (i64, i64)> =
                std::collections::HashMap::new();
            for (tuple, count) in view {
                let key = tuple[1].clone();
                let m = tuple[0].as_int().unwrap();
                let e = groups.entry(key).or_insert((0, 0));
                e.0 += count;
                e.1 += count * m;
            }
            // Compare against the summary view's state.
            let state = sv.state().unwrap();
            assert_eq!(state.len(), groups.len());
            for (g, (cnt, aggs)) in state {
                let want = groups[&g[0]];
                assert_eq!(cnt, want.0);
                assert_eq!(aggs, vec![want.0, want.1]);
            }
        });
        let speedup = d_full.as_secs_f64() / d_inc.as_secs_f64().max(1e-9);
        t.row(vec![
            facts.to_string(),
            changed.to_string(),
            ms(d_inc),
            ms(d_full),
            format!("{speedup:.1}x"),
            "ok".to_string(), // the closure asserts equality
        ]);
    }
    t.print("E11 (§3/§6): summary-delta aggregate maintenance vs full aggregate recompute");
    Ok(())
}
