//! E14 / E15 — ablations of this implementation's own design choices
//! (DESIGN.md §4): the index-probe semi-join pushdown and the empty-delta
//! subtree skip.

use crate::{ms, timed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolljoin_common::{Result, Tuple, Value};
use rolljoin_core::{materialize, oracle, roll_to, RollingPropagator, UniformInterval};
use rolljoin_relalg::JoinSpec;
use rolljoin_storage::Engine;
use rolljoin_workload::{int_pair_stream, Star, UpdateMix};

/// Build a two-way setup with or without join-column indexes.
fn two_way_indexed(name: &str, indexed: bool, rows: usize) -> Result<rolljoin_core::MaintCtx> {
    let engine = Engine::new();
    let r = engine.create_table(
        &format!("{name}_r"),
        rolljoin_common::Schema::new([
            ("a", rolljoin_common::ColumnType::Int),
            ("b", rolljoin_common::ColumnType::Int),
        ]),
    )?;
    let s = engine.create_table(
        &format!("{name}_s"),
        rolljoin_common::Schema::new([
            ("b", rolljoin_common::ColumnType::Int),
            ("c", rolljoin_common::ColumnType::Int),
        ]),
    )?;
    if indexed {
        engine.create_index(r, 1)?;
        engine.create_index(s, 0)?;
    }
    let view = rolljoin_core::ViewDef::new(
        &engine,
        name,
        vec![r, s],
        JoinSpec {
            slot_schemas: vec![engine.schema(r)?, engine.schema(s)?],
            equi: vec![(1, 2)],
            filter: None,
            projection: vec![0, 3],
        },
    )?;
    let mv = rolljoin_core::MaterializedView::register(&engine, view)?;
    let still = UpdateMix {
        delete_frac: 0.0,
        update_frac: 0.0,
    };
    int_pair_stream(r, 1, still, 4_000).load(&engine, rows)?;
    int_pair_stream(s, 2, still, 4_000).load(&engine, rows)?;
    Ok(rolljoin_core::MaintCtx::new(engine, mv))
}

/// E14: the semi-join pushdown is what makes maintenance-transaction size
/// track the delta instead of the table — exactly what an index on the
/// join column buys the paper's DB2 prototype.
pub fn e14() -> Result<()> {
    let mut t = Table::new(&[
        "join-column indexes",
        "base rows read",
        "delta rows read",
        "max rows/txn",
        "wall ms",
        "check",
    ]);
    for indexed in [false, true] {
        let ctx = two_way_indexed(&format!("e14i{indexed}"), indexed, 20_000)?;
        let (r, s) = (ctx.mv.view.bases[0], ctx.mv.view.bases[1]);
        let mat = materialize(&ctx)?;
        let mix = UpdateMix::default();
        let mut sr = int_pair_stream(r, 9, mix, 4_000);
        let mut ss = int_pair_stream(s, 10, mix, 4_000);
        let mut end = mat;
        for i in 0..1_000usize {
            end = if i % 2 == 0 {
                sr.step(&ctx.engine)?
            } else {
                ss.step(&ctx.engine)?
            };
        }
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        let (_, wall) = timed(|| rp.drain_to(end, &mut UniformInterval(50)).unwrap());
        roll_to(&ctx, end)?;
        let snap = ctx.stats.snapshot();
        ctx.engine.capture_catch_up()?;
        let got = oracle::mv_state(&ctx.engine, &ctx.mv)?;
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end)?;
        t.row(vec![
            if indexed {
                "yes (pushdown)"
            } else {
                "no (full scans)"
            }
            .to_string(),
            snap.base_rows_read.to_string(),
            snap.delta_rows_read.to_string(),
            snap.max_txn_rows.to_string(),
            ms(wall),
            if got == want { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print("E14 (ablation): index-probe semi-join pushdown — identical results, table-sized vs delta-sized transactions");
    Ok(())
}

/// E15: skipping a propagation query whose introduced delta slot is empty
/// prunes its entire (provably empty) compensation subtree — the star
/// schema's cold dimensions make this the difference between O(facts) and
/// O(dimension-touches) work for the dimension relations.
pub fn e15() -> Result<()> {
    let mut t = Table::new(&[
        "empty-delta skip",
        "fwd queries",
        "comp queries",
        "total rows read",
        "wall ms",
        "check",
    ]);
    for skip in [false, true] {
        let star = Star::setup(&format!("e15s{skip}"), 2, 100)?;
        let ctx = if skip {
            star.ctx()
        } else {
            star.ctx().without_empty_skip()
        };
        let mat = materialize(&ctx)?;
        let mut rng = StdRng::seed_from_u64(3);
        let mut end = mat;
        for i in 0..2_000i64 {
            let mut txn = star.engine.begin();
            let mut vals: Vec<Value> = (0..2).map(|_| Value::Int(rng.gen_range(0..100))).collect();
            vals.push(Value::Int(i));
            txn.insert(star.fact, Tuple::from(vals))?;
            end = txn.commit()?;
        }
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        let (_, wall) = timed(|| rp.drain_to(end, &mut UniformInterval(100)).unwrap());
        roll_to(&ctx, end)?;
        let snap = ctx.stats.snapshot();
        ctx.engine.capture_catch_up()?;
        let got = oracle::mv_state(&ctx.engine, &ctx.mv)?;
        let want = oracle::view_at(&ctx.engine, &ctx.mv.view, end)?;
        t.row(vec![
            if skip { "on" } else { "off" }.to_string(),
            snap.forward_queries.to_string(),
            snap.comp_queries.to_string(),
            snap.total_rows_read().to_string(),
            ms(wall),
            if got == want { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print("E15 (ablation): empty-delta subtree skip on a star schema with quiet dimensions");
    Ok(())
}
