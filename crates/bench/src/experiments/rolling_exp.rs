//! E7 / E8 — Figures 8–9 (Propagate vs RollingPropagate) and §3.3's
//! interval-length knob.

use super::verify_cell;
use crate::{ms, timed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolljoin_common::{Result, Tuple, Value};
use rolljoin_core::{
    materialize, roll_to, PerRelationInterval, Propagator, RollingPropagator, TargetRows,
    UniformInterval,
};
use rolljoin_workload::Star;

const FACTS: usize = 5_000;
const DIMS: usize = 3;
const DIM_SIZE: usize = 300;
const DIM_TOUCHES: usize = 6;

/// Hot fact inserts + rare dimension updates (the §3.4 scenario).
fn drive_star(star: &Star, seed: u64) -> Result<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = star.dims.len();
    let mut last = 0;
    for i in 0..FACTS {
        let mut txn = star.engine.begin();
        let mut vals: Vec<Value> = (0..d)
            .map(|_| Value::Int(rng.gen_range(0..star.dim_size as i64)))
            .collect();
        vals.push(Value::Int(i as i64));
        txn.insert(star.fact, Tuple::from(vals))?;
        last = txn.commit()?;
        if i % (FACTS / DIM_TOUCHES) == FACTS / DIM_TOUCHES - 1 {
            let dim = star.dims[rng.gen_range(0..d)];
            let pk = rng.gen_range(0..star.dim_size as i64);
            let mut txn = star.engine.begin();
            txn.update(
                dim,
                &rolljoin_common::tup![pk, pk * 10],
                rolljoin_common::tup![pk, pk * 10],
            )?;
            last = txn.commit()?;
        }
    }
    Ok(last)
}

/// E7 (Figs. 8 vs 9): on a star schema with a hot fact table and cold
/// dimensions, rolling propagation with per-relation intervals reads far
/// fewer rows and issues far fewer compensations than aligned-interval
/// `Propagate` — at identical output.
pub fn e7() -> Result<()> {
    let mut t = Table::new(&[
        "strategy",
        "fwd q",
        "comp q",
        "base rows",
        "delta rows",
        "vd rows",
        "wall ms",
        "check",
    ]);
    let run = |name: &str,
               f: &dyn Fn(&rolljoin_core::MaintCtx, u64, u64) -> Result<()>|
     -> Result<Vec<String>> {
        let star = Star::setup(name, DIMS, DIM_SIZE)?;
        let ctx = star.ctx();
        let mat = materialize(&ctx)?;
        let end = drive_star(&star, 77)?;
        let (_, wall) = timed(|| f(&ctx, mat, end).unwrap());
        roll_to(&ctx, end)?;
        let s = ctx.stats.snapshot();
        Ok(vec![
            String::new(), // strategy filled by caller
            s.forward_queries.to_string(),
            s.comp_queries.to_string(),
            s.base_rows_read.to_string(),
            s.delta_rows_read.to_string(),
            s.vd_rows_written.to_string(),
            ms(wall),
            verify_cell(&ctx),
        ])
    };

    let mut row = run("e7prop", &|ctx, mat, end| {
        Propagator::new(ctx.clone(), mat)
            .propagate_to(end, 100)
            .map(|_| ())
    })?;
    row[0] = "Propagate δ=100 (Fig. 8)".into();
    t.row(row);

    let mut row = run("e7roll", &|ctx, mat, end| {
        let wide = (2 * FACTS) as u64 + 100;
        let mut policy = PerRelationInterval(
            std::iter::once(100u64)
                .chain(std::iter::repeat_n(wide, DIMS))
                .collect(),
        );
        RollingPropagator::new(ctx.clone(), mat)
            .drain_to(end, &mut policy)
            .map(|_| ())
    })?;
    row[0] = "Rolling fact=100/dims=wide (Fig. 9)".into();
    t.row(row);

    let mut row = run("e7rolltr", &|ctx, mat, end| {
        RollingPropagator::new(ctx.clone(), mat)
            .drain_to(end, &mut TargetRows { target_rows: 100 })
            .map(|_| ())
    })?;
    row[0] = "Rolling adaptive (100 rows/txn)".into();
    t.row(row);

    let mut row = run("e7rolluni", &|ctx, mat, end| {
        RollingPropagator::new(ctx.clone(), mat)
            .drain_to(end, &mut UniformInterval(100))
            .map(|_| ())
    })?;
    row[0] = "Rolling uniform δ=100".into();
    t.row(row);

    t.print(&format!(
        "E7 (Figs. 8–9): star schema, {FACTS} hot fact inserts vs {DIM_TOUCHES} dimension touches, {DIMS} dims"
    ));
    Ok(())
}

/// E8 (§3.3): the propagation-interval length trades per-transaction work
/// (contention) against total overhead (query count). Small δ → many tiny
/// transactions; large δ → few large ones.
pub fn e8() -> Result<()> {
    let mut t = Table::new(&[
        "δ (csn)",
        "queries",
        "maint txns",
        "total rows read",
        "avg rows/txn",
        "max rows/txn",
        "wall ms",
        "check",
    ]);
    for delta in [1u64, 5, 20, 100, 500, 2_000] {
        let (w, ctx, mat) = super::loaded_two_way(&format!("e8d{delta}"), 10_000, 10_000)?;
        let end = super::churn_two_way(&w, 2_000, 5, 10_000)?;
        let mut rp = RollingPropagator::new(ctx.clone(), mat);
        let (_, wall) = timed(|| rp.drain_to(end, &mut UniformInterval(delta)).unwrap());
        roll_to(&ctx, end)?;
        let s = ctx.stats.snapshot();
        let avg = s.total_rows_read().checked_div(s.transactions).unwrap_or(0);
        t.row(vec![
            delta.to_string(),
            s.total_queries().to_string(),
            s.transactions.to_string(),
            s.total_rows_read().to_string(),
            avg.to_string(),
            s.max_txn_rows.to_string(),
            ms(wall),
            verify_cell(&ctx),
        ]);
    }
    t.print("E8 (§3.3): interval length δ — per-transaction size vs total propagation work");
    Ok(())
}
