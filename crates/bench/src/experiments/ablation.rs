//! E12 — ablation of the minimum-timestamp rule (paper §3.3).
//!
//! The paper stamps each view-delta tuple with the **minimum** of the
//! contributing delta tuples' timestamps and spends §3.3 arguing why. This
//! experiment re-derives the view delta with three candidate rules — min
//! (the paper's), max, and exec-time (stamp everything with the query's
//! execution time) — using the *same* Equation-3 query structure, then
//! counts how many intermediate time points violate the timed-delta
//! property (Definition 4.2). Only min survives.

use crate::Table;
use rolljoin_common::{Csn, Result, TimeInterval, Tuple};
use rolljoin_core::{materialize, oracle};
use rolljoin_workload::{int_pair_stream, TwoWay, UpdateMix};
use std::collections::BTreeMap;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TsRule {
    Min,
    Max,
    ExecTime,
}

impl TsRule {
    fn combine(&self, a: Option<Csn>, b: Option<Csn>, exec: Csn) -> Csn {
        match self {
            TsRule::Min => match (a, b) {
                (Some(x), Some(y)) => x.min(y),
                (Some(x), None) | (None, Some(x)) => x,
                (None, None) => unreachable!("≥1 delta side in every term"),
            },
            TsRule::Max => match (a, b) {
                (Some(x), Some(y)) => x.max(y),
                (Some(x), None) | (None, Some(x)) => x,
                (None, None) => unreachable!(),
            },
            TsRule::ExecTime => exec,
        }
    }
}

/// Rows of one side: (ts, count, tuple) with base rows carrying ts = None.
type Side = Vec<(Option<Csn>, i64, Tuple)>;

/// Join R-side (a,b) with S-side (b,c) on b, emitting (a,c) with the
/// chosen timestamp rule; `sign` scales counts.
fn join(
    r: &Side,
    s: &Side,
    rule: TsRule,
    exec: Csn,
    sign: i64,
    out: &mut BTreeMap<Csn, Vec<(i64, Tuple)>>,
) {
    for (rts, rc, rt) in r {
        for (sts, sc, st) in s {
            if rt[1] == st[0] {
                let ts = rule.combine(*rts, *sts, exec);
                let tuple = Tuple::new([rt[0].clone(), st[1].clone()]);
                out.entry(ts).or_default().push((sign * rc * sc, tuple));
            }
        }
    }
}

/// E12: the §3.3 scenarios plus a seeded random history, re-propagated
/// with each timestamp rule through Equation 3's four-query structure.
pub fn e12() -> Result<()> {
    // Build a history with plenty of §3.3-style races: pairs inserted and
    // deleted on both sides at staggered times.
    let w = TwoWay::setup("e12")?;
    let ctx = w.ctx();
    let mat = materialize(&ctx)?;
    let mix = UpdateMix {
        delete_frac: 0.3,
        update_frac: 0.2,
    };
    let mut sr = int_pair_stream(w.r, 3, mix, 5);
    let mut ss = int_pair_stream(w.s, 4, mix, 5);
    let mut end = mat;
    for i in 0..120usize {
        end = if i % 2 == 0 {
            sr.step(&w.engine)?
        } else {
            ss.step(&w.engine)?
        };
    }
    // Propagation happens "late": more noise commits first.
    for _ in 0..30 {
        sr.step(&w.engine)?;
    }
    let exec = w.engine.current_csn();
    ctx.engine.capture_catch_up()?;

    let side = |m: std::collections::HashMap<Tuple, i64>| -> Side {
        m.into_iter().map(|(t, c)| (None, c, t)).collect()
    };
    let deltas = |table, iv: TimeInterval| -> Result<Side> {
        Ok(ctx
            .engine
            .delta_range(table, iv)?
            .into_iter()
            .map(|r| (r.ts, r.count, r.tuple))
            .collect())
    };

    let r_at_exec = side(ctx.engine.scan_asof(w.r, exec)?);
    let s_at_exec = side(ctx.engine.scan_asof(w.s, exec)?);
    let d_r_ab = deltas(w.r, TimeInterval::new(mat, end))?;
    let d_s_ab = deltas(w.s, TimeInterval::new(mat, end))?;
    let d_s_b_exec = deltas(w.s, TimeInterval::new(end, exec))?;
    let d_r_a_exec = deltas(w.r, TimeInterval::new(mat, exec))?;

    let mut t = Table::new(&[
        "timestamp rule",
        "intermediate points checked",
        "Def. 4.2 violations",
        "endpoint correct",
    ]);
    for (name, rule) in [
        ("min (paper §3.3)", TsRule::Min),
        ("max", TsRule::Max),
        ("exec-time", TsRule::ExecTime),
    ] {
        // Equation 3 with t_c = t_d = exec:
        //   ΔR(a,b] ⋈ S@exec  −  ΔR(a,b] ⋈ ΔS(b,exec]
        // + R@exec ⋈ ΔS(a,b]  −  ΔR(a,exec] ⋈ ΔS(a,b]
        let mut vd: BTreeMap<Csn, Vec<(i64, Tuple)>> = BTreeMap::new();
        join(&d_r_ab, &s_at_exec, rule, exec, 1, &mut vd);
        join(&d_r_ab, &d_s_b_exec, rule, exec, -1, &mut vd);
        join(&r_at_exec, &d_s_ab, rule, exec, 1, &mut vd);
        join(&d_r_a_exec, &d_s_ab, rule, exec, -1, &mut vd);

        // Check Definition 4.2 at every intermediate point: does
        // φ(σ_{mat,t}(VD)) + V_mat equal V_t?
        let v_mat = oracle::view_at(&ctx.engine, &ctx.mv.view, mat)?;
        let mut violations = 0usize;
        let mut checked = 0usize;
        let mut endpoint_ok = false;
        for t_stop in (mat + 1)..=end {
            let mut got = v_mat.clone();
            for (&ts, bucket) in vd.range(..=t_stop) {
                if ts <= mat {
                    continue;
                }
                for (c, tuple) in bucket {
                    let e = got.entry(tuple.clone()).or_insert(0);
                    *e += c;
                    if *e == 0 {
                        got.remove(tuple);
                    }
                }
            }
            let want = oracle::view_at(&ctx.engine, &ctx.mv.view, t_stop)?;
            checked += 1;
            let ok = got == want;
            if !ok {
                violations += 1;
            }
            if t_stop == end {
                endpoint_ok = ok;
            }
        }
        t.row(vec![
            name.to_string(),
            checked.to_string(),
            violations.to_string(),
            if endpoint_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print("E12 (§3.3 ablation): only the minimum-timestamp rule yields a timed delta");
    println!(
        "  (all rules agree at the interval endpoint — the net effect is rule-independent;\n   \
         only min makes every intermediate point-in-time state correct)"
    );
    Ok(())
}
