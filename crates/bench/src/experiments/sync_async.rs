//! E4 / E5 / E6 — Equations 1–3 and Figures 4, 6–7: synchronous query
//! counts, the asynchronous query structure, and region tiling.

use crate::{ms, timed, Table};
use rolljoin_common::{Result, TimeInterval};
use rolljoin_core::{
    compute_delta, eq1_query_count, eq2_query_count, expected_query_count, materialize, oracle,
    sync_propagate_eq1, sync_propagate_eq2, PropQuery,
};
use rolljoin_relalg::NetEffect;
use rolljoin_workload::{int_pair_stream, Chain, UpdateMix};

/// Load a chain's tables and apply `updates` mixed ops round-robin.
fn churn_chain(c: &Chain, rows: usize, updates: usize, keys: i64) -> Result<u64> {
    let mut streams: Vec<_> = c
        .tables
        .iter()
        .enumerate()
        .map(|(i, t)| int_pair_stream(*t, 10 + i as u64, UpdateMix::default(), keys))
        .collect();
    for s in &mut streams {
        s.load(&c.engine, rows)?;
    }
    let mut last = 0;
    let k = streams.len();
    for i in 0..updates {
        last = streams[i % k].step(&c.engine)?;
    }
    Ok(last)
}

/// E4 (Eq. 1 vs Eq. 2): query counts `2^n − 1` vs `n`, with measured cost.
/// Eq. 2 is only demonstrable via time travel (the paper calls its results
/// unrealizable); both must produce φ-identical deltas.
pub fn e4() -> Result<()> {
    let mut t = Table::new(&[
        "n",
        "eq1 queries",
        "eq1 ms",
        "eq1 rows read",
        "eq2 queries",
        "eq2 ms",
        "eq2 rows read",
        "deltas agree",
    ]);
    for n in 2..=5usize {
        let c1 = Chain::setup(&format!("e4a{n}"), n)?;
        let ctx1 = c1.ctx();
        let mat1 = materialize(&ctx1)?;
        let end1 = churn_chain(&c1, 1_000, 300, 200)?;

        let c2 = Chain::setup(&format!("e4b{n}"), n)?;
        let ctx2 = c2.ctx();
        let mat2 = materialize(&ctx2)?;
        let end2 = churn_chain(&c2, 1_000, 300, 200)?;
        assert_eq!(end1, end2);

        let (out1, d1) = timed(|| sync_propagate_eq1(&ctx1, mat1).unwrap());
        ctx2.engine.capture_catch_up()?;
        let (out2, d2) = timed(|| sync_propagate_eq2(&ctx2, mat2, end2).unwrap());

        assert_eq!(out1.queries as u64, eq1_query_count(n));
        assert_eq!(out2.queries as u64, eq2_query_count(n));
        let n1: NetEffect = ctx1
            .engine
            .vd_net_range(ctx1.mv.vd_table, TimeInterval::new(mat1, end1))?
            .into_iter()
            .collect();
        let n2: NetEffect = ctx2
            .engine
            .vd_net_range(ctx2.mv.vd_table, TimeInterval::new(mat2, end2))?
            .into_iter()
            .collect();
        t.row(vec![
            n.to_string(),
            out1.queries.to_string(),
            ms(d1),
            out1.rows_read.to_string(),
            out2.queries.to_string(),
            ms(d2),
            out2.rows_read.to_string(),
            if n1 == n2 { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print("E4 (Eq. 1 vs Eq. 2): 2^n−1 vs n synchronous propagation queries, n-way chains");
    Ok(())
}

/// E5 (Fig. 4): ComputeDelta's asynchronous structure — measured query
/// count matches `T(n) = n·(1 + T(n−1))` when every table changed, and the
/// compensation volume grows with how *late* propagation runs (drift).
pub fn e5() -> Result<()> {
    let mut t = Table::new(&["n", "expected queries", "measured queries"]);
    for n in 1..=4usize {
        let c = Chain::setup(&format!("e5n{n}"), n)?;
        let ctx = c.ctx().without_empty_skip();
        let mat = materialize(&ctx)?;
        let end = churn_chain(&c, 100, 3 * n, 50)?;
        compute_delta(&ctx, &PropQuery::all_base(n), 1, &vec![mat; n], end)?;
        let snap = ctx.stats.snapshot();
        t.row(vec![
            n.to_string(),
            expected_query_count(n).to_string(),
            snap.total_queries().to_string(),
        ]);
    }
    t.print("E5a (Fig. 4): ComputeDelta issues T(n) = n·(1+T(n−1)) queries");

    let mut t = Table::new(&[
        "lag (commits after interval)",
        "queries",
        "delta rows read",
        "vd rows written",
        "check",
    ]);
    for lag in [0usize, 200, 1_000, 4_000] {
        let c = Chain::setup(&format!("e5l{lag}"), 2)?;
        let ctx = c.ctx();
        let mat = materialize(&ctx)?;
        let end = churn_chain(&c, 2_000, 400, 400)?;
        // Drift: the database keeps evolving before propagation runs.
        let mut s = int_pair_stream(c.tables[0], 91, UpdateMix::default(), 400);
        for _ in 0..lag {
            s.step(&c.engine)?;
        }
        compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat, mat], end)?;
        ctx.mv.set_hwm(end);
        let snap = ctx.stats.snapshot();
        ctx.engine.capture_catch_up()?;
        let ok = oracle::timed_delta_holds(&ctx.engine, &ctx.mv, mat, end)?;
        t.row(vec![
            lag.to_string(),
            snap.total_queries().to_string(),
            snap.delta_rows_read.to_string(),
            snap.vd_rows_written.to_string(),
            if ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print(
        "E5b (Fig. 4): compensation volume grows with propagation lag; correctness never suffers",
    );
    Ok(())
}

/// E6 (Figs. 6–7): the four queries of Equation 3 tile the L-shaped delta
/// region exactly — raw view-delta rows overshoot (the overlapping
/// rectangles), their net effect equals the oracle's `V_b − V_a` exactly.
pub fn e6() -> Result<()> {
    let mut t = Table::new(&[
        "updates",
        "fwd queries",
        "comp queries",
        "raw vd rows",
        "net vd rows",
        "oracle delta rows",
        "tiles exactly",
    ]);
    for updates in [50usize, 400, 2_000] {
        let c = Chain::setup(&format!("e6u{updates}"), 2)?;
        let ctx = c.ctx().without_empty_skip();
        let mat = materialize(&ctx)?;
        let end = churn_chain(&c, 1_000, updates, 100)?;
        compute_delta(&ctx, &PropQuery::all_base(2), 1, &[mat, mat], end)?;
        let snap = ctx.stats.snapshot();
        ctx.engine.capture_catch_up()?;
        let raw = ctx.engine.vd_len(ctx.mv.vd_table)?;
        let net: NetEffect = ctx
            .engine
            .vd_net_range(ctx.mv.vd_table, TimeInterval::new(mat, end))?
            .into_iter()
            .collect();
        let v_a = oracle::view_at(&ctx.engine, &ctx.mv.view, mat)?;
        let v_b = oracle::view_at(&ctx.engine, &ctx.mv.view, end)?;
        let oracle_delta = rolljoin_relalg::add(&v_b, &rolljoin_relalg::negate(&v_a));
        t.row(vec![
            updates.to_string(),
            snap.forward_queries.to_string(),
            snap.comp_queries.to_string(),
            raw.to_string(),
            net.len().to_string(),
            oracle_delta.len().to_string(),
            if net == oracle_delta {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    t.print("E6 (Figs. 6–7): forward + compensation queries tile V_{a,b} exactly (net = oracle)");
    Ok(())
}
