//! E18 — early φ-compaction: policy × Zipf skew × workers.
//!
//! A hot-key churn workload is where raw delta streams are most wasteful:
//! the same tuple is inserted and deleted over and over, every row flows
//! through every propagation join, and almost all of it cancels. φ is
//! linear over SPJ propagation (Definition 4.1 / Lemma 4.2), so the
//! net-effect reduction can be taken *early* — at scan time, before rows
//! reach a join or the scan cache (`CompactionPolicy::OnScan`), and in the
//! stores themselves below the global LWM (`CompactionPolicy::Background`)
//! — without changing any net effect. This experiment drives a two-way
//! join with Zipf-skewed insert/delete churn (90% of ops are a paired
//! insert+delete of one tuple, netting to zero), propagates the history in
//! rolling windows under each policy, and reports the propagate-phase wall
//! time, rows entering joins, view-delta rows written, and store sizes.
//! The view-delta net effect is asserted identical across policies, and
//! the rolled MV is verified against the oracle.

use crate::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rolljoin_common::{tup, Error, Result, TimeInterval};
use rolljoin_core::{compute_delta, materialize, roll_to, CompactionPolicy, PropQuery};
use rolljoin_relalg::{net_effect, NetEffect};
use rolljoin_workload::{TwoWay, Zipf};
use std::time::{Duration, Instant};

/// Matching rows seeded per join key on the S side — the join fan-out a
/// delta row pays, so wasted delta rows cost real join work.
const SEED_MULT: usize = 4;
/// Churn key domain (join keys `0..KEY_DOMAIN`).
const KEY_DOMAIN: usize = 64;
/// Churn operations; each is a paired insert+delete (two commits, net
/// zero) with probability `PAIR_FRAC`, else a lone insert.
const CHURN_OPS: usize = 600;
const PAIR_FRAC: f64 = 0.9;
/// Rolling windows the history is propagated in.
const WINDOWS: usize = 8;
/// Trials per configuration; the median-propagate-wall trial is reported.
const TRIALS: usize = 3;

/// One churn operation: (side, key, paired-with-delete).
type ChurnOp = (usize, i64, bool);

/// The deterministic churn history for one skew setting — identical
/// across policies, workers, and trials so their deltas are comparable.
fn churn_ops(theta: f64) -> Vec<ChurnOp> {
    let zipf = Zipf::new(KEY_DOMAIN, theta);
    let mut rng = StdRng::seed_from_u64(18_000 + (theta * 100.0) as u64);
    (0..CHURN_OPS)
        .map(|i| {
            let k = zipf.sample(&mut rng) as i64;
            (i % 2, k, rng.gen::<f64>() < PAIR_FRAC)
        })
        .collect()
}

struct RunOutcome {
    /// Wall time of the propagate phase (all windows' `ComputeDelta`s).
    propagate_wall: Duration,
    /// Wall time of the apply phase (per-window `roll_to`s).
    apply_wall: Duration,
    /// Rows fetched from delta slots into joins across the whole run.
    delta_rows: u64,
    /// Total rows fetched from any slot.
    rows_read: u64,
    /// View-delta rows written by propagation.
    vd_written: u64,
    /// Raw delta rows eliminated by scan-level φ-compaction.
    scan_saved: u64,
    /// Records left in both base delta stores after the run.
    store_rows: usize,
    /// Records left in the view delta store after the run.
    vd_rows: usize,
    /// Estimated heap bytes reclaimed by store-level compaction.
    bytes_reclaimed: u64,
    /// Net effect of the full produced view delta.
    phi: NetEffect,
    /// Oracle verification of the rolled MV ("ok" / "MISMATCH").
    verify: String,
}

fn policy_name(p: CompactionPolicy) -> &'static str {
    match p {
        CompactionPolicy::Off => "off",
        CompactionPolicy::OnScan => "on-scan",
        CompactionPolicy::Background(_) => "background",
    }
}

/// Median-propagate-wall trial of a configuration (row counts are
/// deterministic; only wall time is trial-noisy).
fn run_best(policy: CompactionPolicy, theta: f64, workers: usize) -> Result<RunOutcome> {
    let mut outs = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        outs.push(run_config(policy, theta, workers, trial)?);
    }
    outs.sort_by_key(|o| o.propagate_wall);
    Ok(outs.swap_remove(TRIALS / 2))
}

/// One configuration: seed, materialize, replay the skew's churn history,
/// then propagate it in `WINDOWS` rolling windows with a roll after each —
/// under `Background`, also compacting the stores below the LWM between
/// windows, exactly what `spawn_compaction_driver` does asynchronously.
fn run_config(
    policy: CompactionPolicy,
    theta: f64,
    workers: usize,
    trial: usize,
) -> Result<RunOutcome> {
    let w = TwoWay::setup(&format!(
        "e18p{}t{}w{workers}x{trial}",
        policy_name(policy),
        (theta * 100.0) as u64
    ))?;
    let ctx = w.ctx().with_workers(workers).with_compaction(policy);

    // Seed before materializing so the propagated windows contain only
    // churn: every key joins, and S carries SEED_MULT rows per key.
    let mut txn = ctx.engine.begin();
    for k in 0..KEY_DOMAIN as i64 {
        txn.insert(w.r, tup![k, k])?;
        for m in 0..SEED_MULT as i64 {
            txn.insert(w.s, tup![k, 100 * k + m])?;
        }
    }
    txn.commit()?;
    let mat = materialize(&ctx)?;

    for (side, k, paired) in churn_ops(theta) {
        let (table, tuple) = if side == 0 {
            (w.r, tup![k + 500, k])
        } else {
            (w.s, tup![k, -1])
        };
        let mut txn = ctx.engine.begin();
        txn.insert(table, tuple.clone())?;
        txn.commit()?;
        if paired {
            let mut txn = ctx.engine.begin();
            txn.delete_one(table, &tuple)?;
            txn.commit()?;
        }
    }
    let end = ctx.engine.current_csn();
    // Catch capture up front so the measured windows never step it inline.
    ctx.engine.capture_catch_up()?;

    let before = ctx.stats.snapshot();
    let span = end - mat;
    let mut frontier = mat;
    let mut propagate_wall = Duration::ZERO;
    let mut apply_wall = Duration::ZERO;
    for s in 1..=WINDOWS {
        let hi = if s == WINDOWS {
            end
        } else {
            mat + span * s as u64 / WINDOWS as u64
        };
        if hi <= frontier {
            continue;
        }
        let t0 = Instant::now();
        compute_delta(&ctx, &PropQuery::all_base(2), 1, &[frontier; 2], hi)?;
        propagate_wall += t0.elapsed();
        ctx.mv.set_hwm(hi);
        frontier = hi;
        let t0 = Instant::now();
        roll_to(&ctx, hi)?;
        apply_wall += t0.elapsed();
        if matches!(policy, CompactionPolicy::Background(_)) {
            ctx.compact_stores()?;
        }
    }
    let since = ctx.stats.snapshot().since(&before);

    let phi = net_effect(
        ctx.engine
            .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))?,
    );
    let verify = crate::experiments::verify_cell(&ctx);
    let report = ctx.compaction_report()?;
    Ok(RunOutcome {
        propagate_wall,
        apply_wall,
        delta_rows: since.delta_rows_read,
        rows_read: since.total_rows_read(),
        vd_written: since.vd_rows_written,
        scan_saved: since.compact_rows_saved,
        store_rows: ctx.engine.delta_store(w.r)?.len() + ctx.engine.delta_store(w.s)?.len(),
        vd_rows: ctx.engine.vd_len(ctx.mv.vd_table)?,
        bytes_reclaimed: report.bytes_reclaimed(),
        phi,
        verify,
    })
}

/// E18: sweep compaction policy × Zipf skew × workers on Zipf hot-key
/// churn; emit the results table and `BENCH_compaction.json`.
pub fn e18() -> Result<()> {
    let policies = [
        CompactionPolicy::Off,
        CompactionPolicy::OnScan,
        CompactionPolicy::Background(1),
    ];
    let mut t = Table::new(&[
        "policy",
        "theta",
        "workers",
        "propagate wall",
        "wall vs off",
        "delta rows",
        "rows vs off",
        "vd written",
        "scan saved",
        "store rows",
        "verify",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut headline: Vec<String> = Vec::new();

    for theta in [0.0f64, 0.99] {
        for workers in [1usize, 2] {
            let mut baseline: Option<(Duration, u64, NetEffect)> = None;
            for policy in policies {
                let out = run_best(policy, theta, workers)?;
                let (base_wall, base_delta, base_phi) = baseline
                    .get_or_insert((out.propagate_wall, out.delta_rows, out.phi.clone()))
                    .clone();
                assert_eq!(
                    out.phi,
                    base_phi,
                    "view-delta divergence: {} vs off at theta={theta}",
                    policy_name(policy)
                );
                assert_eq!(out.verify, "ok", "oracle mismatch under {policy:?}");
                let wall_ratio =
                    out.propagate_wall.as_secs_f64() / base_wall.as_secs_f64().max(1e-9);
                let rows_ratio = out.delta_rows as f64 / (base_delta as f64).max(1e-9);
                t.row(vec![
                    policy_name(policy).to_string(),
                    format!("{theta}"),
                    workers.to_string(),
                    format!("{:.2} ms", out.propagate_wall.as_secs_f64() * 1e3),
                    format!("{:.2}x", wall_ratio),
                    out.delta_rows.to_string(),
                    format!("{:.2}x", rows_ratio),
                    out.vd_written.to_string(),
                    out.scan_saved.to_string(),
                    out.store_rows.to_string(),
                    out.verify.clone(),
                ]);
                json_rows.push(format!(
                    concat!(
                        "    {{\"policy\": \"{}\", \"theta\": {}, \"workers\": {}, ",
                        "\"propagate_wall_ms\": {:.3}, \"wall_vs_off\": {:.3}, ",
                        "\"apply_wall_ms\": {:.3}, ",
                        "\"delta_rows_joined\": {}, \"rows_vs_off\": {:.3}, ",
                        "\"total_rows_read\": {}, \"vd_rows_written\": {}, ",
                        "\"scan_rows_saved\": {}, \"store_rows_end\": {}, ",
                        "\"vd_rows_end\": {}, \"bytes_reclaimed\": {}, ",
                        "\"view_delta_divergence\": false, \"oracle\": \"{}\"}}"
                    ),
                    policy_name(policy),
                    theta,
                    workers,
                    out.propagate_wall.as_secs_f64() * 1e3,
                    wall_ratio,
                    out.apply_wall.as_secs_f64() * 1e3,
                    out.delta_rows,
                    rows_ratio,
                    out.rows_read,
                    out.vd_written,
                    out.scan_saved,
                    out.store_rows,
                    out.vd_rows,
                    out.bytes_reclaimed,
                    out.verify,
                ));
                if theta == 0.99 && policy != CompactionPolicy::Off {
                    headline.push(format!(
                        concat!(
                            "    {{\"policy\": \"{}\", \"workers\": {}, ",
                            "\"wall_reduction_pct\": {:.1}, \"rows_joined_reduction_pct\": {:.1}}}"
                        ),
                        policy_name(policy),
                        workers,
                        (1.0 - wall_ratio) * 100.0,
                        (1.0 - rows_ratio) * 100.0,
                    ));
                }
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"e18\",\n",
            "  \"description\": \"early phi-compaction on a two-way join under Zipf hot-key ",
            "insert/delete churn (90% of ops net to zero); policy x skew x workers, ",
            "propagated in rolling windows with a roll after each\",\n",
            "  \"key_domain\": {}, \"churn_ops\": {}, \"pair_frac\": {}, ",
            "\"windows\": {}, \"seed_mult\": {},\n",
            "  \"criterion_compaction_on_vs_off_at_theta_0_99\": [\n{}\n  ],\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        KEY_DOMAIN,
        CHURN_OPS,
        PAIR_FRAC,
        WINDOWS,
        SEED_MULT,
        headline.join(",\n"),
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_compaction.json", json)
        .map_err(|e| Error::Internal(format!("writing BENCH_compaction.json: {e}")))?;

    t.print(&format!(
        "E18: early φ-compaction under Zipf hot-key churn ({CHURN_OPS} ops, \
         {:.0}% paired insert+delete, {WINDOWS} rolling windows); wall/row ratios \
         are vs CompactionPolicy::Off within each (theta, workers) cell",
        PAIR_FRAC * 100.0
    ));
    println!("  [wrote BENCH_compaction.json]");
    Ok(())
}
