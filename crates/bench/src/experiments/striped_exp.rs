//! E17 — stripe-granular locking: granularity × workers × think-time.
//!
//! Under table-granularity locking every maintenance query S-locks every
//! base table of the view for its whole transaction, so a single updater
//! X lock and the maintenance pool block each other wholesale — the
//! contention the paper's §1 motivates asynchronous propagation to avoid.
//! Stripe granularity shrinks the conflict footprint to
//! `hash(join key) % n`: updaters take IX plus the X stripes of the tuple
//! they write, keyed probes take IS plus the S stripes of their key set,
//! and the two only meet when keys actually collide. This experiment
//! drives an E16-style chain-4 workload — maintenance propagating churn
//! while updaters hammer the first and last chain tables — and sweeps
//! lock granularity, worker count, and in-transaction think time,
//! reporting the updaters' commit p99/throughput and the per-granularity
//! lock-wait breakdown. The view-delta net effect is asserted identical
//! across granularities (locking changes who waits, never what commits).

use crate::Table;
use rolljoin_common::{tup, Error, Result, TimeInterval};
use rolljoin_core::{materialize, spawn_capture_driver, DeltaWorker, PropQuery};
use rolljoin_relalg::{net_effect, NetEffect};
use rolljoin_storage::LockGranularity;
use rolljoin_workload::Chain;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chain arity (the acceptance workload: chain-4).
const N: usize = 4;
/// Seeded distinct join keys per table — large enough that the keyed-probe
/// pushdown always beats the probe-vs-scan heuristic (delta key sets stay
/// tiny relative to table distinct counts).
const SEED_KEYS: i64 = 512;
/// Churn commits to propagate in the deterministic first window, touching
/// only hot keys `0..CHURN_KEYS`.
const CHURN: usize = 16;
const CHURN_KEYS: i64 = 4;
/// Extra copies of each hot key seeded per table. A hot-key delta row
/// joins ~`HOT_MULT^(N-1)` base rows, so every propagation query does
/// real join work *while holding its base locks* — whole tables under
/// `Table` granularity, only the hot keys' stripes under `Striped`.
const HOT_MULT: i64 = 12;
/// Updaters write keys `UPD_BASE..UPD_BASE + UPD_KEYS` — disjoint from the
/// seeded/churned key space, the regime striping is built for: the writes
/// being applied are not the keys being propagated.
const UPD_BASE: i64 = 1_000;
const UPD_KEYS: i64 = 32;
/// Churner think time between hot-key commits: keeps fresh hot-key deltas
/// flowing so the sustained phase stays join-heavy.
const CHURN_THINK: Duration = Duration::from_micros(200);
/// Keep propagating fresh windows until the measurement has run this long,
/// so updater latency is sampled under sustained maintenance load even
/// when a granularity makes the first window fast.
const MEASURE: Duration = Duration::from_millis(80);
/// Trials per configuration; the median-updater-p99 trial is reported.
const TRIALS: usize = 3;

struct RunOutcome {
    /// Wall time of the deterministic first propagation window.
    first_window: Duration,
    /// Updater commit-latency p99 across both updater threads.
    updater_p99: Duration,
    /// Committed updater transactions.
    updater_ops: usize,
    /// Updater commits per second over the measurement window.
    updater_tput: f64,
    /// Lock-timeout deadlock resolutions re-queued by the worker.
    retries: u64,
    /// Net effect of the deterministic window's view delta.
    phi: NetEffect,
    /// Per-granularity lock-wait breakdown for the whole run.
    table_waits: u64,
    table_timeouts: u64,
    table_mean_wait: Duration,
    stripe_waits: u64,
    stripe_timeouts: u64,
    stripe_mean_wait: Duration,
}

/// Median-p99 trial of a configuration — updater latency is the measured
/// quantity here, and the median trial is robust to a single scheduling
/// hiccup in either direction.
fn run_best(granularity: LockGranularity, workers: usize, think: Duration) -> Result<RunOutcome> {
    let mut outs = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        outs.push(run_config(granularity, workers, think, trial)?);
    }
    let phi = outs[0].phi.clone();
    for o in &outs {
        assert_eq!(
            o.phi, phi,
            "view-delta divergence across trials at {granularity}"
        );
    }
    outs.sort_by_key(|o| o.updater_p99);
    Ok(outs.swap_remove(TRIALS / 2))
}

/// One configuration: chain-4 seeded with `SEED_KEYS` matching keys per
/// table, `CHURN` churn commits to propagate, updaters on the first and
/// last tables committing single-row inserts with `think` held inside the
/// transaction, and a `workers`-wide maintenance pool propagating windows
/// for at least `MEASURE`.
fn run_config(
    granularity: LockGranularity,
    workers: usize,
    think: Duration,
    trial: usize,
) -> Result<RunOutcome> {
    let c = Chain::setup(
        &format!("e17g{granularity}w{workers}t{}x{trial}", think.as_micros()),
        N,
    )?;
    let ctx = c
        .ctx()
        .with_workers(workers)
        .with_lock_granularity(granularity)
        .with_blocking_capture(Duration::from_micros(50), Duration::from_secs(60));
    let mat = materialize(&ctx)?;

    let mut txn = ctx.engine.begin();
    for t in 0..N {
        for k in 0..SEED_KEYS {
            txn.insert(c.tables[t], tup![k, k])?;
        }
        for k in 0..CHURN_KEYS {
            for _ in 0..HOT_MULT {
                txn.insert(c.tables[t], tup![k, k])?;
            }
        }
    }
    txn.commit()?;
    for i in 0..CHURN {
        let mut txn = ctx.engine.begin();
        let k = (i as i64) % CHURN_KEYS;
        txn.insert(c.tables[i % N], tup![k, k])?;
        txn.commit()?;
    }
    let end = ctx.engine.current_csn();

    let capture = spawn_capture_driver(ctx.engine.clone(), Duration::from_micros(50), 8_192);

    let stop = Arc::new(AtomicBool::new(false));

    // The (unmeasured) churner keeps committing hot-key rows round-robin
    // so the sustained phase always has join-heavy deltas to propagate —
    // the maintenance load the measured updaters contend with.
    let churner = {
        let engine = ctx.engine.clone();
        let tables = c.tables.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let mut txn = engine.begin();
                let k = (i as i64) % CHURN_KEYS;
                if txn.insert(tables[i % N], tup![k, k]).is_ok() {
                    let _ = txn.commit();
                }
                i += 1;
                std::thread::sleep(CHURN_THINK);
            }
        })
    };
    let upd_t0 = Instant::now();
    let updaters: Vec<_> = [0usize, N - 1]
        .into_iter()
        .map(|u| {
            let engine = ctx.engine.clone();
            let table = c.tables[u];
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut lat: Vec<Duration> = Vec::new();
                let mut k = u as i64;
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    let mut txn = engine.begin();
                    let key = UPD_BASE + k % UPD_KEYS;
                    match txn.insert(table, tup![key, key]) {
                        Ok(_) => {
                            std::thread::sleep(think);
                            if txn.commit().is_ok() {
                                lat.push(t0.elapsed());
                            }
                        }
                        Err(_) => drop(txn),
                    }
                    k += 1;
                }
                lat
            })
        })
        .collect();

    // Deterministic first window: propagate the pre-measured churn
    // (identical commits and CSNs in every configuration) so the view
    // deltas are comparable across granularities.
    let mut worker = DeltaWorker::new();
    let mut retries = 0u64;
    let run_window = |worker: &mut DeltaWorker, retries: &mut u64| -> Result<()> {
        loop {
            match worker.run_auto(&ctx) {
                Ok(()) => return Ok(()),
                Err(Error::LockTimeout { .. }) => *retries += 1,
                Err(e) => return Err(e),
            }
        }
    };
    let t0 = Instant::now();
    worker.enqueue(PropQuery::all_base(N), 1, vec![mat; N], end);
    run_window(&mut worker, &mut retries)?;
    let first_window = t0.elapsed();
    ctx.mv.set_hwm(end);
    let phi = net_effect(
        ctx.engine
            .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))?,
    );

    // Sustained load: keep rolling fresh windows (now containing the
    // updaters' own commits) until the measurement window has elapsed.
    let mut frontier = end;
    while t0.elapsed() < MEASURE {
        let next = ctx.engine.current_csn();
        if next > frontier {
            worker.enqueue(PropQuery::all_base(N), 1, vec![frontier; N], next);
            run_window(&mut worker, &mut retries)?;
            ctx.mv.set_hwm(next);
            frontier = next;
        }
    }

    stop.store(true, Ordering::Release);
    churner.join().expect("churner thread panicked");
    let mut lat: Vec<Duration> = Vec::new();
    for h in updaters {
        lat.extend(h.join().expect("updater thread panicked"));
    }
    let upd_elapsed = upd_t0.elapsed();
    lat.sort();
    capture.stop()?;

    let p99 = if lat.is_empty() {
        Duration::ZERO
    } else {
        lat[((lat.len() as f64 - 1.0) * 0.99).round() as usize]
    };
    let locks = ctx.engine.locks().stats().snapshot_full();
    Ok(RunOutcome {
        first_window,
        updater_p99: p99,
        updater_ops: lat.len(),
        updater_tput: lat.len() as f64 / upd_elapsed.as_secs_f64().max(1e-9),
        retries,
        phi,
        table_waits: locks.table.waits,
        table_timeouts: locks.table.timeouts,
        table_mean_wait: locks.table.mean_wait(),
        stripe_waits: locks.stripe.waits,
        stripe_timeouts: locks.stripe.timeouts,
        stripe_mean_wait: locks.stripe.mean_wait(),
    })
}

/// E17: sweep lock granularity × workers × updater think time on chain-4;
/// emit the results table and `BENCH_striped.json`.
pub fn e17() -> Result<()> {
    let granularities = [
        LockGranularity::Table,
        LockGranularity::Striped(8),
        LockGranularity::Striped(64),
    ];
    let mut t = Table::new(&[
        "granularity",
        "workers",
        "think",
        "updater p99",
        "p99 vs table",
        "commits/s",
        "tput vs table",
        "first window",
        "retries",
        "lock waits (tbl/stripe)",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    // (workers, think) → the Table-granularity baseline for that cell.
    let mut headline: Vec<String> = Vec::new();

    for think in [Duration::from_micros(200), Duration::from_micros(2_000)] {
        for workers in [1usize, 2, 4] {
            let mut baseline: Option<(Duration, f64, NetEffect)> = None;
            for g in granularities {
                let out = run_best(g, workers, think)?;
                let (base_p99, base_tput, base_phi) = baseline
                    .get_or_insert((out.updater_p99, out.updater_tput, out.phi.clone()))
                    .clone();
                assert_eq!(
                    out.phi, base_phi,
                    "view-delta divergence: {g} vs table at workers={workers}"
                );
                let p99_ratio = out.updater_p99.as_secs_f64() / base_p99.as_secs_f64().max(1e-9);
                let tput_ratio = out.updater_tput / base_tput.max(1e-9);
                t.row(vec![
                    g.to_string(),
                    workers.to_string(),
                    format!("{:?}", think),
                    format!("{:.0} µs", out.updater_p99.as_secs_f64() * 1e6),
                    format!("{:.2}x", p99_ratio),
                    format!("{:.0}", out.updater_tput),
                    format!("{:.2}x", tput_ratio),
                    format!("{:.2} ms", out.first_window.as_secs_f64() * 1e3),
                    out.retries.to_string(),
                    format!("{}/{}", out.table_waits, out.stripe_waits),
                ]);
                json_rows.push(format!(
                    concat!(
                        "    {{\"granularity\": \"{}\", \"workers\": {}, \"think_us\": {}, ",
                        "\"updater_p99_us\": {:.1}, \"p99_vs_table\": {:.3}, ",
                        "\"updater_commits\": {}, \"updater_tput_per_s\": {:.1}, ",
                        "\"tput_vs_table\": {:.3}, \"first_window_ms\": {:.3}, ",
                        "\"retries\": {}, \"view_delta_divergence\": false, ",
                        "\"lock_waits\": {{\"table\": {}, \"stripe\": {}}}, ",
                        "\"lock_timeouts\": {{\"table\": {}, \"stripe\": {}}}, ",
                        "\"mean_wait_us\": {{\"table\": {:.1}, \"stripe\": {:.1}}}}}"
                    ),
                    g,
                    workers,
                    think.as_micros(),
                    out.updater_p99.as_secs_f64() * 1e6,
                    p99_ratio,
                    out.updater_ops,
                    out.updater_tput,
                    tput_ratio,
                    out.first_window.as_secs_f64() * 1e3,
                    out.retries,
                    out.table_waits,
                    out.stripe_waits,
                    out.table_timeouts,
                    out.stripe_timeouts,
                    out.table_mean_wait.as_secs_f64() * 1e6,
                    out.stripe_mean_wait.as_secs_f64() * 1e6,
                ));
                if workers == 4 && g == LockGranularity::Striped(64) {
                    headline.push(format!(
                        "    {{\"think_us\": {}, \"p99_reduction_pct\": {:.1}, \"tput_gain_pct\": {:.1}}}",
                        think.as_micros(),
                        (1.0 - p99_ratio) * 100.0,
                        (tput_ratio - 1.0) * 100.0,
                    ));
                }
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"e17\",\n",
            "  \"description\": \"stripe-granular locking on chain-4: granularity x workers x ",
            "updater think time; updaters on first/last tables, keys disjoint from churn\",\n",
            "  \"chain\": {}, \"seed_keys\": {}, \"churn_commits\": {}, \"measure_ms\": {},\n",
            "  \"criterion_striped64_vs_table_at_4_workers\": [\n{}\n  ],\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        N,
        SEED_KEYS,
        CHURN,
        MEASURE.as_millis(),
        headline.join(",\n"),
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_striped.json", json)
        .map_err(|e| Error::Internal(format!("writing BENCH_striped.json: {e}")))?;

    t.print(&format!(
        "E17: striped locking on chain-{N}, updaters contending the first and last \
         tables with in-txn think; p99/tput ratios are vs table granularity within \
         each (workers, think) cell"
    ));
    println!("  [wrote BENCH_striped.json]");
    Ok(())
}
