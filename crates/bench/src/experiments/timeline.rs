//! E3 / E13 — Figure 3's high-water-mark picture and §5's capture lag.

use super::loaded_two_way;
use crate::Table;
use rolljoin_common::Result;
use rolljoin_core::{
    oracle, roll_to, spawn_apply_driver, spawn_capture_driver, spawn_rolling_driver, TargetRows,
};
use rolljoin_workload::{int_pair_stream, UpdateMix};
use std::time::{Duration, Instant};

/// E3 (Fig. 3): with capture, propagate, and apply all running
/// continuously, sample the four clocks. The invariant of the figure —
/// `mat_time ≤ vd HWM ≤ capture HWM ≤ current` — must hold in every
/// sample, and the MV can be rolled to any point up to the HWM.
pub fn e3() -> Result<()> {
    let (w, ctx, mat) = loaded_two_way("e3", 5_000, 5_000)?;
    let ctx = ctx.with_blocking_capture(Duration::from_millis(1), Duration::from_secs(20));
    let capture = spawn_capture_driver(w.engine.clone(), Duration::from_millis(1), 256);
    let prop = spawn_rolling_driver(
        ctx.clone(),
        mat,
        Box::new(TargetRows { target_rows: 64 }),
        Duration::from_millis(1),
    );
    let apply = spawn_apply_driver(ctx.clone(), Duration::from_millis(20));

    let mut streams = (
        int_pair_stream(w.r, 31, UpdateMix::default(), 5_000),
        int_pair_stream(w.s, 32, UpdateMix::default(), 5_000),
    );
    let mut t = Table::new(&[
        "t (ms)",
        "current csn",
        "capture hwm",
        "vd hwm",
        "mat time",
        "invariant",
    ]);
    let started = Instant::now();
    let mut next_sample = Duration::from_millis(0);
    let mut violations = 0;
    while started.elapsed() < Duration::from_millis(1_200) {
        streams.0.step(&w.engine)?;
        streams.1.step(&w.engine)?;
        // Paced updaters: the point is trailing clocks, not a swamped
        // capture process.
        std::thread::sleep(Duration::from_micros(300));
        if started.elapsed() >= next_sample {
            let (now, cap, hwm, matt) = (
                w.engine.current_csn(),
                w.engine.capture_hwm(),
                ctx.mv.hwm(),
                ctx.mv.mat_time(),
            );
            // The materialization CSN comes from a transaction-consistent
            // scan, not from deltas, so the HWM may legitimately sit at
            // `mat` before capture has seen that commit.
            let ok = matt <= hwm && hwm <= cap.max(mat) && cap <= now;
            if !ok {
                violations += 1;
            }
            t.row(vec![
                started.elapsed().as_millis().to_string(),
                now.to_string(),
                cap.to_string(),
                hwm.to_string(),
                matt.to_string(),
                if ok { "ok" } else { "VIOLATED" }.to_string(),
            ]);
            next_sample += Duration::from_millis(150);
        }
    }
    prop.stop()?;
    apply.stop()?;
    capture.stop()?;
    t.print("E3 (Fig. 3): the four clocks under continuous maintenance");
    println!("invariant violations: {violations}");
    Ok(())
}

/// E13 (§5): a deliberately starved capture process delays the HWM (the
/// roll window narrows) but never correctness — once capture catches up,
/// point-in-time refresh lands exactly on the oracle.
pub fn e13() -> Result<()> {
    let mut t = Table::new(&[
        "capture recs/step",
        "max capture lag (recs)",
        "final hwm trail (csn)",
        "post-catchup roll check",
    ]);
    for recs_per_step in [8usize, 64, 100_000] {
        let (w, ctx, mat) = loaded_two_way(&format!("e13c{recs_per_step}"), 2_000, 2_000)?;
        let ctx = ctx.with_blocking_capture(Duration::from_millis(1), Duration::from_secs(30));
        let capture =
            spawn_capture_driver(w.engine.clone(), Duration::from_millis(2), recs_per_step);
        let prop = spawn_rolling_driver(
            ctx.clone(),
            mat,
            Box::new(TargetRows { target_rows: 32 }),
            Duration::from_millis(1),
        );
        let mut sr = int_pair_stream(w.r, 77, UpdateMix::default(), 2_000);
        let mut ss = int_pair_stream(w.s, 78, UpdateMix::default(), 2_000);
        let mut max_lag = 0u64;
        for i in 0..1_500usize {
            if i % 2 == 0 {
                sr.step(&w.engine)?;
            } else {
                ss.step(&w.engine)?;
            }
            std::thread::sleep(Duration::from_micros(100));
            max_lag = max_lag.max(w.engine.capture_lag());
        }
        let last = w.engine.current_csn();
        let trail = last.saturating_sub(ctx.mv.hwm());
        // Let the pipeline catch up, then verify a PIT roll.
        let deadline = Instant::now() + Duration::from_secs(30);
        while ctx.mv.hwm() < last && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        prop.stop()?;
        capture.stop()?;
        let check = if ctx.mv.hwm() >= last {
            roll_to(&ctx, last)?;
            ctx.engine.capture_catch_up()?;
            let got = oracle::mv_state(&ctx.engine, &ctx.mv)?;
            let want = oracle::view_at(&ctx.engine, &ctx.mv.view, last)?;
            if got == want {
                "ok"
            } else {
                "MISMATCH"
            }
        } else {
            "hwm never caught up"
        };
        t.row(vec![
            recs_per_step.to_string(),
            max_lag.to_string(),
            trail.to_string(),
            check.to_string(),
        ]);
    }
    t.print("E13 (§5): capture lag narrows the roll window but never breaks correctness");
    Ok(())
}
