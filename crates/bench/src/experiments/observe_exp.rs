//! E19 — observability overhead and artifact audit.
//!
//! The same churn + rolling-propagation + roll workload runs under each
//! `ObsConfig` tier. `Off` must price in at a few untaken branches —
//! within noise of the pre-observability code — while `Metrics` (relaxed
//! atomics) and `Full` (spans + journal) are allowed a small constant
//! factor. Under `Full` the run also audits the three artifacts the layer
//! promises: compensation spans parented into the recursion tree, both
//! headline gauges at 0 after the quiesced roll, and one journal entry per
//! rolling step. Results land in `BENCH_obs.json` (EXPERIMENTS.md E19).

use crate::Table;
use rolljoin_common::{Error, Result};
use rolljoin_core::{roll_to, ObsConfig, RollingPropagator, UniformInterval};
use std::time::{Duration, Instant};

/// Seed rows per side (pre-materialization).
const ROWS: usize = 400;
const KEY_DOMAIN: i64 = 64;
/// Mixed single-op churn transactions propagated by the measured phase.
const CHURN: usize = 400;
/// Rolling interval length (CSNs) per relation step.
const DELTA: u64 = 8;
/// Trials per tier; the median-wall trial is reported.
const TRIALS: usize = 5;

struct RunOutcome {
    /// Wall time of the measured phase: drain_to + roll_to.
    wall: Duration,
    spans: usize,
    comp_spans: usize,
    journal_entries: usize,
    gauges_zero: bool,
    verify: String,
}

fn tier_name(obs: ObsConfig) -> &'static str {
    match obs {
        ObsConfig::Off => "off",
        ObsConfig::Metrics => "metrics",
        ObsConfig::Full => "full",
    }
}

fn run_config(obs: ObsConfig, trial: usize) -> Result<RunOutcome> {
    let (w, _, mat) =
        super::loaded_two_way(&format!("e19{}x{trial}", tier_name(obs)), ROWS, KEY_DOMAIN)?;
    let ctx = w.ctx().with_obs_config(obs);
    super::churn_two_way(&w, CHURN, 19, KEY_DOMAIN)?;
    w.engine.capture_catch_up()?;

    let t0 = Instant::now();
    let mut roller = RollingPropagator::new(ctx.clone(), mat);
    let mut policy = UniformInterval(DELTA);
    let hwm = roller.drain_to(w.engine.current_csn(), &mut policy)?;
    roll_to(&ctx, hwm)?;
    let wall = t0.elapsed();

    let spans = ctx.obs.spans.finished();
    let comp_spans = spans
        .iter()
        .filter(|s| s.name == "comp" && s.parent != 0)
        .count();
    let gauges_zero = if obs.metrics_enabled() {
        let prom = ctx.prometheus()?;
        prom.contains("rolljoin_propagation_lag_csn 0\n")
            && prom.contains("rolljoin_view_staleness_csn 0\n")
    } else {
        false
    };
    Ok(RunOutcome {
        wall,
        spans: spans.len(),
        comp_spans,
        journal_entries: ctx.obs.journal.len(),
        gauges_zero,
        verify: super::verify_cell(&ctx),
    })
}

/// Median-wall trial of one tier.
fn run_best(obs: ObsConfig) -> Result<RunOutcome> {
    let mut outs = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        outs.push(run_config(obs, trial)?);
    }
    outs.sort_by_key(|o| o.wall);
    Ok(outs.swap_remove(TRIALS / 2))
}

/// E19: ObsConfig tier sweep; emit the results table and `BENCH_obs.json`.
pub fn e19() -> Result<()> {
    let mut t = Table::new(&[
        "obs",
        "wall",
        "vs off",
        "spans",
        "comp spans",
        "journal",
        "gauges→0",
        "verify",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut base_wall = Duration::ZERO;

    for obs in [ObsConfig::Off, ObsConfig::Metrics, ObsConfig::Full] {
        let out = run_best(obs)?;
        if obs == ObsConfig::Off {
            base_wall = out.wall;
        }
        assert_eq!(out.verify, "ok", "oracle mismatch under {obs:?}");
        if obs == ObsConfig::Full {
            assert!(out.comp_spans > 0, "Full run must trace compensation");
            assert!(out.gauges_zero, "gauges must hit 0 after quiesced roll");
            assert!(out.journal_entries > 0, "Full run must journal steps");
        }
        let ratio = out.wall.as_secs_f64() / base_wall.as_secs_f64().max(1e-9);
        t.row(vec![
            tier_name(obs).to_string(),
            format!("{:.2} ms", out.wall.as_secs_f64() * 1e3),
            format!("{:.2}x", ratio),
            out.spans.to_string(),
            out.comp_spans.to_string(),
            out.journal_entries.to_string(),
            if obs.metrics_enabled() {
                out.gauges_zero.to_string()
            } else {
                "-".to_string()
            },
            out.verify.clone(),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"obs\": \"{}\", \"wall_ms\": {:.3}, \"wall_vs_off\": {:.3}, ",
                "\"overhead_pct\": {:.1}, \"spans\": {}, \"comp_spans\": {}, ",
                "\"journal_entries\": {}, \"gauges_zero\": {}, \"oracle\": \"{}\"}}"
            ),
            tier_name(obs),
            out.wall.as_secs_f64() * 1e3,
            ratio,
            (ratio - 1.0) * 100.0,
            out.spans,
            out.comp_spans,
            out.journal_entries,
            out.gauges_zero,
            out.verify,
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"e19\",\n",
            "  \"description\": \"observability tier sweep on a two-way join: {} churn txns ",
            "rolled in delta={} intervals then drained and applied; wall is the ",
            "drain_to+roll_to phase, median of {} trials\",\n",
            "  \"rows_per_side\": {}, \"key_domain\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        CHURN,
        DELTA,
        TRIALS,
        ROWS,
        KEY_DOMAIN,
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_obs.json", json)
        .map_err(|e| Error::Internal(format!("writing BENCH_obs.json: {e}")))?;

    t.print(&format!(
        "E19: observability overhead ({CHURN} churn txns, rolling delta={DELTA}, \
         median of {TRIALS} trials); wall ratios are vs ObsConfig::Off"
    ));
    println!("  [wrote BENCH_obs.json]");
    Ok(())
}
