//! E20 — keyed time-range delta indexes: selectivity × history depth ×
//! workers.
//!
//! The compensation recursion is where deep delta history hurts most: on
//! a star view, every dimension's forward query spawns a compensation
//! query that re-reads `σ_{mat,t}(Δ^fact)` — and each of *those* spawns
//! further compensations that retain the same deep fact-delta slot, so
//! the raw executor rescans the whole fact history Θ(2^d) times for a
//! history it already propagated forward once. Each of these queries also
//! carries a tiny dimension delta, so with keyed time-range indexes on
//! the fact's foreign-key columns the cascade seeds from the dimension
//! slot and resolves the fact slot as per-key posting probes — reading
//! `|Δ^fact| · sel/dim_size` rows instead of `|Δ^fact|`.
//!
//! This experiment drives exactly that workload: a `DIMS`-dimension star,
//! a deep uniform fact insert history, then `sel` touched keys per
//! dimension, propagated in one `ComputeDelta` window with keyed probing
//! on vs off. Both runs must produce φ-identical view deltas and an
//! oracle-verified rolled MV; the probed run must cut the delta rows
//! entering joins ≥5× on the selective cells.

use crate::Table;
use rolljoin_common::{tup, Error, Result, TimeInterval};
use rolljoin_core::{materialize, roll_to, CompactionPolicy, DeltaWorker, ExecTuning, PropQuery};
use rolljoin_relalg::{net_effect, NetEffect};
use rolljoin_workload::Star;
use std::time::{Duration, Instant};

/// Dimensions of the star — the compensation tree rescans the fact delta
/// once per nonempty-dimension subset, so this sets the raw executor's
/// rescan factor (~2^DIMS).
const DIMS: usize = 4;
/// Rows per dimension (= fact foreign-key domain per dimension).
const DIM_SIZE: usize = 64;
/// Trials per configuration; the median-propagate-wall trial is reported.
const TRIALS: usize = 3;

struct RunOutcome {
    /// Wall time of the single `ComputeDelta` window.
    propagate_wall: Duration,
    /// Delta rows fetched into joins ("rows_in") across the whole window.
    rows_in: u64,
    /// Total rows fetched from any slot.
    rows_read: u64,
    /// View-delta rows written.
    vd_written: u64,
    /// Keyed-probe planner decisions taken / declined.
    probe_decisions: u64,
    scan_decisions: u64,
    /// Rows fetched through keyed posting probes.
    probe_rows: u64,
    /// Fraction of pending delta slots resolved by probes.
    probe_rate: f64,
    /// Posting-map heap footprint at the end of the run.
    postings_bytes: u64,
    /// Net effect of the produced view delta.
    phi: NetEffect,
    /// Oracle verification of the rolled MV ("ok" / "MISMATCH").
    verify: String,
}

/// One configuration: seed a star, replay a deterministic deep fact
/// history plus `sel` touched keys per dimension, then propagate the
/// whole window with keyed delta probing on or off.
fn run_config(
    probe: bool,
    sel: usize,
    depth: usize,
    workers: usize,
    trial: usize,
) -> Result<RunOutcome> {
    let star = Star::setup(
        &format!("e20{}s{sel}d{depth}w{workers}x{trial}", probe as u8),
        DIMS,
        DIM_SIZE,
    )?;
    for col in 0..DIMS {
        star.engine.create_delta_index(star.fact, col)?;
    }
    for dim in &star.dims {
        star.engine.create_delta_index(*dim, 0)?;
    }
    let ctx = star.ctx().with_tuning(
        ExecTuning::default()
            .with_workers(workers)
            .with_compaction(CompactionPolicy::Off)
            .with_delta_probe(probe),
    );
    let mat = materialize(&ctx)?;

    // Deep fact history: one commit per row, foreign keys striding the
    // full dimension domains (uniform, so a k-key probe matches ~k/domain
    // of the history). Identical across probe settings and trials.
    for i in 0..depth {
        let mut fk: Vec<i64> = (0..DIMS)
            .map(|j| ((i * (2 * j + 3) + 7 * j) % DIM_SIZE) as i64)
            .collect();
        fk.push(i as i64); // measure
        let mut txn = ctx.engine.begin();
        txn.insert(
            star.fact,
            rolljoin_common::Tuple::new(
                fk.into_iter()
                    .map(rolljoin_common::Value::Int)
                    .collect::<Vec<_>>(),
            ),
        )?;
        txn.commit()?;
    }
    // Selective dimension churn: `sel` distinct keys per dimension get a
    // new attr row — these are the keys the compensation queries carry
    // into the fact-delta probes.
    for (j, dim) in star.dims.iter().enumerate() {
        for k in 0..sel {
            let pk = ((k * DIM_SIZE / sel) + j) % DIM_SIZE;
            let mut txn = ctx.engine.begin();
            txn.insert(*dim, tup![pk as i64, -(k as i64) - 1])?;
            txn.commit()?;
        }
    }
    let end = ctx.engine.current_csn();
    ctx.engine.capture_catch_up()?;

    let before = ctx.stats.snapshot();
    let t0 = Instant::now();
    let mut worker = DeltaWorker::new();
    worker.enqueue(PropQuery::all_base(star.n()), 1, vec![mat; star.n()], end);
    worker.run_auto(&ctx)?;
    let propagate_wall = t0.elapsed();
    ctx.mv.set_hwm(end);
    let since = ctx.stats.snapshot().since(&before);

    let phi = net_effect(
        ctx.engine
            .vd_range(ctx.mv.vd_table, TimeInterval::new(mat, end))?,
    );
    roll_to(&ctx, end)?;
    let verify = crate::experiments::verify_cell(&ctx);
    Ok(RunOutcome {
        propagate_wall,
        rows_in: since.delta_rows_read,
        rows_read: since.total_rows_read(),
        vd_written: since.vd_rows_written,
        probe_decisions: since.delta_probe_decisions,
        scan_decisions: since.delta_scan_decisions,
        probe_rows: since.delta_probe_rows,
        probe_rate: since.delta_probe_rate(),
        postings_bytes: ctx.engine.delta_postings_bytes(),
        phi,
        verify,
    })
}

/// Median-propagate-wall trial (row counts are deterministic; only wall
/// time is trial-noisy).
fn run_best(probe: bool, sel: usize, depth: usize, workers: usize) -> Result<RunOutcome> {
    let mut outs = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        outs.push(run_config(probe, sel, depth, workers, trial)?);
    }
    outs.sort_by_key(|o| o.propagate_wall);
    Ok(outs.swap_remove(TRIALS / 2))
}

/// E20: sweep probe selectivity × fact-history depth × workers on the
/// star; emit the results table and `BENCH_delta_index.json`.
pub fn e20() -> Result<()> {
    let mut t = Table::new(&[
        "probe",
        "sel keys",
        "depth",
        "workers",
        "propagate wall",
        "wall vs scan",
        "rows_in",
        "reduction",
        "probes",
        "scans",
        "probe rate",
        "postings",
        "verify",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut headline: Vec<String> = Vec::new();
    let mut best_reduction = 0.0f64;

    for sel in [2usize, 16] {
        for depth in [300usize, 1200] {
            for workers in [1usize, 2] {
                let base = run_best(false, sel, depth, workers)?;
                assert_eq!(base.verify, "ok", "oracle mismatch with probing off");
                for (probe, out) in [
                    (false, &base),
                    (true, &run_best(true, sel, depth, workers)?),
                ] {
                    assert_eq!(
                        out.phi, base.phi,
                        "view-delta divergence: probe={probe} vs scan at sel={sel} depth={depth}"
                    );
                    assert_eq!(out.verify, "ok", "oracle mismatch, probe={probe}");
                    let wall_ratio = out.propagate_wall.as_secs_f64()
                        / base.propagate_wall.as_secs_f64().max(1e-9);
                    let reduction = base.rows_in as f64 / (out.rows_in as f64).max(1.0);
                    t.row(vec![
                        if probe { "keyed" } else { "scan" }.to_string(),
                        sel.to_string(),
                        depth.to_string(),
                        workers.to_string(),
                        format!("{:.2} ms", out.propagate_wall.as_secs_f64() * 1e3),
                        format!("{:.2}x", wall_ratio),
                        out.rows_in.to_string(),
                        format!("{:.1}x", reduction),
                        out.probe_decisions.to_string(),
                        out.scan_decisions.to_string(),
                        format!("{:.2}", out.probe_rate),
                        format!("{} B", out.postings_bytes),
                        out.verify.clone(),
                    ]);
                    json_rows.push(format!(
                        concat!(
                            "    {{\"probe\": {}, \"sel_keys\": {}, \"depth\": {}, ",
                            "\"workers\": {}, \"propagate_wall_ms\": {:.3}, ",
                            "\"wall_vs_scan\": {:.3}, \"rows_in\": {}, ",
                            "\"rows_in_reduction\": {:.2}, \"total_rows_read\": {}, ",
                            "\"vd_rows_written\": {}, \"probe_decisions\": {}, ",
                            "\"scan_decisions\": {}, \"probe_rows\": {}, ",
                            "\"probe_rate\": {:.3}, \"postings_bytes\": {}, ",
                            "\"view_delta_divergence\": false, \"oracle\": \"{}\"}}"
                        ),
                        probe,
                        sel,
                        depth,
                        workers,
                        out.propagate_wall.as_secs_f64() * 1e3,
                        wall_ratio,
                        out.rows_in,
                        reduction,
                        out.rows_read,
                        out.vd_written,
                        out.probe_decisions,
                        out.scan_decisions,
                        out.probe_rows,
                        out.probe_rate,
                        out.postings_bytes,
                        out.verify,
                    ));
                    if probe {
                        best_reduction = best_reduction.max(reduction);
                        if sel == 2 {
                            assert!(
                                reduction >= 5.0,
                                "selective cell under 5x: sel={sel} depth={depth} \
                                 workers={workers} reduction={reduction:.2}"
                            );
                            headline.push(format!(
                                concat!(
                                    "    {{\"sel_keys\": {}, \"depth\": {}, \"workers\": {}, ",
                                    "\"rows_in_reduction\": {:.2}, \"wall_vs_scan\": {:.3}}}"
                                ),
                                sel, depth, workers, reduction, wall_ratio,
                            ));
                        }
                    }
                }
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"e20\",\n",
            "  \"description\": \"keyed time-range delta indexes on a {}-dimension star: ",
            "deep uniform fact insert history plus sel touched keys per dimension, one ",
            "ComputeDelta window; keyed probing on vs off, phi-identical and oracle-checked\",\n",
            "  \"dims\": {}, \"dim_size\": {}, \"trials\": {},\n",
            "  \"selective_cells_rows_in_reduction_min_5x\": [\n{}\n  ],\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        DIMS,
        DIMS,
        DIM_SIZE,
        TRIALS,
        headline.join(",\n"),
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_delta_index.json", json)
        .map_err(|e| Error::Internal(format!("writing BENCH_delta_index.json: {e}")))?;

    t.print(&format!(
        "E20: keyed delta-index probe pushdown on a {DIMS}-dim star \
         ({DIM_SIZE} keys/dim); rows_in and wall ratios are vs probing off \
         within each (sel, depth, workers) cell; best reduction {best_reduction:.1}x"
    ));
    println!("  [wrote BENCH_delta_index.json]");
    Ok(())
}
