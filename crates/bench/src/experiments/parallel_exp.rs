//! E16 — the parallel propagation pipeline: worker sweep on chain joins.
//!
//! The paper's propagation step issues many *independent* constituent
//! queries (T(k) = k·(1+T(k−1)) of them for a k-way join) that the
//! prototype executes one after another. Each query spends most of its
//! wall time blocked on S locks behind updater transactions; a pool of
//! workers overlaps those waits (and, on multi-core hosts, the joins
//! themselves). This experiment sweeps the worker count over n-way chain
//! joins under updater contention and reports the propagation wall-clock
//! speedup, the delta-scan cache hit rate, and the updaters' commit
//! latency — the three axes of the parallel pipeline's cost model.

use crate::Table;
use rolljoin_common::{tup, Error, Result};
use rolljoin_core::{materialize, spawn_capture_driver, DeltaWorker, PropQuery};
use rolljoin_workload::Chain;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Updater think time *inside* the transaction — the X lock is held while
/// the updater "computes", which is what maintenance S locks queue behind.
const THINK: Duration = Duration::from_micros(2_000);
/// Distinct join-key values (every insert chains through the view).
const KEYS: i64 = 8;
/// Churn commits to propagate, spread round-robin over the chain tables.
const CHURN: usize = 24;
/// Trials per configuration; the best wall time is reported. Scheduling
/// noise at these millisecond scales only ever *adds* time, so the
/// minimum is the least-noisy estimate of each configuration's cost.
const TRIALS: usize = 3;

struct RunOutcome {
    wall: Duration,
    queries: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_rows: u64,
    busy: Duration,
    updater_p99: Duration,
    updater_ops: usize,
    retries: u64,
}

impl RunOutcome {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Best-wall trial of a configuration, compared at equal work: the
/// propagation tree occasionally comes up short when a query slips through
/// between the updaters' lock holds (its compensation intervals then prune
/// as empty), and an unsaturated tree is cheaper to run. Picking the best
/// wall among the trials that did the *most* queries keeps every worker
/// count honest about the same query tree.
fn run_best(n: usize, workers: usize) -> Result<RunOutcome> {
    let mut outs = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        outs.push(run_config(n, workers, trial)?);
    }
    let maxq = outs.iter().map(|o| o.queries).max().unwrap_or(0);
    outs.retain(|o| o.queries == maxq);
    outs.sort_by_key(|o| o.wall);
    Ok(outs.swap_remove(0))
}

/// One configuration: an n-way chain view, `workers` maintenance workers,
/// one updater thread per table holding X locks with in-transaction think
/// time.
fn run_config(n: usize, workers: usize, trial: usize) -> Result<RunOutcome> {
    let c = Chain::setup(&format!("e16n{n}w{workers}t{trial}"), n)?;
    let ctx = c
        .ctx()
        .with_workers(workers)
        .with_blocking_capture(Duration::from_micros(50), Duration::from_secs(60));
    let mat = materialize(&ctx)?;

    // Seed every table, then churn: the propagation work is identical
    // across worker counts (same commits, same CSNs).
    let mut txn = ctx.engine.begin();
    for t in 0..n {
        for k in 0..KEYS {
            txn.insert(c.tables[t], tup![k, k])?;
        }
    }
    txn.commit()?;
    for i in 0..CHURN {
        let mut txn = ctx.engine.begin();
        txn.insert(c.tables[i % n], tup![(i as i64) % KEYS, (i as i64) % KEYS])?;
        txn.commit()?;
    }
    let end = ctx.engine.current_csn();

    let capture = spawn_capture_driver(ctx.engine.clone(), Duration::from_micros(50), 8_192);

    // Updaters on the *first and last* chain tables: begin → insert
    // (X lock) → think → commit, back to back. A unit reads its delta slot
    // from captured history (no table lock) but S-locks every other slot's
    // base table — so with both ends contended, every constituent query
    // queues behind a held X no matter which slot carries its delta. When
    // an updater commits, the FIFO lock manager grants the whole queued S
    // batch inside `release()`, and the updater's next X request queues
    // behind that batch — so the step alternates strictly: one updater
    // cycle, then one query *per idle worker*. The pool's win is exactly
    // that batch width. Contending only these two tables also keeps the
    // step's work deterministic: their delta intervals are never empty
    // (they expand in every run) while the middle tables receive no
    // commits after `end` (their prune decisions depend only on the
    // pre-measured churn), so every worker count propagates an identical
    // query tree.
    let stop = Arc::new(AtomicBool::new(false));
    let updaters: Vec<_> = [0usize, n - 1]
        .into_iter()
        .map(|u| {
            let engine = ctx.engine.clone();
            let table = c.tables[u];
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut lat: Vec<Duration> = Vec::new();
                let mut k = u as i64;
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    let mut txn = engine.begin();
                    match txn.insert(table, tup![k % KEYS, k % KEYS]) {
                        Ok(_) => {
                            std::thread::sleep(THINK);
                            if txn.commit().is_ok() {
                                lat.push(t0.elapsed());
                            }
                        }
                        Err(_) => drop(txn),
                    }
                    k += 1;
                }
                lat.sort();
                lat
            })
        })
        .collect();

    // The measured step: propagate (mat, end] to the view delta. Lock
    // timeouts (deadlock resolution) re-queue the aborted unit; the
    // worker resumes without re-executing anything that committed.
    let mut worker = DeltaWorker::new();
    worker.enqueue(PropQuery::all_base(n), 1, vec![mat; n], end);
    let mut retries = 0u64;
    let t0 = Instant::now();
    loop {
        match worker.run_auto(&ctx) {
            Ok(()) => break,
            Err(Error::LockTimeout { .. }) => retries += 1,
            Err(e) => return Err(e),
        }
    }
    let wall = t0.elapsed();
    ctx.mv.set_hwm(end);

    stop.store(true, Ordering::Release);
    let mut lat: Vec<Duration> = Vec::new();
    for h in updaters {
        lat.extend(h.join().expect("updater thread panicked"));
    }
    lat.sort();
    capture.stop()?;

    let s = ctx.stats.snapshot();
    let p99 = if lat.is_empty() {
        Duration::ZERO
    } else {
        lat[((lat.len() as f64 - 1.0) * 0.99).round() as usize]
    };
    Ok(RunOutcome {
        wall,
        queries: s.total_queries(),
        cache_hits: s.scan_cache_hits,
        cache_misses: s.scan_cache_misses,
        cache_rows: s.scan_cache_rows,
        busy: Duration::from_nanos(s.worker_busy_nanos),
        updater_p99: p99,
        updater_ops: lat.len(),
        retries,
    })
}

fn json_escape_free(label: &str) -> String {
    label.chars().filter(|c| *c != '"' && *c != '\\').collect()
}

/// E16: sweep workers × chain arity under updater contention; emit the
/// results table and `BENCH_parallel.json`.
pub fn e16() -> Result<()> {
    let mut t = Table::new(&[
        "view",
        "workers",
        "propagation wall",
        "speedup",
        "queries",
        "scan-cache hit rate",
        "rows from cache",
        "updater p99",
        "retries",
    ]);
    let mut json_rows: Vec<String> = Vec::new();

    for n in [3usize, 4, 5] {
        let mut baseline: Option<Duration> = None;
        for workers in [1usize, 2, 4, 8] {
            let out = run_best(n, workers)?;
            let base = *baseline.get_or_insert(out.wall);
            let speedup = base.as_secs_f64() / out.wall.as_secs_f64().max(1e-9);
            t.row(vec![
                format!("chain-{n}"),
                workers.to_string(),
                format!("{:.2} ms", out.wall.as_secs_f64() * 1e3),
                format!("{speedup:.2}x"),
                out.queries.to_string(),
                format!("{:.0}%", out.hit_rate() * 100.0),
                out.cache_rows.to_string(),
                format!("{:?}", out.updater_p99),
                out.retries.to_string(),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"view\": \"{}\", \"workers\": {}, \"wall_ms\": {:.3}, ",
                    "\"speedup\": {:.3}, \"queries\": {}, \"cache_hits\": {}, ",
                    "\"cache_misses\": {}, \"cache_rows\": {}, \"busy_ms\": {:.3}, ",
                    "\"updater_p99_us\": {:.1}, \"updater_commits\": {}, \"retries\": {}}}"
                ),
                json_escape_free(&format!("chain-{n}")),
                workers,
                out.wall.as_secs_f64() * 1e3,
                speedup,
                out.queries,
                out.cache_hits,
                out.cache_misses,
                out.cache_rows,
                out.busy.as_secs_f64() * 1e3,
                out.updater_p99.as_secs_f64() * 1e6,
                out.updater_ops,
                out.retries,
            ));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"e16\",\n  \"description\": \"parallel propagation worker sweep on chain joins under updater contention\",\n  \"think_us\": {},\n  \"churn_commits\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        THINK.as_micros(),
        CHURN,
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_parallel.json", json)
        .map_err(|e| Error::Internal(format!("writing BENCH_parallel.json: {e}")))?;

    t.print(&format!(
        "E16: parallel propagation, {CHURN} churn commits, updaters contending the \
         first and last chain tables ({:?} in-txn think); speedup is vs workers=1 \
         within each view",
        THINK
    ));
    println!("  [wrote BENCH_parallel.json]");
    Ok(())
}
