//! E1 / E2 — Figures 1 and 2: the refresh cost structure.

use super::{churn_two_way, loaded_two_way, verify_cell};
use crate::{ms, timed, Table};
use rolljoin_common::Result;
use rolljoin_core::{full_refresh, roll_to, sync_propagate_eq1, Propagator};

const ROWS: usize = 20_000;
const KEYS: i64 = 20_000;

/// E1 (Fig. 1): incremental refresh beats full recompute for small deltas;
/// the advantage shrinks as the delta approaches the table size.
pub fn e1() -> Result<()> {
    let mut t = Table::new(&[
        "delta frac",
        "updates",
        "incr ms",
        "incr rows read",
        "full ms",
        "full rows read",
        "winner",
        "check",
    ]);
    for frac in [0.001, 0.01, 0.05, 0.2, 0.5] {
        let updates = ((ROWS as f64) * frac) as usize;

        // Incremental: one synchronous Eq. 1 pass + apply. Capture runs
        // continuously in a deployment; catch it up outside the timed
        // region so we measure refresh, not the initial bulk load's
        // one-time capture.
        let (w, ctx, mat) = loaded_two_way(&format!("e1i{updates}"), ROWS, KEYS)?;
        churn_two_way(&w, updates, 42, KEYS)?;
        ctx.engine.capture_catch_up()?;
        let before = ctx.stats.snapshot();
        let (out, d_inc) = timed(|| {
            let out = sync_propagate_eq1(&ctx, mat).unwrap();
            roll_to(&ctx, out.to).unwrap();
            out
        });
        let _ = before;
        let incr_rows = out.rows_read;
        let check_inc = verify_cell(&ctx);

        // Full recompute on an identical twin.
        let (w2, ctx2, _) = loaded_two_way(&format!("e1f{updates}"), ROWS, KEYS)?;
        churn_two_way(&w2, updates, 42, KEYS)?;
        let full_rows = 2 * ROWS + updates; // both base scans (approx.)
        let (_, d_full) = timed(|| full_refresh(&ctx2).unwrap());
        let check_full = verify_cell(&ctx2);

        let winner = if d_inc < d_full {
            "incremental"
        } else {
            "full"
        };
        t.row(vec![
            format!("{frac}"),
            updates.to_string(),
            ms(d_inc),
            incr_rows.to_string(),
            ms(d_full),
            full_rows.to_string(),
            winner.to_string(),
            format!("{check_inc}/{check_full}"),
        ]);
    }
    t.print("E1 (Fig. 1): incremental vs full refresh, 20k×20k two-way join");
    Ok(())
}

/// E2 (Fig. 2): splitting refresh into propagate + apply moves almost all
/// of the cost off the refresh-time critical path — once the delta is
/// staged, apply is cheap.
pub fn e2() -> Result<()> {
    let mut t = Table::new(&[
        "updates",
        "propagate ms (off critical path)",
        "apply ms (refresh-time cost)",
        "monolithic ms",
        "apply share",
        "check",
    ]);
    for updates in [200usize, 1_000, 4_000] {
        // Split: propagate ahead of time, apply on demand.
        let (w, ctx, mat) = loaded_two_way(&format!("e2s{updates}"), ROWS, KEYS)?;
        let end = churn_two_way(&w, updates, 7, KEYS)?;
        ctx.engine.capture_catch_up()?;
        let mut prop = Propagator::new(ctx.clone(), mat);
        let (_, d_prop) = timed(|| prop.propagate_to(end, 64).unwrap());
        let (_, d_apply) = timed(|| roll_to(&ctx, end).unwrap());
        let check = verify_cell(&ctx);

        // Monolithic: everything at refresh time (sync Eq. 1 + apply).
        let (w2, ctx2, mat2) = loaded_two_way(&format!("e2m{updates}"), ROWS, KEYS)?;
        churn_two_way(&w2, updates, 7, KEYS)?;
        ctx2.engine.capture_catch_up()?;
        let (_, d_mono) = timed(|| {
            let out = sync_propagate_eq1(&ctx2, mat2).unwrap();
            roll_to(&ctx2, out.to).unwrap();
        });

        let share = d_apply.as_secs_f64() / (d_prop + d_apply).as_secs_f64();
        t.row(vec![
            updates.to_string(),
            ms(d_prop),
            ms(d_apply),
            ms(d_mono),
            format!("{:.1}%", share * 100.0),
            check,
        ]);
    }
    t.print("E2 (Fig. 2): propagate/apply split — refresh-time cost is the apply share only");
    Ok(())
}
