//! The experiment suite: one entry per paper figure/equation (see
//! DESIGN.md §5 for the mapping and EXPERIMENTS.md for recorded results).

pub mod ablation;
pub mod ablation2;
pub mod apply_exp;
pub mod compaction_exp;
pub mod contention;
pub mod delta_index_exp;
pub mod observe_exp;
pub mod parallel_exp;
pub mod refresh;
pub mod rolling_exp;
pub mod striped_exp;
pub mod sync_async;
pub mod timeline;

use rolljoin_common::Result;
use rolljoin_core::MaintCtx;
use rolljoin_workload::{int_pair_stream, TwoWay, UpdateMix};

/// All experiments, as (id, description, runner).
pub type Experiment = (&'static str, &'static str, fn() -> Result<()>);

/// The registry the harness binary dispatches on.
pub fn all() -> Vec<Experiment> {
    vec![
        ("e1", "Fig. 1 — incremental vs full refresh", refresh::e1),
        (
            "e2",
            "Fig. 2 — propagate/apply split defers cost",
            refresh::e2,
        ),
        (
            "e3",
            "Fig. 3 — HWM trails current time; PIT window",
            timeline::e3,
        ),
        (
            "e4",
            "Eq. 1 vs Eq. 2 — 2^n−1 vs n sync queries",
            sync_async::e4,
        ),
        (
            "e5",
            "Fig. 4 — ComputeDelta query structure & lag cost",
            sync_async::e5,
        ),
        (
            "e6",
            "Figs. 6–7 — queries tile the delta region exactly",
            sync_async::e6,
        ),
        (
            "e7",
            "Figs. 8–9 — Propagate vs RollingPropagate (star)",
            rolling_exp::e7,
        ),
        (
            "e8",
            "§3.3 — interval length δ: per-txn vs total work",
            rolling_exp::e8,
        ),
        (
            "e9",
            "§1/Fig. 11 — contention: updaters vs maintenance",
            contention::e9,
        ),
        (
            "e10",
            "§1 — point-in-time refresh cost & correctness",
            apply_exp::e10,
        ),
        (
            "e11",
            "§3/§6 — summary-delta aggregation extension",
            apply_exp::e11,
        ),
        (
            "e12",
            "§3.3 ablation — min-timestamp rule is load-bearing",
            ablation::e12,
        ),
        (
            "e13",
            "§5 ablation — capture lag delays HWM, not correctness",
            timeline::e13,
        ),
        (
            "e14",
            "ablation — index-probe semi-join pushdown",
            ablation2::e14,
        ),
        ("e15", "ablation — empty-delta subtree skip", ablation2::e15),
        (
            "e16",
            "parallel propagation — worker sweep + scan cache",
            parallel_exp::e16,
        ),
        (
            "e17",
            "striped locking — granularity × workers × think-time",
            striped_exp::e17,
        ),
        (
            "e18",
            "early φ-compaction — policy × Zipf skew × workers",
            compaction_exp::e18,
        ),
        (
            "e19",
            "observability — ObsConfig tier overhead + artifact audit",
            observe_exp::e19,
        ),
        (
            "e20",
            "keyed delta indexes — probe pushdown, selectivity × depth",
            delta_index_exp::e20,
        ),
    ]
}

/// A loaded two-way join: `rows` tuples per side over `key_domain` join
/// keys, materialized, with inline capture caught up.
pub fn loaded_two_way(name: &str, rows: usize, key_domain: i64) -> Result<(TwoWay, MaintCtx, u64)> {
    let w = TwoWay::setup(name)?;
    int_pair_stream(
        w.r,
        1,
        UpdateMix {
            delete_frac: 0.0,
            update_frac: 0.0,
        },
        key_domain,
    )
    .load(&w.engine, rows)?;
    int_pair_stream(
        w.s,
        2,
        UpdateMix {
            delete_frac: 0.0,
            update_frac: 0.0,
        },
        key_domain,
    )
    .load(&w.engine, rows)?;
    let ctx = w.ctx();
    let mat = rolljoin_core::materialize(&ctx)?;
    Ok((w, ctx, mat))
}

/// Apply `n` mixed single-op transactions across both tables of a two-way
/// setup; returns the last commit CSN.
pub fn churn_two_way(w: &TwoWay, n: usize, seed: u64, key_domain: i64) -> Result<u64> {
    let mix = UpdateMix {
        delete_frac: 0.25,
        update_frac: 0.25,
    };
    let mut sr = int_pair_stream(w.r, seed, mix, key_domain);
    let mut ss = int_pair_stream(w.s, seed + 1, mix, key_domain);
    let mut last = 0;
    for i in 0..n {
        last = if i % 2 == 0 {
            sr.step(&w.engine)?
        } else {
            ss.step(&w.engine)?
        };
    }
    Ok(last)
}

/// Verify the MV equals the oracle at its materialization time; returns a
/// ✓/✗ cell.
pub fn verify_cell(ctx: &MaintCtx) -> String {
    ctx.engine.capture_catch_up().unwrap();
    let got = rolljoin_core::oracle::mv_state(&ctx.engine, &ctx.mv).unwrap();
    let want =
        rolljoin_core::oracle::view_at(&ctx.engine, &ctx.mv.view, ctx.mv.mat_time()).unwrap();
    if got == want {
        "ok".to_string()
    } else {
        "MISMATCH".to_string()
    }
}
