//! E9 — the headline experiment: maintenance/updater contention under
//! different maintenance granularities (paper §1, Fig. 11's architecture).

use crate::Table;
use rolljoin_common::Result;
use rolljoin_core::{
    materialize, spawn_capture_driver, spawn_rolling_driver, sync_propagate_eq1, TargetRows,
};
use rolljoin_workload::{aggregate, int_pair_stream, run_updaters, TableStream, TwoWay, UpdateMix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LOAD: usize = 60_000;
const KEYS: i64 = 1_000;
const THREADS: usize = 3;
const OPS_PER_THREAD: u64 = 4_000;

fn setup(name: &str) -> Result<TwoWay> {
    let w = TwoWay::setup(name)?;
    let still = UpdateMix {
        delete_frac: 0.0,
        update_frac: 0.0,
    };
    int_pair_stream(w.r, 11, still, KEYS).load(&w.engine, LOAD)?;
    int_pair_stream(w.s, 12, still, KEYS).load(&w.engine, LOAD)?;
    Ok(w)
}

fn updater_streams(w: &TwoWay) -> Vec<Vec<TableStream>> {
    (0..THREADS)
        .map(|k| {
            vec![
                int_pair_stream(w.r, 100 + k as u64, UpdateMix::default(), KEYS),
                int_pair_stream(w.s, 200 + k as u64, UpdateMix::default(), KEYS),
            ]
        })
        .collect()
}

fn run_mode(t: &mut Table, label: &str, w: &TwoWay) -> Result<()> {
    // Paced updaters: the run lasts a few seconds so maintenance reaches a
    // steady state; the pacing sleep is outside the measured latency.
    let reports = run_updaters(
        &w.engine,
        updater_streams(w),
        OPS_PER_THREAD,
        Duration::from_secs(120),
        Some(Duration::from_micros(100)),
    );
    let rep = aggregate(&reports);
    t.row(vec![
        label.to_string(),
        format!("{:.0}", rep.throughput()),
        format!("{:?}", rep.p50),
        format!("{:?}", rep.p99),
        format!("{:?}", rep.max),
        rep.aborts.to_string(),
    ]);
    Ok(())
}

/// E9: updater latency/throughput under (a) no maintenance, (b) repeated
/// atomic synchronous refresh — the long transaction the paper motivates
/// against — and (c) rolling propagation with bounded-size transactions.
pub fn e9() -> Result<()> {
    let mut t = Table::new(&[
        "maintenance mode",
        "updater txn/s",
        "p50",
        "p99",
        "max",
        "aborts",
    ]);

    // (a) Baseline.
    {
        let w = setup("e9none")?;
        run_mode(&mut t, "none", &w)?;
    }

    // (b) Atomic synchronous Eq. 1 refresh in a loop.
    {
        let w = setup("e9sync")?;
        let ctx = w.ctx();
        let mat = materialize(&ctx)?;
        let stop = Arc::new(AtomicBool::new(false));
        let (s2, ctx2) = (stop.clone(), ctx.clone());
        let refresher = std::thread::spawn(move || {
            // Periodic atomic refresh (every 25 ms), the classic deferred-
            // maintenance deployment the paper argues against.
            let mut from = mat;
            let mut txns = 0u64;
            while !s2.load(Ordering::Acquire) {
                match sync_propagate_eq1(&ctx2, from) {
                    Ok(out) => {
                        from = out.to;
                        txns += 1;
                    }
                    Err(_) => break,
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            txns
        });
        run_mode(&mut t, "atomic sync refresh (Eq. 1)", &w)?;
        stop.store(true, Ordering::Release);
        let txns = refresher.join().unwrap();
        // Patch the row we just wrote with the maintenance counters.
        // (Simpler: re-print maintenance info below.)
        println!("  [atomic sync refresher ran {txns} full-interval refreshes]");
    }

    // (c) Rolling propagation at several transaction-size targets.
    for target_rows in [32usize, 256, 4_096] {
        let w = setup(&format!("e9roll{target_rows}"))?;
        let ctx = w
            .ctx()
            .with_blocking_capture(Duration::from_micros(200), Duration::from_secs(60));
        let mat = materialize(&ctx)?;
        let capture = spawn_capture_driver(w.engine.clone(), Duration::from_micros(200), 8_192);
        let prop = spawn_rolling_driver(
            ctx.clone(),
            mat,
            Box::new(TargetRows { target_rows }),
            Duration::from_micros(500),
        );
        run_mode(&mut t, &format!("rolling, ≈{target_rows} rows/txn"), &w)?;
        prop.stop()?;
        capture.stop()?;
        let s = ctx.stats.snapshot();
        println!(
            "  [rolling ≈{target_rows}: {} maint txns, {} rows read, hwm {} of {}]",
            s.transactions,
            s.total_rows_read(),
            ctx.mv.hwm(),
            w.engine.current_csn()
        );
    }

    t.print(&format!(
        "E9 (§1): updater contention, {THREADS} threads × {OPS_PER_THREAD} txns over {LOAD}-row tables"
    ));
    Ok(())
}
