//! Markdown-ish table rendering for the experiment harness.

/// A simple aligned table printed to stdout (and capturable into
/// `EXPERIMENTS.md`).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a Markdown pipe table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| format!("{:->w$}", "-")).collect();
        out.push_str(&format!("|-{}-|", dashes.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n### {title}\n");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["x", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["200".into(), "3".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[1].starts_with("|-"));
        assert_eq!(lines[2].len(), lines[3].len(), "aligned");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
