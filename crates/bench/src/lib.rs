//! `rolljoin-bench` — the experiment harness regenerating every
//! figure-scenario of *"How To Roll a Join"* (SIGMOD 2000), plus shared
//! helpers for the criterion benches.
//!
//! The paper has no measured evaluation tables — its figures are algorithm
//! and architecture diagrams. Each experiment here regenerates one
//! figure's *scenario* and quantifies the claim attached to it; the
//! mapping is in `DESIGN.md` §5 and the measured outcomes in
//! `EXPERIMENTS.md`. Run everything with `cargo run --release -p
//! rolljoin-bench --bin harness -- all`.

pub mod experiments;
pub mod table;

pub use table::Table;

use std::time::{Duration, Instant};

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Milliseconds with two decimals, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}
