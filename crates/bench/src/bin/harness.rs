//! The experiment harness: regenerates every figure-scenario of
//! *"How To Roll a Join: Asynchronous Incremental View Maintenance"*
//! (Salem, Beyer, Lindsay, Cochrane — SIGMOD 2000).
//!
//! ```text
//! cargo run --release -p rolljoin-bench --bin harness -- all
//! cargo run --release -p rolljoin-bench --bin harness -- e7 e9
//! cargo run --release -p rolljoin-bench --bin harness -- list
//! ```

use rolljoin_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all();

    if args.is_empty() || args[0] == "list" {
        println!("experiments:");
        for (id, desc, _) in &registry {
            println!("  {id:<4} {desc}");
        }
        println!("\nusage: harness [all | <id>...]");
        return;
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failures = 0;
    for want in &selected {
        match registry.iter().find(|(id, _, _)| id == want) {
            Some((id, desc, run)) => {
                println!("\n=== {id}: {desc} ===");
                let t0 = Instant::now();
                match run() {
                    Ok(()) => println!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64()),
                    Err(e) => {
                        eprintln!("[{id} FAILED: {e}]");
                        failures += 1;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {want} (try `harness list`)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
