//! The experiment harness: regenerates every figure-scenario of
//! *"How To Roll a Join: Asynchronous Incremental View Maintenance"*
//! (Salem, Beyer, Lindsay, Cochrane — SIGMOD 2000).
//!
//! ```text
//! cargo run --release -p rolljoin-bench --bin harness -- all
//! cargo run --release -p rolljoin-bench --bin harness -- e7 e9
//! cargo run --release -p rolljoin-bench --bin harness -- list
//! ```
//!
//! Every run is recorded in a harness-level journal (one entry per
//! experiment, with outcome and duration) written to
//! `harness_journal.json`, and outcomes are counted in a metrics registry
//! whose Prometheus rendering accompanies the final summary.

use rolljoin_bench::experiments;
use rolljoin_core::{Journal, JournalEntry, Meter};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = experiments::all();

    if args.is_empty() || args[0] == "list" {
        println!("experiments:");
        for (id, desc, _) in &registry {
            println!("  {id:<4} {desc}");
        }
        println!("\nusage: harness [all | <id>...]");
        return;
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let journal = Journal::new();
    let meter = Meter::new(true);
    let runs = |outcome: &'static str| {
        meter.counter_l(
            "harness_runs_total",
            Some(("outcome", outcome)),
            "Experiment runs by outcome.",
        )
    };
    let wall = meter.histogram(
        "harness_run_wall_us",
        "Wall-clock time per experiment run (µs).",
    );

    for want in &selected {
        match registry.iter().find(|(id, _, _)| id == want) {
            Some((id, desc, run)) => {
                println!("\n=== {id}: {desc} ===");
                let t0 = Instant::now();
                let result = run();
                let elapsed = t0.elapsed();
                wall.observe(elapsed.as_micros() as u64);
                let (outcome, note) = match &result {
                    Ok(()) => ("ok", format!("{id} ok")),
                    Err(e) => ("failed", format!("{id} FAILED: {e}")),
                };
                runs(outcome).inc(1);
                journal.append(
                    JournalEntry::new("experiment")
                        .with_duration_ns(elapsed.as_nanos() as u64)
                        .with_note(note),
                );
                println!(
                    "[{id} {} in {:.1}s]",
                    if result.is_ok() { "done" } else { "FAILED" },
                    elapsed.as_secs_f64()
                );
            }
            None => {
                runs("unknown").inc(1);
                journal.append(
                    JournalEntry::new("experiment")
                        .with_note(format!("{want} unknown experiment (try `harness list`)")),
                );
            }
        }
    }

    // Summary: replay the journal instead of ad-hoc stderr lines.
    let entries = journal.entries();
    let failed: Vec<&JournalEntry> = entries
        .iter()
        .filter(|e| {
            e.note
                .as_deref()
                .is_some_and(|n| n.contains("FAILED") || n.contains("unknown"))
        })
        .collect();
    println!("\n--- harness summary ({} runs) ---", entries.len());
    for e in &failed {
        println!("  ✗ {}", e.note.as_deref().unwrap_or("?"));
    }
    if failed.is_empty() {
        println!("  all experiments passed");
    }
    print!("{}", meter.prometheus());
    match std::fs::write("harness_journal.json", journal.json()) {
        Ok(()) => println!("journal: harness_journal.json ({} entries)", entries.len()),
        Err(e) => println!("(could not write harness_journal.json: {e})"),
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
