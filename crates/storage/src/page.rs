//! Slotted pages.
//!
//! Classic slotted-page layout inside a fixed [`PAGE_SIZE`] byte array:
//!
//! ```text
//! +--------+---------------------+------------------->      <-------------+
//! | header | slot 0 | slot 1 ... |   free space   ...   cell 1 | cell 0   |
//! +--------+---------------------+------------------->      <-------------+
//! ```
//!
//! The header stores the slot count and the offset where the cell area
//! begins. Slots grow upward, cells grow downward. Deleting a record leaves
//! a dead slot (offset 0) that is reused by later inserts; when the cell
//! area is exhausted but dead space exists, [`Page::compact`] defragments.

use rolljoin_common::{Error, Result};

/// Page size in bytes (DB2-ish 8 KiB).
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 4; // slot_count: u16, cell_start: u16
const SLOT_SIZE: usize = 4; // offset: u16, len: u16
const DEAD: u16 = 0;

/// Index of a slot within a page.
pub type SlotId = u16;

/// A fixed-size slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    /// Bytes occupied by dead cells (reclaimable by compaction).
    dead_bytes: u16,
    live: u16,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut p = Page {
            data: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("PAGE_SIZE boxed array"),
            dead_bytes: 0,
            live: 0,
        };
        p.set_slot_count(0);
        p.set_cell_start(PAGE_SIZE as u16);
        p
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn cell_start(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_cell_start(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_pos(slot: SlotId) -> usize {
        HEADER_SIZE + SLOT_SIZE * slot as usize
    }

    fn read_slot(&self, slot: SlotId) -> (u16, u16) {
        let p = Self::slot_pos(slot);
        (
            u16::from_le_bytes([self.data[p], self.data[p + 1]]),
            u16::from_le_bytes([self.data[p + 2], self.data[p + 3]]),
        )
    }

    fn write_slot(&mut self, slot: SlotId, offset: u16, len: u16) {
        let p = Self::slot_pos(slot);
        self.data[p..p + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[p + 2..p + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of live records on the page.
    pub fn live_count(&self) -> u16 {
        self.live
    }

    /// Free bytes available to an insert that can reuse a dead slot, i.e.
    /// contiguous free space plus compactable dead space.
    pub fn usable_space(&self) -> usize {
        self.contiguous_free() + self.dead_bytes as usize
    }

    fn contiguous_free(&self) -> usize {
        self.cell_start() as usize - (HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize)
    }

    fn find_dead_slot(&self) -> Option<SlotId> {
        (0..self.slot_count()).find(|&s| self.read_slot(s).0 == DEAD)
    }

    /// Insert a record; returns its slot, or `None` if it cannot fit even
    /// after compaction (caller should use another page).
    pub fn insert(&mut self, record: &[u8]) -> Option<SlotId> {
        assert!(
            !record.is_empty() && record.len() <= PAGE_SIZE - HEADER_SIZE - SLOT_SIZE,
            "record size {} out of range for page",
            record.len()
        );
        let reuse = self.find_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < record.len() + slot_cost {
            if self.usable_space() >= record.len() + slot_cost {
                self.compact();
            } else {
                return None;
            }
        }
        if self.contiguous_free() < record.len() + slot_cost {
            return None;
        }
        let new_start = self.cell_start() - record.len() as u16;
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.data[new_start as usize..new_start as usize + record.len()].copy_from_slice(record);
        self.set_cell_start(new_start);
        self.write_slot(slot, new_start, record.len() as u16);
        self.live += 1;
        Some(slot)
    }

    /// Read the record in `slot`, or `None` if the slot is dead/out of range.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.read_slot(slot);
        if off == DEAD {
            return None;
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Delete the record in `slot`.
    pub fn delete(&mut self, slot: SlotId) -> Result<()> {
        if slot >= self.slot_count() || self.read_slot(slot).0 == DEAD {
            return Err(Error::Internal(format!("delete of dead slot {slot}")));
        }
        let (_, len) = self.read_slot(slot);
        self.write_slot(slot, DEAD, 0);
        self.dead_bytes += len;
        self.live -= 1;
        Ok(())
    }

    /// Iterate `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Defragment the cell area, preserving slot ids.
    pub fn compact(&mut self) {
        let mut cells: Vec<(SlotId, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        // Rewrite cells from the end of the page downward.
        let mut cursor = PAGE_SIZE as u16;
        for (slot, bytes) in cells.drain(..) {
            cursor -= bytes.len() as u16;
            self.data[cursor as usize..cursor as usize + bytes.len()].copy_from_slice(&bytes);
            self.write_slot(slot, cursor, bytes.len() as u16);
        }
        self.set_cell_start(cursor);
        self.dead_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_marks_dead_and_slot_is_reused() {
        let mut p = Page::new();
        let a = p.insert(b"aaaa").unwrap();
        let _b = p.insert(b"bbbb").unwrap();
        p.delete(a).unwrap();
        assert!(p.get(a).is_none());
        let c = p.insert(b"cc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"cc");
    }

    #[test]
    fn double_delete_is_error() {
        let mut p = Page::new();
        let a = p.insert(b"x").unwrap();
        p.delete(a).unwrap();
        assert!(p.delete(a).is_err());
        assert!(p.delete(99).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert_eq!(n, 8, "8 * (1000+4) + header fits in 8192");
        assert!(p.insert(&rec).is_none());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = Page::new();
        let rec = vec![1u8; 1000];
        let slots: Vec<_> = std::iter::from_fn(|| p.insert(&rec)).collect();
        assert_eq!(slots.len(), 8);
        // Free every other record, then insert something larger than any
        // contiguous hole but smaller than total dead space.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = vec![2u8; 3000];
        let s = p.insert(&big).expect("fits after compaction");
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors unharmed.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn iter_yields_only_live() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        p.delete(a).unwrap();
        let got: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(b, b"b".to_vec())]);
    }
}
