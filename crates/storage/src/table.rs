//! Multiset base tables.
//!
//! A [`BaseTable`] stores tuples in a [`HeapFile`] (duplicates are separate
//! heap records — tables are multisets, paper §2) and maintains a tuple →
//! row-id index so `delete one copy of t` is O(1) in the number of distinct
//! tuples.

use crate::codec;
use crate::heap::{HeapFile, RowId};
use rolljoin_common::{Error, Result, Schema, TableId, Tuple, Value};
use std::collections::HashMap;

/// A multiset of tuples with a fixed schema, an implicit primary (whole
/// tuple) index, and optional secondary indexes on single columns —
/// propagation queries use the latter to probe base tables by the join
/// keys appearing in a delta, instead of scanning (what an index on the
/// join column buys the paper's DB2 prototype).
pub struct BaseTable {
    id: TableId,
    name: String,
    schema: Schema,
    heap: HeapFile,
    index: HashMap<Tuple, Vec<RowId>>,
    /// column → key value → tuple → multiplicity.
    secondary: HashMap<usize, HashMap<Value, HashMap<Tuple, i64>>>,
}

impl BaseTable {
    /// Create an empty table.
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema) -> Self {
        BaseTable {
            id,
            name: name.into(),
            schema,
            heap: HeapFile::new(),
            index: HashMap::new(),
            secondary: HashMap::new(),
        }
    }

    /// Build (or rebuild) a secondary index on `col`.
    pub fn create_index(&mut self, col: usize) -> Result<()> {
        if col >= self.schema.arity() {
            return Err(Error::Invalid(format!(
                "index column {col} out of range for {}",
                self.schema
            )));
        }
        let mut idx: HashMap<Value, HashMap<Tuple, i64>> = HashMap::new();
        for (tuple, rids) in &self.index {
            *idx.entry(tuple.get(col).clone())
                .or_default()
                .entry(tuple.clone())
                .or_insert(0) += rids.len() as i64;
        }
        self.secondary.insert(col, idx);
        Ok(())
    }

    /// Is there a secondary index on `col`?
    pub fn has_index(&self, col: usize) -> bool {
        self.secondary.contains_key(&col)
    }

    /// Columns with secondary indexes, ascending. These are the columns
    /// propagation probes by, so under striped locking a writer must lock
    /// the stripe of each indexed column's value in the tuple it touches.
    pub fn indexed_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.secondary.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Visit every `(tuple, count)` whose `col` equals `key` (index
    /// required) without materializing a per-key vector — probe fetch
    /// paths push matches straight into their output through `f`.
    pub fn for_each_lookup(&self, col: usize, key: &Value, mut f: impl FnMut(&Tuple, i64)) {
        if let Some(m) = self.secondary.get(&col).and_then(|idx| idx.get(key)) {
            for (t, c) in m {
                f(t, *c);
            }
        }
    }

    /// All `(tuple, count)` whose `col` equals `key` (index required).
    pub fn lookup(&self, col: usize, key: &Value) -> Vec<(Tuple, i64)> {
        let mut out = Vec::new();
        self.for_each_lookup(col, key, |t, c| out.push((t.clone(), c)));
        out
    }

    fn index_insert(&mut self, tuple: &Tuple) {
        for (col, idx) in &mut self.secondary {
            *idx.entry(tuple.get(*col).clone())
                .or_default()
                .entry(tuple.clone())
                .or_insert(0) += 1;
        }
    }

    fn index_delete(&mut self, tuple: &Tuple) {
        for (col, idx) in &mut self.secondary {
            let key = tuple.get(*col);
            if let Some(bucket) = idx.get_mut(key) {
                if let Some(c) = bucket.get_mut(tuple) {
                    *c -= 1;
                    if *c == 0 {
                        bucket.remove(tuple);
                    }
                }
                if bucket.is_empty() {
                    idx.remove(key);
                }
            }
        }
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of tuples (counting multiplicity).
    pub fn len(&self) -> u64 {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pages allocated by the underlying heap (for experiment reporting).
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Insert one copy of `tuple`.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.schema.check(&tuple)?;
        let rid = self.heap.insert(&codec::encode_tuple(&tuple));
        self.index_insert(&tuple);
        self.index.entry(tuple).or_default().push(rid);
        Ok(())
    }

    /// Delete one copy of `tuple`. Errors if no copy is present.
    pub fn delete_one(&mut self, tuple: &Tuple) -> Result<()> {
        let rids = self
            .index
            .get_mut(tuple)
            .ok_or_else(|| Error::TupleNotFound {
                table: self.id,
                detail: tuple.to_string(),
            })?;
        let rid = rids.pop().expect("index entries are non-empty");
        if rids.is_empty() {
            self.index.remove(tuple);
        }
        self.heap.delete(rid)?;
        self.index_delete(tuple);
        Ok(())
    }

    /// Multiplicity of `tuple` in the multiset.
    pub fn count_of(&self, tuple: &Tuple) -> u64 {
        self.index.get(tuple).map_or(0, |v| v.len() as u64)
    }

    /// Apply a signed count: insert `n` copies (`n > 0`) or delete `-n`
    /// copies (`n < 0`). Used by the apply process when installing view
    /// deltas into a materialized view. The insert side checks the schema
    /// and encodes the tuple once for all `n` copies — the per-key bulk
    /// path `roll_to` relies on.
    pub fn apply_count(&mut self, tuple: &Tuple, n: i64) -> Result<()> {
        use std::cmp::Ordering;
        match n.cmp(&0) {
            Ordering::Greater => {
                self.schema.check(tuple)?;
                let enc = codec::encode_tuple(tuple);
                let mut rids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    rids.push(self.heap.insert(&enc));
                    self.index_insert(tuple);
                }
                self.index.entry(tuple.clone()).or_default().extend(rids);
            }
            Ordering::Less => {
                let have = self.count_of(tuple) as i64;
                if have < -n {
                    return Err(Error::TupleNotFound {
                        table: self.id,
                        detail: format!("need {} copies of {tuple}, have {have}", -n),
                    });
                }
                for _ in 0..-n {
                    self.delete_one(tuple)?;
                }
            }
            Ordering::Equal => {}
        }
        Ok(())
    }

    /// Scan all tuples (with multiplicity: duplicates appear repeatedly).
    /// Decodes from the heap pages — the real read path.
    pub fn scan(&self) -> Vec<Tuple> {
        self.heap
            .iter()
            .map(|(_, rec)| codec::decode_tuple(rec).expect("heap records are valid tuples"))
            .collect()
    }

    /// Scan as a `tuple → count` multiset map.
    pub fn scan_counts(&self) -> HashMap<Tuple, i64> {
        self.index
            .iter()
            .map(|(t, rids)| (t.clone(), rids.len() as i64))
            .collect()
    }

    /// Number of distinct tuples.
    pub fn distinct(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::{tup, ColumnType};

    fn table() -> BaseTable {
        BaseTable::new(
            TableId(1),
            "r",
            Schema::new([("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
    }

    #[test]
    fn multiset_semantics() {
        let mut t = table();
        t.insert(tup![1, "x"]).unwrap();
        t.insert(tup![1, "x"]).unwrap();
        t.insert(tup![2, "y"]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.count_of(&tup![1, "x"]), 2);
        assert_eq!(t.distinct(), 2);
        t.delete_one(&tup![1, "x"]).unwrap();
        assert_eq!(t.count_of(&tup![1, "x"]), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_of_absent_tuple_errors() {
        let mut t = table();
        assert!(t.delete_one(&tup![9, "z"]).is_err());
    }

    #[test]
    fn schema_enforced_on_insert() {
        let mut t = table();
        assert!(t.insert(tup!["wrong", 1]).is_err());
        assert!(t.insert(tup![1]).is_err());
    }

    #[test]
    fn scan_round_trips_through_pages() {
        let mut t = table();
        for i in 0..3000 {
            t.insert(tup![i, format!("row{i}")]).unwrap();
        }
        let mut rows = t.scan();
        rows.sort();
        assert_eq!(rows.len(), 3000);
        assert_eq!(rows[0], tup![0, "row0"]);
        assert_eq!(rows[2999], tup![2999, "row2999"]);
        assert!(t.page_count() > 1);
    }

    #[test]
    fn apply_count_inserts_and_deletes() {
        let mut t = table();
        t.apply_count(&tup![1, "x"], 3).unwrap();
        assert_eq!(t.count_of(&tup![1, "x"]), 3);
        t.apply_count(&tup![1, "x"], -2).unwrap();
        assert_eq!(t.count_of(&tup![1, "x"]), 1);
        assert!(t.apply_count(&tup![1, "x"], -2).is_err());
        t.apply_count(&tup![1, "x"], 0).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn secondary_index_tracks_changes() {
        let mut t = table();
        t.insert(tup![1, "x"]).unwrap();
        t.create_index(1).unwrap();
        assert!(t.has_index(1));
        assert!(!t.has_index(0));
        assert_eq!(t.indexed_cols(), vec![1]);
        t.insert(tup![2, "x"]).unwrap();
        t.insert(tup![2, "x"]).unwrap();
        t.insert(tup![3, "y"]).unwrap();
        let mut hits = t.lookup(1, &Value::str("x"));
        hits.sort();
        assert_eq!(hits, vec![(tup![1, "x"], 1), (tup![2, "x"], 2)]);
        t.delete_one(&tup![2, "x"]).unwrap();
        let mut hits = t.lookup(1, &Value::str("x"));
        hits.sort();
        assert_eq!(hits, vec![(tup![1, "x"], 1), (tup![2, "x"], 1)]);
        t.delete_one(&tup![1, "x"]).unwrap();
        t.delete_one(&tup![2, "x"]).unwrap();
        assert!(t.lookup(1, &Value::str("x")).is_empty());
        assert_eq!(t.lookup(1, &Value::str("y")), vec![(tup![3, "y"], 1)]);
        assert!(t.lookup(1, &Value::str("z")).is_empty());
        assert!(t.create_index(9).is_err());
    }

    #[test]
    fn scan_counts_matches_scan() {
        let mut t = table();
        t.insert(tup![1, "x"]).unwrap();
        t.insert(tup![1, "x"]).unwrap();
        t.insert(tup![2, "y"]).unwrap();
        let counts = t.scan_counts();
        assert_eq!(counts[&tup![1, "x"]], 2);
        assert_eq!(counts[&tup![2, "y"]], 1);
        assert_eq!(counts.values().sum::<i64>() as u64, t.len());
    }
}
