//! The write-ahead log.
//!
//! Every change made by a transaction is appended as a [`WalRecord`], and a
//! `Commit` record carrying the commit sequence number (and a wallclock
//! timestamp) seals the transaction. The asynchronous **log capture**
//! process (paper §5's DPropR analogue) reads this log to populate the base
//! delta tables — exactly the design the paper's prototype uses instead of
//! triggers, because only at commit is the serialization order known.
//!
//! Records are stored encoded (`[len u32][crc32 u32][payload]`) in an
//! append-only byte buffer; readers decode on the way out, so the binary
//! path is exercised continuously. [`Wal::recover`] replays a prefix of a
//! (possibly torn) log.

use crate::codec;
use parking_lot::Mutex;
use rolljoin_common::{ColumnType, Csn, Error, Result, Schema, TableId, Tuple, TxnId};

/// Log sequence number: index of a record in the log.
pub type Lsn = u64;

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// One tuple inserted into a table.
    Insert {
        txn: TxnId,
        table: TableId,
        tuple: Tuple,
    },
    /// One tuple (one copy) deleted from a table.
    Delete {
        txn: TxnId,
        table: TableId,
        tuple: Tuple,
    },
    /// Transaction commit; `csn` is the commit sequence number and
    /// `wallclock_micros` the real time, mirroring the unit-of-work table's
    /// two notions of time (paper §5).
    Commit {
        txn: TxnId,
        csn: Csn,
        wallclock_micros: u64,
    },
    /// Transaction abort (its changes must be ignored by capture).
    Abort { txn: TxnId },
    /// DDL: a table was created (`is_view_delta` distinguishes view delta
    /// tables from base tables). Logged so recovery can rebuild the
    /// catalog.
    CreateTable {
        id: TableId,
        name: String,
        schema: Schema,
        is_view_delta: bool,
    },
    /// DDL: a secondary index was created on a base table column.
    CreateIndex { table: TableId, col: u32 },
    /// DDL: a keyed time-range index was created on a base table's delta
    /// store column. Logged so recovery re-creates the index before
    /// capture replay back-fills its postings.
    CreateDeltaIndex { table: TableId, col: u32 },
    /// `count` copies of one tuple inserted (`count > 0`) or deleted
    /// (`count < 0`) in a table — the consolidated form `roll_to` emits
    /// when installing per-key net counts, replacing `|count|` individual
    /// `Insert`/`Delete` records.
    Apply {
        txn: TxnId,
        table: TableId,
        count: i64,
        tuple: Tuple,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_CREATE_TABLE: u8 = 6;
const TAG_CREATE_INDEX: u8 = 7;
const TAG_APPLY: u8 = 8;
const TAG_CREATE_DELTA_INDEX: u8 = 9;

fn put_string(buf: &mut Vec<u8>, s: &str) {
    codec::put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = codec::get_varint(buf, pos)? as usize;
    let end = *pos + len;
    let bytes = buf
        .get(*pos..end)
        .ok_or_else(|| Error::WalCorrupt("truncated string".into()))?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::WalCorrupt("invalid utf-8".into()))
}

fn type_tag(t: ColumnType) -> u8 {
    match t {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Str => 3,
    }
}

fn type_from_tag(t: u8) -> Result<ColumnType> {
    Ok(match t {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Str,
        x => return Err(Error::WalCorrupt(format!("unknown column type tag {x}"))),
    })
}

impl WalRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::Commit { txn, .. }
            | WalRecord::Abort { txn }
            | WalRecord::Apply { txn, .. } => *txn,
            WalRecord::CreateTable { .. }
            | WalRecord::CreateIndex { .. }
            | WalRecord::CreateDeltaIndex { .. } => TxnId(0),
        }
    }

    /// Encode the payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            WalRecord::Begin { txn } => {
                buf.push(TAG_BEGIN);
                codec::put_varint(&mut buf, txn.0);
            }
            WalRecord::Insert { txn, table, tuple } => {
                buf.push(TAG_INSERT);
                codec::put_varint(&mut buf, txn.0);
                codec::put_varint(&mut buf, u64::from(table.0));
                buf.extend_from_slice(&codec::encode_tuple(tuple));
            }
            WalRecord::Delete { txn, table, tuple } => {
                buf.push(TAG_DELETE);
                codec::put_varint(&mut buf, txn.0);
                codec::put_varint(&mut buf, u64::from(table.0));
                buf.extend_from_slice(&codec::encode_tuple(tuple));
            }
            WalRecord::Commit {
                txn,
                csn,
                wallclock_micros,
            } => {
                buf.push(TAG_COMMIT);
                codec::put_varint(&mut buf, txn.0);
                codec::put_varint(&mut buf, *csn);
                codec::put_varint(&mut buf, *wallclock_micros);
            }
            WalRecord::Abort { txn } => {
                buf.push(TAG_ABORT);
                codec::put_varint(&mut buf, txn.0);
            }
            WalRecord::CreateTable {
                id,
                name,
                schema,
                is_view_delta,
            } => {
                buf.push(TAG_CREATE_TABLE);
                codec::put_varint(&mut buf, u64::from(id.0));
                put_string(&mut buf, name);
                buf.push(u8::from(*is_view_delta));
                codec::put_varint(&mut buf, schema.arity() as u64);
                for (col, ty) in schema.columns() {
                    put_string(&mut buf, col);
                    buf.push(type_tag(*ty));
                }
            }
            WalRecord::CreateIndex { table, col } => {
                buf.push(TAG_CREATE_INDEX);
                codec::put_varint(&mut buf, u64::from(table.0));
                codec::put_varint(&mut buf, u64::from(*col));
            }
            WalRecord::CreateDeltaIndex { table, col } => {
                buf.push(TAG_CREATE_DELTA_INDEX);
                codec::put_varint(&mut buf, u64::from(table.0));
                codec::put_varint(&mut buf, u64::from(*col));
            }
            WalRecord::Apply {
                txn,
                table,
                count,
                tuple,
            } => {
                buf.push(TAG_APPLY);
                codec::put_varint(&mut buf, txn.0);
                codec::put_varint(&mut buf, u64::from(table.0));
                codec::put_ivarint(&mut buf, *count);
                buf.extend_from_slice(&codec::encode_tuple(tuple));
            }
        }
        buf
    }

    /// Decode a payload produced by [`WalRecord::encode`].
    pub fn decode(buf: &[u8]) -> Result<WalRecord> {
        let mut pos = 0usize;
        let tag = *buf
            .first()
            .ok_or_else(|| Error::WalCorrupt("empty record".into()))?;
        pos += 1;
        let rec = match tag {
            TAG_BEGIN => WalRecord::Begin {
                txn: TxnId(codec::get_varint(buf, &mut pos)?),
            },
            TAG_INSERT | TAG_DELETE => {
                let txn = TxnId(codec::get_varint(buf, &mut pos)?);
                let table = TableId(codec::get_varint(buf, &mut pos)? as u32);
                let tuple = codec::decode_tuple_at(buf, &mut pos)?;
                if tag == TAG_INSERT {
                    WalRecord::Insert { txn, table, tuple }
                } else {
                    WalRecord::Delete { txn, table, tuple }
                }
            }
            TAG_COMMIT => WalRecord::Commit {
                txn: TxnId(codec::get_varint(buf, &mut pos)?),
                csn: codec::get_varint(buf, &mut pos)?,
                wallclock_micros: codec::get_varint(buf, &mut pos)?,
            },
            TAG_ABORT => WalRecord::Abort {
                txn: TxnId(codec::get_varint(buf, &mut pos)?),
            },
            TAG_CREATE_TABLE => {
                let id = TableId(codec::get_varint(buf, &mut pos)? as u32);
                let name = get_string(buf, &mut pos)?;
                let is_view_delta = *buf
                    .get(pos)
                    .ok_or_else(|| Error::WalCorrupt("truncated kind".into()))?
                    != 0;
                pos += 1;
                let arity = codec::get_varint(buf, &mut pos)? as usize;
                if arity > 1 << 16 {
                    return Err(Error::WalCorrupt("implausible schema arity".into()));
                }
                let mut cols = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let col = get_string(buf, &mut pos)?;
                    let tag = *buf
                        .get(pos)
                        .ok_or_else(|| Error::WalCorrupt("truncated type".into()))?;
                    pos += 1;
                    cols.push((col, type_from_tag(tag)?));
                }
                WalRecord::CreateTable {
                    id,
                    name,
                    schema: Schema::new(cols),
                    is_view_delta,
                }
            }
            TAG_CREATE_INDEX => WalRecord::CreateIndex {
                table: TableId(codec::get_varint(buf, &mut pos)? as u32),
                col: codec::get_varint(buf, &mut pos)? as u32,
            },
            TAG_CREATE_DELTA_INDEX => WalRecord::CreateDeltaIndex {
                table: TableId(codec::get_varint(buf, &mut pos)? as u32),
                col: codec::get_varint(buf, &mut pos)? as u32,
            },
            TAG_APPLY => WalRecord::Apply {
                txn: TxnId(codec::get_varint(buf, &mut pos)?),
                table: TableId(codec::get_varint(buf, &mut pos)? as u32),
                count: codec::get_ivarint(buf, &mut pos)?,
                tuple: codec::decode_tuple_at(buf, &mut pos)?,
            },
            t => return Err(Error::WalCorrupt(format!("unknown record tag {t}"))),
        };
        if pos != buf.len() {
            return Err(Error::WalCorrupt("trailing bytes in record".into()));
        }
        Ok(rec)
    }
}

struct WalInner {
    bytes: Vec<u8>,
    /// Byte offset of each record's frame.
    offsets: Vec<usize>,
}

/// The append-only log.
pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal {
            inner: Mutex::new(WalInner {
                bytes: Vec::new(),
                offsets: Vec::new(),
            }),
        }
    }

    /// Append a record, returning its LSN.
    pub fn append(&self, rec: &WalRecord) -> Lsn {
        let payload = rec.encode();
        let crc = codec::crc32(&payload);
        let mut inner = self.inner.lock();
        let lsn = inner.offsets.len() as Lsn;
        let offset = inner.bytes.len();
        inner.offsets.push(offset);
        inner
            .bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        inner.bytes.extend_from_slice(&crc.to_le_bytes());
        inner.bytes.extend_from_slice(&payload);
        lsn
    }

    /// Number of records in the log.
    pub fn len(&self) -> Lsn {
        self.inner.lock().offsets.len() as Lsn
    }

    /// True iff the log has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.inner.lock().bytes.len()
    }

    /// Decode and return records `[from, len)`. Capture calls this to tail
    /// the log.
    pub fn read_from(&self, from: Lsn) -> Result<Vec<WalRecord>> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for idx in (from as usize)..inner.offsets.len() {
            let off = inner.offsets[idx];
            out.push(Self::decode_frame(&inner.bytes, off)?.0);
        }
        Ok(out)
    }

    fn decode_frame(bytes: &[u8], off: usize) -> Result<(WalRecord, usize)> {
        let len_bytes = bytes
            .get(off..off + 4)
            .ok_or_else(|| Error::WalCorrupt("truncated frame length".into()))?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let crc_bytes = bytes
            .get(off + 4..off + 8)
            .ok_or_else(|| Error::WalCorrupt("truncated frame crc".into()))?;
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let payload = bytes
            .get(off + 8..off + 8 + len)
            .ok_or_else(|| Error::WalCorrupt("truncated frame payload".into()))?;
        if codec::crc32(payload) != crc {
            return Err(Error::WalCorrupt(format!("crc mismatch at offset {off}")));
        }
        Ok((WalRecord::decode(payload)?, off + 8 + len))
    }

    /// Snapshot the raw encoded bytes (for recovery tests / persistence).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.inner.lock().bytes.clone()
    }

    /// Replace this log's contents with the decodable prefix of an encoded
    /// image (recovery: the new engine continues appending where the old
    /// one stopped).
    pub fn replace_from_bytes(&self, bytes: &[u8]) -> Result<()> {
        let rebuilt = Wal::from_bytes(bytes)?;
        let mut mine = self.inner.lock();
        let theirs = rebuilt.inner.into_inner();
        mine.bytes = theirs.bytes;
        mine.offsets = theirs.offsets;
        Ok(())
    }

    /// Rebuild a log from an encoded image (the decodable prefix of it —
    /// a torn tail is dropped, as in [`Wal::recover`]), so an engine can
    /// continue appending where the old one stopped.
    pub fn from_bytes(bytes: &[u8]) -> Result<Wal> {
        let mut offsets = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            if off + 8 > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            if off + 8 + len > bytes.len() {
                break;
            }
            Self::decode_frame(bytes, off)?; // validates CRC + payload
            offsets.push(off);
            off += 8 + len;
        }
        Ok(Wal {
            inner: Mutex::new(WalInner {
                bytes: bytes[..off].to_vec(),
                offsets,
            }),
        })
    }

    /// Replay an encoded log image, returning the decodable prefix of
    /// records. A torn tail (truncated final frame) ends the scan cleanly;
    /// a CRC mismatch inside the prefix is an error.
    pub fn recover(bytes: &[u8]) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            // A torn write can leave a partial frame at the tail.
            if off + 8 > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            if off + 8 + len > bytes.len() {
                break;
            }
            match Self::decode_frame(bytes, off) {
                Ok((rec, next)) => {
                    out.push(rec);
                    off = next;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId(1) },
            WalRecord::Insert {
                txn: TxnId(1),
                table: TableId(2),
                tuple: tup![1, "a"],
            },
            WalRecord::Delete {
                txn: TxnId(1),
                table: TableId(2),
                tuple: tup![2, "b"],
            },
            WalRecord::Commit {
                txn: TxnId(1),
                csn: 17,
                wallclock_micros: 1_000_000,
            },
            WalRecord::Abort { txn: TxnId(2) },
            WalRecord::CreateDeltaIndex {
                table: TableId(2),
                col: 1,
            },
            WalRecord::Apply {
                txn: TxnId(3),
                table: TableId(2),
                count: -4,
                tuple: tup![3, "c"],
            },
        ]
    }

    #[test]
    fn record_codec_round_trip() {
        for rec in sample() {
            assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn append_then_read_from() {
        let wal = Wal::new();
        for rec in sample() {
            wal.append(&rec);
        }
        assert_eq!(wal.len(), 7);
        assert_eq!(wal.read_from(0).unwrap(), sample());
        assert_eq!(wal.read_from(3).unwrap(), sample()[3..].to_vec());
        assert_eq!(wal.read_from(7).unwrap(), vec![]);
    }

    #[test]
    fn recover_full_image() {
        let wal = Wal::new();
        for rec in sample() {
            wal.append(&rec);
        }
        let recs = Wal::recover(&wal.snapshot_bytes()).unwrap();
        assert_eq!(recs, sample());
    }

    #[test]
    fn recover_tolerates_torn_tail() {
        let wal = Wal::new();
        for rec in sample() {
            wal.append(&rec);
        }
        let bytes = wal.snapshot_bytes();
        // Chop mid-way through the final frame.
        let cut = bytes.len() - 3;
        let recs = Wal::recover(&bytes[..cut]).unwrap();
        assert_eq!(recs, sample()[..6].to_vec());
    }

    #[test]
    fn recover_detects_bitrot() {
        let wal = Wal::new();
        for rec in sample() {
            wal.append(&rec);
        }
        let mut bytes = wal.snapshot_bytes();
        // Flip a payload bit in the first record (offset 8 is its payload).
        bytes[9] ^= 0x40;
        assert!(Wal::recover(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        let mut enc = WalRecord::Begin { txn: TxnId(1) }.encode();
        enc.push(0);
        assert!(WalRecord::decode(&enc).is_err());
    }
}
