//! The unit-of-work table.
//!
//! Paper §5: DPropR "maintains a separate global table, called the
//! unit-of-work table, which maps the identifier of each relevant
//! transaction to its commit sequence number and commit timestamp. Both the
//! sequence number and the timestamp are consistent with the transaction
//! serialization order, but the sequence numbers are unique, while commit
//! timestamps may not be."
//!
//! We record every committed transaction (the paper notes that without a
//! way to identify *relevant* transactions, all update transactions must be
//! recorded — that is our situation too, and it is cheap).

use parking_lot::RwLock;
use rolljoin_common::{Csn, TxnId};
use std::collections::HashMap;

/// One unit-of-work entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UowEntry {
    pub txn: TxnId,
    pub csn: Csn,
    /// Microseconds since an arbitrary epoch (process start).
    pub wallclock_micros: u64,
}

#[derive(Default)]
struct UowInner {
    by_txn: HashMap<TxnId, UowEntry>,
    /// Entries in CSN order (CSNs are allocated monotonically).
    by_csn: Vec<UowEntry>,
}

/// The unit-of-work table: txn ↔ (CSN, wallclock) mapping.
#[derive(Default)]
pub struct UnitOfWork {
    inner: RwLock<UowInner>,
}

impl UnitOfWork {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a commit. Must be called in CSN order (the commit mutex in
    /// the transaction manager guarantees this).
    pub fn record(&self, txn: TxnId, csn: Csn, wallclock_micros: u64) {
        let mut inner = self.inner.write();
        debug_assert!(
            inner.by_csn.last().is_none_or(|e| e.csn < csn),
            "unit-of-work entries must arrive in CSN order"
        );
        let entry = UowEntry {
            txn,
            csn,
            wallclock_micros,
        };
        inner.by_txn.insert(txn, entry);
        inner.by_csn.push(entry);
    }

    /// CSN of a committed transaction.
    pub fn csn_of(&self, txn: TxnId) -> Option<Csn> {
        self.inner.read().by_txn.get(&txn).map(|e| e.csn)
    }

    /// Full entry for a committed transaction.
    pub fn entry_of(&self, txn: TxnId) -> Option<UowEntry> {
        self.inner.read().by_txn.get(&txn).copied()
    }

    /// Latest CSN whose commit wallclock is ≤ `wallclock_micros`. This is
    /// how callers translate "refresh the view to 5:00 pm" into a CSN roll
    /// target.
    pub fn csn_at_or_before(&self, wallclock_micros: u64) -> Option<Csn> {
        let inner = self.inner.read();
        let idx = inner
            .by_csn
            .partition_point(|e| e.wallclock_micros <= wallclock_micros);
        idx.checked_sub(1).map(|i| inner.by_csn[i].csn)
    }

    /// Wallclock of a given CSN.
    pub fn wallclock_of_csn(&self, csn: Csn) -> Option<u64> {
        let inner = self.inner.read();
        let idx = inner.by_csn.partition_point(|e| e.csn < csn);
        inner
            .by_csn
            .get(idx)
            .filter(|e| e.csn == csn)
            .map(|e| e.wallclock_micros)
    }

    /// Number of recorded commits.
    pub fn len(&self) -> usize {
        self.inner.read().by_csn.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_looks_up() {
        let u = UnitOfWork::new();
        u.record(TxnId(10), 1, 100);
        u.record(TxnId(11), 2, 100); // same wallclock, distinct CSN (paper §5)
        u.record(TxnId(12), 3, 250);
        assert_eq!(u.csn_of(TxnId(11)), Some(2));
        assert_eq!(u.csn_of(TxnId(99)), None);
        assert_eq!(u.wallclock_of_csn(3), Some(250));
        assert_eq!(u.wallclock_of_csn(4), None);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn wallclock_to_csn_translation() {
        let u = UnitOfWork::new();
        u.record(TxnId(1), 1, 100);
        u.record(TxnId(2), 2, 100);
        u.record(TxnId(3), 3, 300);
        assert_eq!(u.csn_at_or_before(99), None);
        assert_eq!(u.csn_at_or_before(100), Some(2), "ties take the later CSN");
        assert_eq!(u.csn_at_or_before(200), Some(2));
        assert_eq!(u.csn_at_or_before(1000), Some(3));
    }
}
