//! Binary encoding of tuples and primitive fields.
//!
//! The same codec backs both the slotted-page heap (tuples at rest) and the
//! write-ahead log (tuples in change records), so a round-trip bug would be
//! caught by either layer's tests — and by the proptest round-trip suite.
//!
//! Layout of an encoded tuple: `varint(arity)` followed by one encoded value
//! per column. Values are a tag byte then a tag-specific payload. Integers
//! use zigzag + LEB128 varints so small values (the common case for keys)
//! stay small on the page.

use rolljoin_common::{Error, Result, Tuple, Value};

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| Error::WalCorrupt("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(Error::WalCorrupt("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed integer so small magnitudes encode small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Read a signed varint.
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(get_varint(buf, pos)?))
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Append one encoded value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_FALSE),
        Value::Bool(true) => buf.push(TAG_TRUE),
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_ivarint(buf, *i);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

/// Read one encoded value, advancing `pos`.
pub fn get_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| Error::WalCorrupt("truncated value tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(get_ivarint(buf, pos)?)),
        TAG_FLOAT => {
            let end = *pos + 8;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| Error::WalCorrupt("truncated float".into()))?;
            *pos = end;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                bytes.try_into().expect("8-byte slice"),
            ))))
        }
        TAG_STR => {
            let len = get_varint(buf, pos)? as usize;
            let end = *pos + len;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| Error::WalCorrupt("truncated string".into()))?;
            *pos = end;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| Error::WalCorrupt("invalid utf-8 in string".into()))?;
            Ok(Value::str(s))
        }
        t => Err(Error::WalCorrupt(format!("unknown value tag {t}"))),
    }
}

/// Encode a whole tuple.
pub fn encode_tuple(tuple: &Tuple) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + tuple.arity() * 4);
    put_varint(&mut buf, tuple.arity() as u64);
    for v in tuple.values() {
        put_value(&mut buf, v);
    }
    buf
}

/// Decode a tuple from the front of `buf`, advancing `pos`.
pub fn decode_tuple_at(buf: &[u8], pos: &mut usize) -> Result<Tuple> {
    let arity = get_varint(buf, pos)? as usize;
    if arity > 1 << 20 {
        return Err(Error::WalCorrupt(format!("implausible arity {arity}")));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf, pos)?);
    }
    Ok(Tuple::from(values))
}

/// Decode a tuple that occupies the entire buffer.
pub fn decode_tuple(buf: &[u8]) -> Result<Tuple> {
    let mut pos = 0;
    let t = decode_tuple_at(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(Error::WalCorrupt(format!(
            "{} trailing bytes after tuple",
            buf.len() - pos
        )));
    }
    Ok(t)
}

/// CRC-32 (IEEE 802.3) used to guard WAL records.
pub fn crc32(data: &[u8]) -> u32 {
    // Small table-less implementation: 8 iterations per byte. WAL appends
    // are not on the critical path of the experiments.
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn ivarint_round_trip() {
        let mut buf = Vec::new();
        for v in [0i64, 1, -1, 63, -64, 1 << 40, i64::MIN, i64::MAX] {
            buf.clear();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_encode_small() {
        let mut buf = Vec::new();
        put_ivarint(&mut buf, -2);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn tuple_round_trip() {
        let t = tup![42, "hello", 2.5, true, Value::Null, -7];
        use rolljoin_common::Value;
        let enc = encode_tuple(&t);
        assert_eq!(decode_tuple(&enc).unwrap(), t);
        let _ = Value::Null; // silence unused import in macro expansion paths
    }

    #[test]
    fn empty_tuple_round_trip() {
        let t = rolljoin_common::Tuple::empty();
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let t = tup![1, "abcdef"];
        let enc = encode_tuple(&t);
        for cut in 0..enc.len() {
            assert!(decode_tuple(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode_tuple(&tup![1]);
        enc.push(0);
        assert!(decode_tuple(&enc).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926 (IEEE).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
