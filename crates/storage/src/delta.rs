//! Delta stores.
//!
//! [`DeltaStore`] is the base-table delta `Δ^R` of paper §2: an append-only
//! sequence of `(timestamp, count, tuple)` change records in commit (CSN)
//! order, populated exclusively by the log-capture process. Because records
//! arrive in CSN order, the paper's `σ_{a,b}` timestamp selection is a
//! binary-search slice, and reading any range at or below the capture
//! high-water mark needs no locks (the range is immutable).
//!
//! [`ViewDeltaStore`] holds a **view** delta. Unlike base deltas, view-delta
//! tuples arrive *out of timestamp order* (asynchronous propagation inserts
//! compensations for old timestamps after newer forward results), so it is
//! keyed by timestamp in a B-tree. Inserts are transactional: the engine
//! records undo positions so an aborted propagation transaction leaves no
//! trace.

use parking_lot::RwLock;
use rolljoin_common::{Csn, DeltaRow, Error, Result, TableId, TimeInterval, Tuple, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot that replaces pruned history: the table's multiset state as
/// of `through`.
#[derive(Default)]
struct DeltaBase {
    through: Csn,
    counts: HashMap<Tuple, i64>,
}

/// Point-in-time copy of a store's φ-compaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Change records folded into an earlier same-tuple record.
    pub rows_merged: u64,
    /// Tuple groups whose counts summed to zero and were dropped outright.
    pub zero_runs_dropped: u64,
    /// Estimated heap bytes released by removed records.
    pub bytes_reclaimed: u64,
}

impl CompactionStats {
    /// Fold another snapshot into this one (aggregation across stores).
    pub fn merge(&mut self, o: &CompactionStats) {
        self.rows_merged += o.rows_merged;
        self.zero_runs_dropped += o.zero_runs_dropped;
        self.bytes_reclaimed += o.bytes_reclaimed;
    }

    /// Total records physically removed (merged duplicates + zero groups).
    pub fn rows_removed(&self) -> u64 {
        self.rows_merged + self.zero_runs_dropped
    }
}

/// Live compaction counters (one set per store).
#[derive(Default)]
struct CompactionCounters {
    rows_merged: AtomicU64,
    zero_runs_dropped: AtomicU64,
    bytes_reclaimed: AtomicU64,
}

impl CompactionCounters {
    fn record(&self, merged: u64, zeros: u64, bytes: u64) {
        self.rows_merged.fetch_add(merged, Ordering::Relaxed);
        self.zero_runs_dropped.fetch_add(zeros, Ordering::Relaxed);
        self.bytes_reclaimed.fetch_add(bytes, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CompactionStats {
        CompactionStats {
            rows_merged: self.rows_merged.load(Ordering::Relaxed),
            zero_runs_dropped: self.zero_runs_dropped.load(Ordering::Relaxed),
            bytes_reclaimed: self.bytes_reclaimed.load(Ordering::Relaxed),
        }
    }
}

/// Rough heap footprint of a tuple's value payload, used only for the
/// `bytes_reclaimed` counter.
fn approx_tuple_bytes(t: &Tuple) -> u64 {
    t.values()
        .iter()
        .map(|v| {
            (std::mem::size_of::<Value>()
                + match v {
                    Value::Str(s) => s.len(),
                    _ => 0,
                }) as u64
        })
        .sum()
}

/// Rough heap footprint of one change record (shallow struct + payload).
fn approx_row_bytes(r: &DeltaRow) -> u64 {
    std::mem::size_of::<DeltaRow>() as u64 + approx_tuple_bytes(&r.tuple)
}

/// One posting: the row's position in the store's CSN-ordered `rows`
/// vector plus its commit timestamp. Lists are kept in (position, csn)
/// ascending order, so a `σ_{a,b}` selection over one key is a
/// binary-search slice of its list.
type Posting = (usize, Csn);

/// Keyed time-range index: per indexed column, `key value → postings`.
///
/// Lock order: every mutator holds `rows`' write lock *before* touching
/// the index, and readers take `rows`' read lock first too, so postings
/// can never dangle — positions are only remapped (prune) or rebuilt
/// (compaction) inside the same critical section that rewrites the rows.
#[derive(Default)]
struct KeyIndex {
    cols: HashMap<usize, HashMap<Value, Vec<Posting>>>,
}

impl KeyIndex {
    /// Add postings for rows appended at `[start..start+n)`.
    fn append(&mut self, rows: &[DeltaRow], start: usize) {
        for (col, map) in &mut self.cols {
            for (i, r) in rows[start..].iter().enumerate() {
                let v = r.tuple.get(*col);
                if *v == Value::Null {
                    continue; // NULL never equi-joins; keep it out of postings
                }
                map.entry(v.clone())
                    .or_default()
                    .push((start + i, r.ts.expect("delta rows are timestamped")));
            }
        }
    }

    /// Rebuild every indexed column's postings from scratch (compaction
    /// rewrote the prefix, so positions and timestamps both moved).
    fn rebuild(&mut self, rows: &[DeltaRow]) {
        for map in self.cols.values_mut() {
            map.clear();
        }
        self.append(rows, 0);
    }

    /// Shift postings left by `pruned` dropped prefix rows, discarding
    /// postings that pointed into the prefix.
    fn remap_pruned(&mut self, pruned: usize) {
        for map in self.cols.values_mut() {
            map.retain(|_, list| {
                list.retain_mut(|(pos, _)| {
                    if *pos < pruned {
                        false
                    } else {
                        *pos -= pruned;
                        true
                    }
                });
                !list.is_empty()
            });
        }
    }

    /// `[lo, hi)` bounds of one key's postings with csn in `(a, b]`.
    fn slice(list: &[Posting], interval: TimeInterval) -> (usize, usize) {
        (
            list.partition_point(|&(_, csn)| csn <= interval.lo),
            list.partition_point(|&(_, csn)| csn <= interval.hi),
        )
    }

    /// Approximate heap bytes held by postings (capacity is ignored; this
    /// feeds a monitoring gauge, not an allocator).
    fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for map in self.cols.values() {
            for (key, list) in map {
                total += std::mem::size_of::<Value>() as u64
                    + match key {
                        Value::Str(s) => s.len() as u64,
                        _ => 0,
                    }
                    + (list.len() * std::mem::size_of::<Posting>()) as u64;
            }
        }
        total
    }
}

/// Append-only, CSN-ordered base-table delta (`Δ^R`).
pub struct DeltaStore {
    table: TableId,
    rows: RwLock<Vec<DeltaRow>>,
    base: RwLock<DeltaBase>,
    /// Highest CSN below which same-tuple records may have been merged
    /// (min-timestamp rule). Reads that dip below it would see rewritten
    /// timestamps, so they are refused like pruned history.
    compacted_through: AtomicU64,
    /// Bumped whenever held rows are rewritten in place (prune or compact);
    /// lets range caches detect that a cached `(table, interval)` entry no
    /// longer matches the store contents.
    version: AtomicU64,
    /// Keyed time-range index (posting lists per indexed column). Always
    /// acquired *after* `rows` — see [`KeyIndex`].
    index: RwLock<KeyIndex>,
    compaction: CompactionCounters,
}

/// Index of the first row with timestamp strictly greater than `t` —
/// equivalently, the count of rows with timestamp ≤ `t`. Rows are in CSN
/// order, so this is a binary search.
fn lower_bound(rows: &[DeltaRow], t: Csn) -> usize {
    rows.partition_point(|r| r.ts.expect("delta rows are timestamped") <= t)
}

/// `[lo, hi)` slice bounds of the records with timestamp in `(a, b]` —
/// the paper's `σ_{a,b}` selection as index arithmetic.
fn interval_bounds(rows: &[DeltaRow], interval: TimeInterval) -> (usize, usize) {
    (
        lower_bound(rows, interval.lo),
        lower_bound(rows, interval.hi),
    )
}

impl DeltaStore {
    pub fn new(table: TableId) -> Self {
        DeltaStore {
            table,
            rows: RwLock::new(Vec::new()),
            base: RwLock::new(DeltaBase::default()),
            compacted_through: AtomicU64::new(0),
            version: AtomicU64::new(0),
            index: RwLock::new(KeyIndex::default()),
            compaction: CompactionCounters::default(),
        }
    }

    /// History at or below this CSN has been folded into a snapshot:
    /// `range`/`reconstruct_at` below it are unavailable.
    pub fn pruned_through(&self) -> Csn {
        self.base.read().through
    }

    /// Highest CSN below which same-tuple records may have been merged.
    pub fn compacted_through(&self) -> Csn {
        self.compacted_through.load(Ordering::Acquire)
    }

    /// The read floor: ranges starting below this (and reconstructions at
    /// times below it) are refused — history there has been pruned away or
    /// rewritten by compaction.
    pub fn floor(&self) -> Csn {
        self.pruned_through().max(self.compacted_through())
    }

    /// Content version: bumped whenever held rows are rewritten in place
    /// (prune or compaction). Range caches key their entries on this so a
    /// rewrite invalidates them.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Compaction counters accumulated over the store's lifetime.
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction.snapshot()
    }

    /// Fold all change records with timestamp ≤ `through` into the base
    /// snapshot, reclaiming their space. Returns the number of records
    /// folded. Maintenance must no longer need ranges starting below
    /// `through` (i.e. every propagation frontier has passed it).
    pub fn prune_through(&self, through: Csn) -> usize {
        let mut rows = self.rows.write();
        let mut base = self.base.write();
        let hi = lower_bound(&rows, through);
        for r in rows.drain(..hi) {
            *base.counts.entry(r.tuple).or_insert(0) += r.count;
        }
        base.counts.retain(|_, c| *c != 0);
        base.through = base.through.max(through);
        if hi > 0 {
            self.index.write().remap_pruned(hi);
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        hi
    }

    /// φ-compact held history: merge same-tuple change records with
    /// timestamp ≤ `lwm` into one record each (counts summed, **minimum**
    /// timestamp kept per the §3.3 rule) and drop groups whose counts sum
    /// to zero. Returns the number of records removed.
    ///
    /// Sound only when `lwm` is a *global low-water mark*: every
    /// propagation frontier and the apply position have passed it, so no
    /// future read's interval starts below `lwm` — any `σ_{a,b}` with
    /// `a ≥ lwm` excludes whole groups and any reconstruction at `t ≥ lwm`
    /// includes whole groups, both of which φ-commute with the merge
    /// (Definition 4.1 linearity). If nothing merges, the store is left
    /// untouched and stays fully readable below `lwm`.
    pub fn compact_through(&self, lwm: Csn) -> usize {
        let mut rows = self.rows.write();
        let hi = lower_bound(&rows, lwm);
        if hi < 2 {
            return 0;
        }
        // Group by tuple in first-occurrence order: rows are CSN-sorted, so
        // the first occurrence carries the group's minimum timestamp and
        // the merged prefix stays timestamp-sorted.
        let mut pos: HashMap<Tuple, usize> = HashMap::with_capacity(hi);
        let mut merged: Vec<DeltaRow> = Vec::with_capacity(hi);
        for r in &rows[..hi] {
            match pos.get(&r.tuple) {
                Some(&i) => merged[i].count += r.count,
                None => {
                    pos.insert(r.tuple.clone(), merged.len());
                    merged.push(r.clone());
                }
            }
        }
        let groups = merged.len();
        let zeros = merged.iter().filter(|r| r.count == 0).count();
        if groups == hi && zeros == 0 {
            return 0;
        }
        merged.retain(|r| r.count != 0);
        let removed = hi - merged.len();
        let before: u64 = rows[..hi].iter().map(approx_row_bytes).sum();
        let after: u64 = merged.iter().map(approx_row_bytes).sum();
        rows.splice(..hi, merged);
        self.index.write().rebuild(&rows);
        self.compaction.record(
            (hi - groups) as u64,
            zeros as u64,
            before.saturating_sub(after),
        );
        self.compacted_through.fetch_max(lwm, Ordering::AcqRel);
        self.version.fetch_add(1, Ordering::AcqRel);
        removed
    }

    /// The base table this delta describes.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Append the changes of one committed transaction. `ts` must be
    /// non-decreasing across calls (capture processes commits in order).
    pub fn append_commit(&self, ts: Csn, changes: impl IntoIterator<Item = (i64, Tuple)>) {
        let mut rows = self.rows.write();
        debug_assert!(
            rows.last().and_then(|r| r.ts).is_none_or(|last| last <= ts),
            "delta rows must be appended in CSN order"
        );
        let start = rows.len();
        for (count, tuple) in changes {
            rows.push(DeltaRow::change(ts, count, tuple));
        }
        if rows.len() > start {
            self.index.write().append(&rows, start);
        }
    }

    /// `σ_{a,b}(Δ^R)`: all change records with timestamp in `(a, b]`.
    /// Bounds are computed first so only the selected slice is cloned.
    pub fn range(&self, interval: TimeInterval) -> Vec<DeltaRow> {
        let rows = self.rows.read();
        let (lo, hi) = interval_bounds(&rows, interval);
        rows[lo..hi].to_vec()
    }

    /// Create a keyed time-range index on `col`, back-filling postings for
    /// already-captured history. Idempotent.
    pub fn create_key_index(&self, col: usize) {
        let rows = self.rows.read();
        let mut index = self.index.write();
        if index.cols.contains_key(&col) {
            return;
        }
        index.cols.insert(col, HashMap::new());
        // Back-fill just the new column (append walks every indexed col,
        // but the others' postings are already position-correct — rebuild
        // via a single-col scratch map instead).
        let map = index.cols.get_mut(&col).expect("just inserted");
        for (i, r) in rows.iter().enumerate() {
            let v = r.tuple.get(col);
            if *v != Value::Null {
                map.entry(v.clone())
                    .or_default()
                    .push((i, r.ts.expect("delta rows are timestamped")));
            }
        }
    }

    /// Whether `col` has a keyed time-range index.
    pub fn has_key_index(&self, col: usize) -> bool {
        self.index.read().cols.contains_key(&col)
    }

    /// Columns carrying a keyed time-range index.
    pub fn indexed_key_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.index.read().cols.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// `σ_{a,b}(Δ^R) ⋉ keys` on `col`: the change records with timestamp
    /// in `(a, b]` whose `col` value is in `keys`, in CSN order — a per-key
    /// binary-search slice of the posting lists instead of a range scan.
    /// `None` when `col` has no key index (caller falls back to
    /// [`DeltaStore::range`]).
    pub fn range_keyed(
        &self,
        interval: TimeInterval,
        col: usize,
        keys: &[Value],
    ) -> Option<Vec<DeltaRow>> {
        let rows = self.rows.read();
        let index = self.index.read();
        let map = index.cols.get(&col)?;
        let mut positions: Vec<usize> = Vec::new();
        for key in keys {
            if let Some(list) = map.get(key) {
                let (lo, hi) = KeyIndex::slice(list, interval);
                positions.extend(list[lo..hi].iter().map(|&(pos, _)| pos));
            }
        }
        // Distinct keys never share a posting, so sorting positions is
        // enough to restore global CSN order (rows are CSN-sorted and the
        // min-timestamp rule downstream depends on it).
        positions.sort_unstable();
        Some(positions.into_iter().map(|p| rows[p].clone()).collect())
    }

    /// Total posting-list length for `keys` on `col` within `(a, b]` — the
    /// exact row count [`DeltaStore::range_keyed`] would return, at binary
    /// search cost. `None` when `col` has no key index.
    pub fn keyed_count_estimate(
        &self,
        interval: TimeInterval,
        col: usize,
        keys: &[Value],
    ) -> Option<usize> {
        let index = self.index.read();
        let map = index.cols.get(&col)?;
        let mut total = 0usize;
        for key in keys {
            if let Some(list) = map.get(key) {
                let (lo, hi) = KeyIndex::slice(list, interval);
                total += hi - lo;
            }
        }
        Some(total)
    }

    /// Approximate heap bytes held by the keyed index's postings (feeds
    /// the `rolljoin_delta_postings_bytes` gauge).
    pub fn postings_bytes(&self) -> u64 {
        self.index.read().approx_bytes()
    }

    /// Number of change records with timestamp in `(a, b]` (cheap; used by
    /// adaptive interval policies).
    pub fn count_in(&self, interval: TimeInterval) -> usize {
        let rows = self.rows.read();
        let (lo, hi) = interval_bounds(&rows, interval);
        hi - lo
    }

    /// Timestamp of the latest captured change (not the capture HWM — a
    /// quiet table's delta can trail the HWM arbitrarily).
    pub fn last_ts(&self) -> Option<Csn> {
        self.rows.read().last().and_then(|r| r.ts)
    }

    /// Timestamp of the `k`-th change record (1-based) strictly after `t`,
    /// if that many exist. Adaptive interval policies use this to size a
    /// propagation interval to a target number of delta rows.
    pub fn nth_ts_after(&self, t: Csn, k: usize) -> Option<Csn> {
        if k == 0 {
            return None;
        }
        let rows = self.rows.read();
        let lo = lower_bound(&rows, t);
        rows.get(lo + k - 1).map(|r| r.ts.expect("timestamped"))
    }

    /// Total number of change records held.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the base table's multiset state at time `t` by
    /// net-effecting `σ_{0,t}(Δ^R)` (Definition 4.1 applied from the empty
    /// table). This is the time-travel primitive used by the test oracle
    /// and by the (paper-acknowledged-unrealizable) Equation 2 baseline —
    /// the rolling algorithms themselves never need it.
    pub fn reconstruct_at(&self, t: Csn) -> Result<HashMap<Tuple, i64>> {
        let rows = self.rows.read();
        let base = self.base.read();
        let floor = base.through.max(self.compacted_through());
        if t < floor {
            return Err(Error::HistoryPruned {
                table: self.table,
                requested: t,
                pruned_through: floor,
            });
        }
        let hi = lower_bound(&rows, t);
        let mut out: HashMap<Tuple, i64> = base.counts.clone();
        for r in &rows[..hi] {
            let e = out.entry(r.tuple.clone()).or_insert(0);
            *e += r.count;
            if *e == 0 {
                out.remove(&r.tuple);
            }
        }
        Ok(out)
    }
}

/// A view delta table, keyed by timestamp.
pub struct ViewDeltaStore {
    table: TableId,
    rows: RwLock<BTreeMap<Csn, Vec<(i64, Tuple)>>>,
    compaction: CompactionCounters,
}

/// Undo handle for transactional view-delta inserts: positions to truncate
/// on abort.
#[derive(Debug, Clone, Copy)]
pub struct VdUndo {
    pub ts: Csn,
    pub index: usize,
}

impl ViewDeltaStore {
    pub fn new(table: TableId) -> Self {
        ViewDeltaStore {
            table,
            rows: RwLock::new(BTreeMap::new()),
            compaction: CompactionCounters::default(),
        }
    }

    /// Compaction counters accumulated over the store's lifetime.
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction.snapshot()
    }

    pub fn table(&self) -> TableId {
        self.table
    }

    /// Insert one view-delta record; returns an undo handle.
    pub fn insert(&self, ts: Csn, count: i64, tuple: Tuple) -> VdUndo {
        let mut rows = self.rows.write();
        let bucket = rows.entry(ts).or_default();
        bucket.push((count, tuple));
        VdUndo {
            ts,
            index: bucket.len() - 1,
        }
    }

    /// Remove a record previously inserted (abort path). Undos must be
    /// applied in reverse insertion order.
    pub fn undo(&self, u: VdUndo) -> Result<()> {
        let mut rows = self.rows.write();
        let bucket = rows
            .get_mut(&u.ts)
            .ok_or_else(|| Error::Internal(format!("vd undo: no bucket at ts {}", u.ts)))?;
        if bucket.len() != u.index + 1 {
            return Err(Error::Internal("vd undo applied out of order".to_string()));
        }
        bucket.pop();
        if bucket.is_empty() {
            rows.remove(&u.ts);
        }
        Ok(())
    }

    /// `σ_{a,b}` over the view delta: records with timestamp in `(a, b]`,
    /// as [`DeltaRow`]s.
    pub fn range(&self, interval: TimeInterval) -> Vec<DeltaRow> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (&ts, bucket) in rows.range((
            std::ops::Bound::Excluded(interval.lo),
            std::ops::Bound::Included(interval.hi),
        )) {
            out.extend(
                bucket
                    .iter()
                    .map(|(count, tuple)| DeltaRow::change(ts, *count, tuple.clone())),
            );
        }
        out
    }

    /// Net effect `φ(σ_{a,b}(VD))`: tuple → summed count, zeros dropped.
    /// This is what the apply process installs into the materialized view.
    pub fn net_range(&self, interval: TimeInterval) -> HashMap<Tuple, i64> {
        let mut out: HashMap<Tuple, i64> = HashMap::new();
        for row in self.range(interval) {
            let e = out.entry(row.tuple).or_insert(0);
            *e += row.count;
        }
        out.retain(|_, c| *c != 0);
        out
    }

    /// Drop all records with timestamp ≤ `t` (space reclamation after the
    /// view has been rolled past them).
    pub fn prune_through(&self, t: Csn) -> usize {
        let mut rows = self.rows.write();
        let keep = rows.split_off(&(t + 1));
        let dropped = rows.values().map(Vec::len).sum();
        *rows = keep;
        dropped
    }

    /// φ-compact all records with timestamp ≤ `t` (the apply position):
    /// merge same-tuple records into one at the group's minimum timestamp,
    /// drop zero-sum groups. Unlike [`ViewDeltaStore::prune_through`] the
    /// net effect of the compacted region is preserved, so `range`/
    /// `net_range` over any interval containing the whole region — in
    /// particular the `(mat_time, target]` windows apply reads, since
    /// `t ≤ mat_time` — are unchanged. Returns records removed.
    pub fn compact_through(&self, t: Csn) -> usize {
        let mut rows = self.rows.write();
        let keep = rows.split_off(&(t + 1));
        let before: usize = rows.values().map(Vec::len).sum();
        if before < 2 {
            rows.extend(keep);
            return 0;
        }
        // Buckets iterate in timestamp order, so a group's first
        // occurrence carries its minimum timestamp (§3.3 rule).
        let mut pos: HashMap<Tuple, usize> = HashMap::with_capacity(before);
        let mut groups: Vec<(Csn, i64, Tuple)> = Vec::with_capacity(before);
        let row_overhead = std::mem::size_of::<(i64, Tuple)>() as u64;
        let mut bytes_before = 0u64;
        for (&ts, bucket) in rows.iter() {
            for (count, tuple) in bucket {
                bytes_before += row_overhead + approx_tuple_bytes(tuple);
                match pos.get(tuple) {
                    Some(&i) => groups[i].1 += *count,
                    None => {
                        pos.insert(tuple.clone(), groups.len());
                        groups.push((ts, *count, tuple.clone()));
                    }
                }
            }
        }
        let n_groups = groups.len();
        let zeros = groups.iter().filter(|g| g.1 == 0).count();
        let mut rebuilt: BTreeMap<Csn, Vec<(i64, Tuple)>> = BTreeMap::new();
        let mut after = 0usize;
        let mut bytes_after = 0u64;
        for (ts, count, tuple) in groups {
            if count == 0 {
                continue;
            }
            bytes_after += row_overhead + approx_tuple_bytes(&tuple);
            rebuilt.entry(ts).or_default().push((count, tuple));
            after += 1;
        }
        rebuilt.extend(keep);
        *rows = rebuilt;
        self.compaction.record(
            (before - n_groups) as u64,
            zeros as u64,
            bytes_before.saturating_sub(bytes_after),
        );
        before - after
    }

    /// Total records held.
    pub fn len(&self) -> usize {
        self.rows.read().values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }
}

/// Counters of one cache (point-in-time copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the range.
    pub misses: u64,
    /// Rows served from cached entries (what the cache saved copying).
    pub rows_served: u64,
    /// Live entries.
    pub entries: u64,
}

impl ScanCacheStats {
    /// Hit fraction in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached range scan: the [`DeltaStore::version`] it was fetched at
/// plus the materialized rows.
type VersionedRows = (u64, Arc<Vec<DeltaRow>>);

#[derive(Default)]
struct ScanCacheInner {
    /// Epoch (the caller's propagation HWM) the live entries were
    /// materialized under.
    epoch: Csn,
    /// Entries carry the version they were fetched at, so a store
    /// rewrite (prune or φ-compaction) makes them unservable.
    ranges: HashMap<(TableId, TimeInterval), VersionedRows>,
}

/// Step-scoped cache of materialized delta-range scans.
///
/// A propagation step executes many constituent queries that re-read the
/// *same* delta ranges (the forward query and every compensation query in
/// its subtree share delta slots). Each [`DeltaStore::range`] call copies
/// the slice; this cache materializes a range once per step and hands out
/// shared read-only [`Arc`]s instead.
///
/// Soundness: a range `(a, b]` with `b` at or below the capture HWM is
/// immutable against *appends* (capture appends in CSN order), but prune
/// and φ-compaction rewrite held rows in place. Every entry therefore
/// records the [`DeltaStore::version`] it was fetched at, and a lookup
/// whose caller-supplied version differs is a miss that *replaces* the
/// stale entry — a cached range can never be served across a rewrite.
/// Epoch advancement is then purely a *memory bound*: when the caller's
/// epoch — the propagation HWM, which advances only as steps complete —
/// moves past the one the entries were computed under, the step that
/// shared them has moved on and the whole cache is dropped
/// ([`ScanCache::advance_epoch`]). The *capture* HWM would be the wrong
/// epoch: it advances on every concurrent updater commit and would evict a
/// live step's working set.
#[derive(Default)]
pub struct ScanCache {
    inner: RwLock<ScanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    rows_served: AtomicU64,
}

impl ScanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The capture HWM the current entries were materialized under.
    pub fn epoch(&self) -> Csn {
        self.inner.read().epoch
    }

    /// Step-scope the cache: when the capture HWM has advanced past the
    /// epoch of the live entries, drop them all. Entries stay correct
    /// regardless (cached ranges are immutable); this bounds memory to one
    /// step's working set.
    pub fn advance_epoch(&self, hwm: Csn) {
        if self.inner.read().epoch >= hwm {
            return;
        }
        let mut inner = self.inner.write();
        if inner.epoch < hwm {
            inner.epoch = hwm;
            inner.ranges.clear();
        }
    }

    /// Look up `(table, interval)` at the store's current content
    /// `version`, materializing it with `fetch` on a miss. A cached entry
    /// fetched at a different version is stale (the store was pruned or
    /// compacted since) and is replaced. Returns the shared rows and
    /// whether this was a hit.
    pub fn get_or_fetch(
        &self,
        table: TableId,
        interval: TimeInterval,
        version: u64,
        fetch: impl FnOnce() -> Result<Vec<DeltaRow>>,
    ) -> Result<(Arc<Vec<DeltaRow>>, bool)> {
        let key = (table, interval);
        if let Some((v, rows)) = self.inner.read().ranges.get(&key) {
            if *v == version {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.rows_served
                    .fetch_add(rows.len() as u64, Ordering::Relaxed);
                return Ok((rows.clone(), true));
            }
        }
        // Materialize outside the write lock; racing fetchers of the same
        // range do duplicate work at most once.
        let rows = Arc::new(fetch()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let entry = inner
            .ranges
            .entry(key)
            .and_modify(|e| {
                // Replace (never keep) an entry from another version —
                // `or_insert` semantics would re-serve the stale rows.
                if e.0 != version {
                    *e = (version, rows.clone());
                }
            })
            .or_insert_with(|| (version, rows.clone()));
        Ok((entry.1.clone(), false))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.read().ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ScanCacheStats {
        ScanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rows_served: self.rows_served.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    #[test]
    fn delta_store_range_is_half_open() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![10])]);
        d.append_commit(3, [(1, tup![30]), (-1, tup![10])]);
        d.append_commit(5, [(1, tup![50])]);
        let r = d.range(TimeInterval::new(1, 3));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|x| x.ts == Some(3)));
        assert_eq!(d.count_in(TimeInterval::new(0, 5)), 4);
        assert_eq!(d.count_in(TimeInterval::new(5, 5)), 0);
        assert_eq!(d.last_ts(), Some(5));
    }

    #[test]
    fn reconstruct_replays_history() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(2, [(-1, tup![1])]);
        d.append_commit(4, [(2, tup![2])]);
        let s0 = d.reconstruct_at(0).unwrap();
        assert!(s0.is_empty());
        let s1 = d.reconstruct_at(1).unwrap();
        assert_eq!(s1[&tup![1]], 1);
        assert_eq!(s1[&tup![2]], 1);
        let s2 = d.reconstruct_at(2).unwrap();
        assert!(!s2.contains_key(&tup![1]), "zero counts dropped");
        let s4 = d.reconstruct_at(4).unwrap();
        assert_eq!(s4[&tup![2]], 3);
    }

    #[test]
    fn prune_folds_history_into_snapshot() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(2, [(-1, tup![1])]);
        d.append_commit(4, [(2, tup![2])]);
        d.append_commit(6, [(1, tup![3])]);
        assert_eq!(d.prune_through(4), 4);
        assert_eq!(d.pruned_through(), 4);
        assert_eq!(d.len(), 1, "only the ts=6 record remains");
        // Reconstruction at or after the prune point still works…
        let s4 = d.reconstruct_at(4).unwrap();
        assert_eq!(s4[&tup![2]], 3);
        assert!(!s4.contains_key(&tup![1]));
        let s6 = d.reconstruct_at(6).unwrap();
        assert_eq!(s6[&tup![3]], 1);
        // …but below it the history is gone.
        assert!(matches!(
            d.reconstruct_at(3),
            Err(Error::HistoryPruned {
                pruned_through: 4,
                ..
            })
        ));
        // Ranges above the prune point are unaffected.
        assert_eq!(d.range(TimeInterval::new(4, 6)).len(), 1);
        // Pruning is idempotent / monotone.
        assert_eq!(d.prune_through(2), 0);
        assert_eq!(d.pruned_through(), 4);
    }

    #[test]
    fn view_delta_out_of_order_inserts_and_range() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(5, 1, tup!["late"]);
        vd.insert(2, -1, tup!["early"]); // compensation for an old time
        vd.insert(5, 1, tup!["late2"]);
        let r = vd.range(TimeInterval::new(0, 5));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].ts, Some(2), "range is timestamp-ordered");
        let r = vd.range(TimeInterval::new(2, 5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn view_delta_net_range_cancels() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(3, 1, tup!["x"]);
        vd.insert(4, -1, tup!["x"]);
        vd.insert(4, 1, tup!["y"]);
        let net = vd.net_range(TimeInterval::new(0, 4));
        assert_eq!(net.len(), 1);
        assert_eq!(net[&tup!["y"]], 1);
    }

    #[test]
    fn view_delta_undo_reverses_insert() {
        let vd = ViewDeltaStore::new(TableId(9));
        let u1 = vd.insert(3, 1, tup!["a"]);
        let u2 = vd.insert(3, 1, tup!["b"]);
        vd.undo(u2).unwrap();
        vd.undo(u1).unwrap();
        assert!(vd.is_empty());
        // Out-of-order undo is an internal error.
        let u3 = vd.insert(3, 1, tup!["a"]);
        let _u4 = vd.insert(3, 1, tup!["b"]);
        assert!(vd.undo(u3).is_err());
    }

    #[test]
    fn scan_cache_hits_and_serves_shared_rows() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![10])]);
        d.append_commit(2, [(1, tup![20])]);
        let cache = ScanCache::new();
        let iv = TimeInterval::new(0, 2);
        let (a, hit) = cache
            .get_or_fetch(TableId(1), iv, d.version(), || Ok(d.range(iv)))
            .unwrap();
        assert!(!hit);
        assert_eq!(a.len(), 2);
        let (b, hit) = cache
            .get_or_fetch(TableId(1), iv, d.version(), || panic!("must not refetch"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same allocation");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.rows_served, s.entries), (1, 1, 2, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scan_cache_epoch_advance_clears() {
        let cache = ScanCache::new();
        let iv = TimeInterval::new(0, 3);
        cache
            .get_or_fetch(TableId(1), iv, 0, || {
                Ok(vec![DeltaRow::change(1, 1, tup![1])])
            })
            .unwrap();
        cache.advance_epoch(3);
        assert_eq!(cache.len(), 0, "newer HWM drops the step's entries");
        assert_eq!(cache.epoch(), 3);
        // Same HWM again: entries from the current step survive.
        cache
            .get_or_fetch(TableId(1), iv, 0, || {
                Ok(vec![DeltaRow::change(1, 1, tup![1])])
            })
            .unwrap();
        cache.advance_epoch(3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scan_cache_version_mismatch_replaces_stale_entry() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![7])]);
        d.append_commit(2, [(-1, tup![7])]);
        d.append_commit(3, [(1, tup![8])]);
        let cache = ScanCache::new();
        let iv = TimeInterval::new(0, 3);
        let v0 = d.version();
        let (a, _) = cache
            .get_or_fetch(TableId(1), iv, v0, || Ok(d.range(iv)))
            .unwrap();
        assert_eq!(a.len(), 3);
        // A rewrite (compaction) bumps the version; the old entry must not
        // be served, and the refetched rows must replace it.
        assert_eq!(d.compact_through(3), 2);
        let v1 = d.version();
        assert_ne!(v0, v1);
        let (b, hit) = cache
            .get_or_fetch(TableId(1), iv, v1, || Ok(d.range(iv)))
            .unwrap();
        assert!(!hit, "stale version must miss");
        assert_eq!(b.len(), 1, "compacted range served after refetch");
        // The replacement is now the live entry for the new version.
        let (c, hit) = cache
            .get_or_fetch(TableId(1), iv, v1, || panic!("must not refetch"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn compact_merges_sums_counts_and_keeps_min_ts() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1])]);
        d.append_commit(2, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(3, [(-1, tup![2])]);
        d.append_commit(5, [(1, tup![1])]);
        // Compact through 3: tup![1] merges (2 rows → 1, min ts 1), tup![2]
        // nets to zero and vanishes; the ts=5 row is above the LWM.
        assert_eq!(d.compact_through(3), 3);
        let rows = d.range(TimeInterval::new(0, 5));
        assert_eq!(rows.len(), 2);
        assert_eq!(
            (rows[0].ts, rows[0].count, &rows[0].tuple),
            (Some(1), 2, &tup![1])
        );
        assert_eq!(rows[1].ts, Some(5));
        let s = d.compaction_stats();
        assert_eq!(s.rows_merged, 2, "one fold for tup![1], one for tup![2]");
        assert_eq!(s.zero_runs_dropped, 1);
        assert!(s.bytes_reclaimed > 0);
        assert_eq!(s.rows_removed(), 3);
    }

    #[test]
    fn compact_preserves_reconstruction_at_and_above_lwm() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(2, [(-1, tup![1])]);
        d.append_commit(4, [(2, tup![2])]);
        let want4 = d.reconstruct_at(4).unwrap();
        assert!(d.compact_through(4) > 0);
        assert_eq!(d.reconstruct_at(4).unwrap(), want4);
        assert_eq!(d.compacted_through(), 4);
        assert_eq!(d.floor(), 4);
        // Below the LWM timestamps were rewritten: refuse, like pruning.
        assert!(matches!(
            d.reconstruct_at(2),
            Err(Error::HistoryPruned {
                pruned_through: 4,
                ..
            })
        ));
    }

    #[test]
    fn compact_noop_leaves_history_readable() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1])]);
        d.append_commit(2, [(1, tup![2])]);
        let v = d.version();
        assert_eq!(d.compact_through(2), 0, "distinct tuples: nothing merges");
        assert_eq!(d.compacted_through(), 0, "floor not raised on a no-op");
        assert_eq!(d.version(), v, "no rewrite, no invalidation");
        assert_eq!(d.reconstruct_at(1).unwrap().len(), 1);
    }

    #[test]
    fn recompaction_merges_across_earlier_lwm() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1])]);
        d.append_commit(2, [(1, tup![1])]);
        assert_eq!(d.compact_through(2), 1);
        d.append_commit(5, [(1, tup![1])]);
        // The hot key keeps collapsing into the single min-ts row.
        assert_eq!(d.compact_through(5), 1);
        let rows = d.range(TimeInterval::new(0, 9));
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].ts, rows[0].count), (Some(1), 3));
    }

    #[test]
    fn view_delta_compact_merges_below_apply_position() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(1, 1, tup!["x"]);
        vd.insert(2, -1, tup!["x"]);
        vd.insert(2, 1, tup!["y"]);
        vd.insert(3, 2, tup!["y"]);
        vd.insert(7, 1, tup!["z"]);
        let net_all = vd.net_range(TimeInterval::new(0, 7));
        assert_eq!(vd.compact_through(3), 3, "x nets to zero, y folds to one");
        assert_eq!(vd.len(), 2);
        let rows = vd.range(TimeInterval::new(0, 7));
        assert_eq!(rows[0], DeltaRow::change(2, 3, tup!["y"]), "min ts kept");
        assert_eq!(vd.net_range(TimeInterval::new(0, 7)), net_all);
        let s = vd.compaction_stats();
        assert_eq!((s.rows_merged, s.zero_runs_dropped), (2, 1));
        assert!(s.bytes_reclaimed > 0);
    }

    #[test]
    fn key_index_range_keyed_matches_filtered_scan() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![7, 70]), (1, tup![8, 80])]);
        d.append_commit(3, [(-1, tup![7, 70]), (1, tup![9, 90])]);
        d.create_key_index(0);
        assert!(d.has_key_index(0));
        assert!(!d.has_key_index(1));
        assert_eq!(d.indexed_key_cols(), vec![0]);
        d.append_commit(5, [(1, tup![7, 71])]);
        let iv = TimeInterval::new(0, 5);
        let keys = [Value::Int(7)];
        let got = d.range_keyed(iv, 0, &keys).unwrap();
        let want: Vec<DeltaRow> = d
            .range(iv)
            .into_iter()
            .filter(|r| *r.tuple.get(0) == Value::Int(7))
            .collect();
        assert_eq!(got, want, "keyed slice equals the filtered scan");
        assert_eq!(d.keyed_count_estimate(iv, 0, &keys), Some(got.len()));
        // The (a, b] bounds cut posting lists, not just the scan.
        let tight = TimeInterval::new(1, 3);
        assert_eq!(d.range_keyed(tight, 0, &keys).unwrap().len(), 1);
        assert_eq!(d.keyed_count_estimate(tight, 0, &keys), Some(1));
        // Unindexed column: caller must fall back to a scan.
        assert!(d.range_keyed(iv, 1, &keys).is_none());
        assert!(d.keyed_count_estimate(iv, 1, &keys).is_none());
        assert!(d.postings_bytes() > 0);
    }

    #[test]
    fn key_index_multi_key_output_stays_csn_ordered() {
        let d = DeltaStore::new(TableId(1));
        d.create_key_index(0);
        d.append_commit(1, [(1, tup![2, 0])]);
        d.append_commit(2, [(1, tup![1, 0])]);
        d.append_commit(3, [(1, tup![2, 1])]);
        let got = d
            .range_keyed(TimeInterval::new(0, 3), 0, &[Value::Int(1), Value::Int(2)])
            .unwrap();
        let ts: Vec<_> = got.iter().map(|r| r.ts.unwrap()).collect();
        assert_eq!(ts, vec![1, 2, 3], "merged postings stay CSN-sorted");
    }

    #[test]
    fn key_index_skips_null_keys() {
        let d = DeltaStore::new(TableId(1));
        d.create_key_index(0);
        d.append_commit(1, [(1, Tuple::new([Value::Null, Value::Int(9)]))]);
        d.append_commit(2, [(1, tup![4, 9])]);
        let iv = TimeInterval::new(0, 2);
        assert_eq!(d.range_keyed(iv, 0, &[Value::Null]).unwrap().len(), 0);
        assert_eq!(d.range_keyed(iv, 0, &[Value::Int(4)]).unwrap().len(), 1);
    }

    #[test]
    fn key_index_survives_prune_remap() {
        let d = DeltaStore::new(TableId(1));
        d.create_key_index(0);
        d.append_commit(1, [(1, tup![1, 0])]);
        d.append_commit(2, [(1, tup![2, 0])]);
        d.append_commit(4, [(1, tup![1, 1]), (1, tup![3, 0])]);
        d.append_commit(6, [(1, tup![1, 2])]);
        assert_eq!(d.prune_through(2), 2);
        let iv = TimeInterval::new(2, 6);
        let keys = [Value::Int(1)];
        let got = d.range_keyed(iv, 0, &keys).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(
            got.iter().map(|r| r.ts.unwrap()).collect::<Vec<_>>(),
            vec![4, 6]
        );
        assert_eq!(d.keyed_count_estimate(iv, 0, &keys), Some(2));
        // tup![2, 0]'s posting pointed into the pruned prefix and is gone.
        assert_eq!(d.keyed_count_estimate(iv, 0, &[Value::Int(2)]), Some(0));
    }

    #[test]
    fn key_index_rebuilt_by_compaction() {
        let d = DeltaStore::new(TableId(1));
        d.create_key_index(0);
        d.append_commit(1, [(1, tup![1, 0])]);
        d.append_commit(2, [(1, tup![1, 0]), (1, tup![2, 0])]);
        d.append_commit(3, [(-1, tup![2, 0])]);
        d.append_commit(5, [(1, tup![1, 0])]);
        assert_eq!(d.compact_through(3), 3);
        let iv = TimeInterval::new(0, 5);
        let got = d.range_keyed(iv, 0, &[Value::Int(1)]).unwrap();
        assert_eq!(got, d.range(iv), "only key 1 survives compaction");
        assert_eq!((got[0].ts, got[0].count), (Some(1), 2), "min ts kept");
        // Key 2 netted to zero: postings must not resurrect it.
        assert_eq!(d.keyed_count_estimate(iv, 0, &[Value::Int(2)]), Some(0));
    }

    #[test]
    fn create_key_index_backfills_and_is_idempotent() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![5, 0])]);
        d.append_commit(2, [(1, tup![5, 1])]);
        d.create_key_index(0);
        d.create_key_index(0);
        assert_eq!(
            d.keyed_count_estimate(TimeInterval::new(0, 2), 0, &[Value::Int(5)]),
            Some(2)
        );
    }

    #[test]
    fn prune_drops_old_records() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(1, 1, tup![1]);
        vd.insert(2, 1, tup![2]);
        vd.insert(3, 1, tup![3]);
        assert_eq!(vd.prune_through(2), 2);
        assert_eq!(vd.len(), 1);
        assert_eq!(vd.range(TimeInterval::new(0, 10)).len(), 1);
    }
}
