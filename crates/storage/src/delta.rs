//! Delta stores.
//!
//! [`DeltaStore`] is the base-table delta `Δ^R` of paper §2: an append-only
//! sequence of `(timestamp, count, tuple)` change records in commit (CSN)
//! order, populated exclusively by the log-capture process. Because records
//! arrive in CSN order, the paper's `σ_{a,b}` timestamp selection is a
//! binary-search slice, and reading any range at or below the capture
//! high-water mark needs no locks (the range is immutable).
//!
//! [`ViewDeltaStore`] holds a **view** delta. Unlike base deltas, view-delta
//! tuples arrive *out of timestamp order* (asynchronous propagation inserts
//! compensations for old timestamps after newer forward results), so it is
//! keyed by timestamp in a B-tree. Inserts are transactional: the engine
//! records undo positions so an aborted propagation transaction leaves no
//! trace.

use parking_lot::RwLock;
use rolljoin_common::{Csn, DeltaRow, Error, Result, TableId, TimeInterval, Tuple};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot that replaces pruned history: the table's multiset state as
/// of `through`.
#[derive(Default)]
struct DeltaBase {
    through: Csn,
    counts: HashMap<Tuple, i64>,
}

/// Append-only, CSN-ordered base-table delta (`Δ^R`).
pub struct DeltaStore {
    table: TableId,
    rows: RwLock<Vec<DeltaRow>>,
    base: RwLock<DeltaBase>,
}

/// Index of the first row with timestamp strictly greater than `t` —
/// equivalently, the count of rows with timestamp ≤ `t`. Rows are in CSN
/// order, so this is a binary search.
fn lower_bound(rows: &[DeltaRow], t: Csn) -> usize {
    rows.partition_point(|r| r.ts.expect("delta rows are timestamped") <= t)
}

/// `[lo, hi)` slice bounds of the records with timestamp in `(a, b]` —
/// the paper's `σ_{a,b}` selection as index arithmetic.
fn interval_bounds(rows: &[DeltaRow], interval: TimeInterval) -> (usize, usize) {
    (
        lower_bound(rows, interval.lo),
        lower_bound(rows, interval.hi),
    )
}

impl DeltaStore {
    pub fn new(table: TableId) -> Self {
        DeltaStore {
            table,
            rows: RwLock::new(Vec::new()),
            base: RwLock::new(DeltaBase::default()),
        }
    }

    /// History at or below this CSN has been folded into a snapshot:
    /// `range`/`reconstruct_at` below it are unavailable.
    pub fn pruned_through(&self) -> Csn {
        self.base.read().through
    }

    /// Fold all change records with timestamp ≤ `through` into the base
    /// snapshot, reclaiming their space. Returns the number of records
    /// folded. Maintenance must no longer need ranges starting below
    /// `through` (i.e. every propagation frontier has passed it).
    pub fn prune_through(&self, through: Csn) -> usize {
        let mut rows = self.rows.write();
        let mut base = self.base.write();
        let hi = lower_bound(&rows, through);
        for r in rows.drain(..hi) {
            *base.counts.entry(r.tuple).or_insert(0) += r.count;
        }
        base.counts.retain(|_, c| *c != 0);
        base.through = base.through.max(through);
        hi
    }

    /// The base table this delta describes.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Append the changes of one committed transaction. `ts` must be
    /// non-decreasing across calls (capture processes commits in order).
    pub fn append_commit(&self, ts: Csn, changes: impl IntoIterator<Item = (i64, Tuple)>) {
        let mut rows = self.rows.write();
        debug_assert!(
            rows.last().and_then(|r| r.ts).is_none_or(|last| last <= ts),
            "delta rows must be appended in CSN order"
        );
        for (count, tuple) in changes {
            rows.push(DeltaRow::change(ts, count, tuple));
        }
    }

    /// `σ_{a,b}(Δ^R)`: all change records with timestamp in `(a, b]`.
    /// Bounds are computed first so only the selected slice is cloned.
    pub fn range(&self, interval: TimeInterval) -> Vec<DeltaRow> {
        let rows = self.rows.read();
        let (lo, hi) = interval_bounds(&rows, interval);
        rows[lo..hi].to_vec()
    }

    /// Number of change records with timestamp in `(a, b]` (cheap; used by
    /// adaptive interval policies).
    pub fn count_in(&self, interval: TimeInterval) -> usize {
        let rows = self.rows.read();
        let (lo, hi) = interval_bounds(&rows, interval);
        hi - lo
    }

    /// Timestamp of the latest captured change (not the capture HWM — a
    /// quiet table's delta can trail the HWM arbitrarily).
    pub fn last_ts(&self) -> Option<Csn> {
        self.rows.read().last().and_then(|r| r.ts)
    }

    /// Timestamp of the `k`-th change record (1-based) strictly after `t`,
    /// if that many exist. Adaptive interval policies use this to size a
    /// propagation interval to a target number of delta rows.
    pub fn nth_ts_after(&self, t: Csn, k: usize) -> Option<Csn> {
        if k == 0 {
            return None;
        }
        let rows = self.rows.read();
        let lo = lower_bound(&rows, t);
        rows.get(lo + k - 1).map(|r| r.ts.expect("timestamped"))
    }

    /// Total number of change records held.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the base table's multiset state at time `t` by
    /// net-effecting `σ_{0,t}(Δ^R)` (Definition 4.1 applied from the empty
    /// table). This is the time-travel primitive used by the test oracle
    /// and by the (paper-acknowledged-unrealizable) Equation 2 baseline —
    /// the rolling algorithms themselves never need it.
    pub fn reconstruct_at(&self, t: Csn) -> Result<HashMap<Tuple, i64>> {
        let rows = self.rows.read();
        let base = self.base.read();
        if t < base.through {
            return Err(Error::HistoryPruned {
                table: self.table,
                requested: t,
                pruned_through: base.through,
            });
        }
        let hi = lower_bound(&rows, t);
        let mut out: HashMap<Tuple, i64> = base.counts.clone();
        for r in &rows[..hi] {
            let e = out.entry(r.tuple.clone()).or_insert(0);
            *e += r.count;
            if *e == 0 {
                out.remove(&r.tuple);
            }
        }
        Ok(out)
    }
}

/// A view delta table, keyed by timestamp.
pub struct ViewDeltaStore {
    table: TableId,
    rows: RwLock<BTreeMap<Csn, Vec<(i64, Tuple)>>>,
}

/// Undo handle for transactional view-delta inserts: positions to truncate
/// on abort.
#[derive(Debug, Clone, Copy)]
pub struct VdUndo {
    pub ts: Csn,
    pub index: usize,
}

impl ViewDeltaStore {
    pub fn new(table: TableId) -> Self {
        ViewDeltaStore {
            table,
            rows: RwLock::new(BTreeMap::new()),
        }
    }

    pub fn table(&self) -> TableId {
        self.table
    }

    /// Insert one view-delta record; returns an undo handle.
    pub fn insert(&self, ts: Csn, count: i64, tuple: Tuple) -> VdUndo {
        let mut rows = self.rows.write();
        let bucket = rows.entry(ts).or_default();
        bucket.push((count, tuple));
        VdUndo {
            ts,
            index: bucket.len() - 1,
        }
    }

    /// Remove a record previously inserted (abort path). Undos must be
    /// applied in reverse insertion order.
    pub fn undo(&self, u: VdUndo) -> Result<()> {
        let mut rows = self.rows.write();
        let bucket = rows
            .get_mut(&u.ts)
            .ok_or_else(|| Error::Internal(format!("vd undo: no bucket at ts {}", u.ts)))?;
        if bucket.len() != u.index + 1 {
            return Err(Error::Internal("vd undo applied out of order".to_string()));
        }
        bucket.pop();
        if bucket.is_empty() {
            rows.remove(&u.ts);
        }
        Ok(())
    }

    /// `σ_{a,b}` over the view delta: records with timestamp in `(a, b]`,
    /// as [`DeltaRow`]s.
    pub fn range(&self, interval: TimeInterval) -> Vec<DeltaRow> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (&ts, bucket) in rows.range((
            std::ops::Bound::Excluded(interval.lo),
            std::ops::Bound::Included(interval.hi),
        )) {
            out.extend(
                bucket
                    .iter()
                    .map(|(count, tuple)| DeltaRow::change(ts, *count, tuple.clone())),
            );
        }
        out
    }

    /// Net effect `φ(σ_{a,b}(VD))`: tuple → summed count, zeros dropped.
    /// This is what the apply process installs into the materialized view.
    pub fn net_range(&self, interval: TimeInterval) -> HashMap<Tuple, i64> {
        let mut out: HashMap<Tuple, i64> = HashMap::new();
        for row in self.range(interval) {
            let e = out.entry(row.tuple).or_insert(0);
            *e += row.count;
        }
        out.retain(|_, c| *c != 0);
        out
    }

    /// Drop all records with timestamp ≤ `t` (space reclamation after the
    /// view has been rolled past them).
    pub fn prune_through(&self, t: Csn) -> usize {
        let mut rows = self.rows.write();
        let keep = rows.split_off(&(t + 1));
        let dropped = rows.values().map(Vec::len).sum();
        *rows = keep;
        dropped
    }

    /// Total records held.
    pub fn len(&self) -> usize {
        self.rows.read().values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }
}

/// Counters of one cache (point-in-time copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the range.
    pub misses: u64,
    /// Rows served from cached entries (what the cache saved copying).
    pub rows_served: u64,
    /// Live entries.
    pub entries: u64,
}

impl ScanCacheStats {
    /// Hit fraction in `[0, 1]`; `0` when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct ScanCacheInner {
    /// Epoch (the caller's propagation HWM) the live entries were
    /// materialized under.
    epoch: Csn,
    ranges: HashMap<(TableId, TimeInterval), Arc<Vec<DeltaRow>>>,
}

/// Step-scoped cache of materialized delta-range scans.
///
/// A propagation step executes many constituent queries that re-read the
/// *same* delta ranges (the forward query and every compensation query in
/// its subtree share delta slots). Each [`DeltaStore::range`] call copies
/// the slice; this cache materializes a range once per step and hands out
/// shared read-only [`Arc`]s instead.
///
/// Soundness: a range `(a, b]` with `b` at or below the capture HWM is
/// immutable (capture appends in CSN order), so a cached entry can never be
/// stale. Invalidation is therefore purely a *memory bound*: when the
/// caller's epoch — the propagation HWM, which advances only as steps
/// complete — moves past the one the entries were computed under, the step
/// that shared them has moved on and the whole cache is dropped
/// ([`ScanCache::advance_epoch`]). The *capture* HWM would be the wrong
/// epoch: it advances on every concurrent updater commit and would evict a
/// live step's working set.
#[derive(Default)]
pub struct ScanCache {
    inner: RwLock<ScanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    rows_served: AtomicU64,
}

impl ScanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The capture HWM the current entries were materialized under.
    pub fn epoch(&self) -> Csn {
        self.inner.read().epoch
    }

    /// Step-scope the cache: when the capture HWM has advanced past the
    /// epoch of the live entries, drop them all. Entries stay correct
    /// regardless (cached ranges are immutable); this bounds memory to one
    /// step's working set.
    pub fn advance_epoch(&self, hwm: Csn) {
        if self.inner.read().epoch >= hwm {
            return;
        }
        let mut inner = self.inner.write();
        if inner.epoch < hwm {
            inner.epoch = hwm;
            inner.ranges.clear();
        }
    }

    /// Look up `(table, interval)`, materializing it with `fetch` on a
    /// miss. Returns the shared rows and whether this was a hit.
    pub fn get_or_fetch(
        &self,
        table: TableId,
        interval: TimeInterval,
        fetch: impl FnOnce() -> Result<Vec<DeltaRow>>,
    ) -> Result<(Arc<Vec<DeltaRow>>, bool)> {
        let key = (table, interval);
        if let Some(rows) = self.inner.read().ranges.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.rows_served
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            return Ok((rows.clone(), true));
        }
        // Materialize outside the write lock; racing fetchers of the same
        // range do duplicate work at most once.
        let rows = Arc::new(fetch()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let entry = inner.ranges.entry(key).or_insert_with(|| rows.clone());
        Ok((entry.clone(), false))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.read().ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ScanCacheStats {
        ScanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rows_served: self.rows_served.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    #[test]
    fn delta_store_range_is_half_open() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![10])]);
        d.append_commit(3, [(1, tup![30]), (-1, tup![10])]);
        d.append_commit(5, [(1, tup![50])]);
        let r = d.range(TimeInterval::new(1, 3));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|x| x.ts == Some(3)));
        assert_eq!(d.count_in(TimeInterval::new(0, 5)), 4);
        assert_eq!(d.count_in(TimeInterval::new(5, 5)), 0);
        assert_eq!(d.last_ts(), Some(5));
    }

    #[test]
    fn reconstruct_replays_history() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(2, [(-1, tup![1])]);
        d.append_commit(4, [(2, tup![2])]);
        let s0 = d.reconstruct_at(0).unwrap();
        assert!(s0.is_empty());
        let s1 = d.reconstruct_at(1).unwrap();
        assert_eq!(s1[&tup![1]], 1);
        assert_eq!(s1[&tup![2]], 1);
        let s2 = d.reconstruct_at(2).unwrap();
        assert!(!s2.contains_key(&tup![1]), "zero counts dropped");
        let s4 = d.reconstruct_at(4).unwrap();
        assert_eq!(s4[&tup![2]], 3);
    }

    #[test]
    fn prune_folds_history_into_snapshot() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![1]), (1, tup![2])]);
        d.append_commit(2, [(-1, tup![1])]);
        d.append_commit(4, [(2, tup![2])]);
        d.append_commit(6, [(1, tup![3])]);
        assert_eq!(d.prune_through(4), 4);
        assert_eq!(d.pruned_through(), 4);
        assert_eq!(d.len(), 1, "only the ts=6 record remains");
        // Reconstruction at or after the prune point still works…
        let s4 = d.reconstruct_at(4).unwrap();
        assert_eq!(s4[&tup![2]], 3);
        assert!(!s4.contains_key(&tup![1]));
        let s6 = d.reconstruct_at(6).unwrap();
        assert_eq!(s6[&tup![3]], 1);
        // …but below it the history is gone.
        assert!(matches!(
            d.reconstruct_at(3),
            Err(Error::HistoryPruned {
                pruned_through: 4,
                ..
            })
        ));
        // Ranges above the prune point are unaffected.
        assert_eq!(d.range(TimeInterval::new(4, 6)).len(), 1);
        // Pruning is idempotent / monotone.
        assert_eq!(d.prune_through(2), 0);
        assert_eq!(d.pruned_through(), 4);
    }

    #[test]
    fn view_delta_out_of_order_inserts_and_range() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(5, 1, tup!["late"]);
        vd.insert(2, -1, tup!["early"]); // compensation for an old time
        vd.insert(5, 1, tup!["late2"]);
        let r = vd.range(TimeInterval::new(0, 5));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].ts, Some(2), "range is timestamp-ordered");
        let r = vd.range(TimeInterval::new(2, 5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn view_delta_net_range_cancels() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(3, 1, tup!["x"]);
        vd.insert(4, -1, tup!["x"]);
        vd.insert(4, 1, tup!["y"]);
        let net = vd.net_range(TimeInterval::new(0, 4));
        assert_eq!(net.len(), 1);
        assert_eq!(net[&tup!["y"]], 1);
    }

    #[test]
    fn view_delta_undo_reverses_insert() {
        let vd = ViewDeltaStore::new(TableId(9));
        let u1 = vd.insert(3, 1, tup!["a"]);
        let u2 = vd.insert(3, 1, tup!["b"]);
        vd.undo(u2).unwrap();
        vd.undo(u1).unwrap();
        assert!(vd.is_empty());
        // Out-of-order undo is an internal error.
        let u3 = vd.insert(3, 1, tup!["a"]);
        let _u4 = vd.insert(3, 1, tup!["b"]);
        assert!(vd.undo(u3).is_err());
    }

    #[test]
    fn scan_cache_hits_and_serves_shared_rows() {
        let d = DeltaStore::new(TableId(1));
        d.append_commit(1, [(1, tup![10])]);
        d.append_commit(2, [(1, tup![20])]);
        let cache = ScanCache::new();
        let iv = TimeInterval::new(0, 2);
        let (a, hit) = cache
            .get_or_fetch(TableId(1), iv, || Ok(d.range(iv)))
            .unwrap();
        assert!(!hit);
        assert_eq!(a.len(), 2);
        let (b, hit) = cache
            .get_or_fetch(TableId(1), iv, || panic!("must not refetch"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same allocation");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.rows_served, s.entries), (1, 1, 2, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scan_cache_epoch_advance_clears() {
        let cache = ScanCache::new();
        let iv = TimeInterval::new(0, 3);
        cache
            .get_or_fetch(TableId(1), iv, || Ok(vec![DeltaRow::change(1, 1, tup![1])]))
            .unwrap();
        cache.advance_epoch(3);
        assert_eq!(cache.len(), 0, "newer HWM drops the step's entries");
        assert_eq!(cache.epoch(), 3);
        // Same HWM again: entries from the current step survive.
        cache
            .get_or_fetch(TableId(1), iv, || Ok(vec![DeltaRow::change(1, 1, tup![1])]))
            .unwrap();
        cache.advance_epoch(3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prune_drops_old_records() {
        let vd = ViewDeltaStore::new(TableId(9));
        vd.insert(1, 1, tup![1]);
        vd.insert(2, 1, tup![2]);
        vd.insert(3, 1, tup![3]);
        assert_eq!(vd.prune_through(2), 2);
        assert_eq!(vd.len(), 1);
        assert_eq!(vd.range(TimeInterval::new(0, 10)).len(), 1);
    }
}
