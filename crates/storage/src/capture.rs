//! Asynchronous log capture — the DPropR analogue (paper §5).
//!
//! The paper's prototype populates base delta tables *from the transaction
//! log* rather than with triggers, because (a) triggers expand every update
//! transaction's footprint to the delta table, creating exactly the
//! contention the technique is meant to avoid, and (b) a trigger firing at
//! update time cannot know the transaction's eventual serialization order.
//!
//! [`Capture`] tails the WAL: change records are staged per transaction,
//! and when a `Commit` record is seen the staged changes are appended to
//! the corresponding [`DeltaStore`]s stamped with the commit CSN. Because
//! commit records are appended under the commit mutex, they appear in CSN
//! order and the **capture high-water mark** (the CSN through which all
//! base deltas are complete) is simply the last processed commit's CSN.
//!
//! Capture is deliberately *stepped* (`step(max_records)`) so experiments
//! can inject capture lag (experiment E13) and drivers can schedule it.

use crate::delta::DeltaStore;
use crate::wal::{Lsn, Wal, WalRecord};
use rolljoin_common::{Csn, Result, TableId, Tuple, TxnId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The log-capture process state.
pub struct Capture {
    wal: Arc<Wal>,
    pos: Lsn,
    pending: HashMap<TxnId, Vec<(TableId, i64, Tuple)>>,
    deltas: HashMap<TableId, Arc<DeltaStore>>,
    hwm: Arc<AtomicU64>,
    records_processed: u64,
    commits_captured: u64,
}

impl Capture {
    /// Create a capture process tailing `wal`, publishing its high-water
    /// mark through `hwm`.
    pub fn new(wal: Arc<Wal>, hwm: Arc<AtomicU64>) -> Self {
        Capture {
            wal,
            pos: 0,
            pending: HashMap::new(),
            deltas: HashMap::new(),
            hwm,
            records_processed: 0,
            commits_captured: 0,
        }
    }

    /// Register a base table's delta store. Must happen before any change
    /// record for that table is processed (the engine registers at table
    /// creation, so this always holds).
    pub fn register(&mut self, store: Arc<DeltaStore>) {
        self.deltas.insert(store.table(), store);
    }

    /// Process up to `max_records` WAL records. Returns the number
    /// processed (0 means caught up).
    pub fn step(&mut self, max_records: usize) -> Result<usize> {
        let records = self.wal.read_from(self.pos)?;
        let take = records.len().min(max_records);
        for rec in &records[..take] {
            self.apply(rec);
        }
        self.pos += take as Lsn;
        self.records_processed += take as u64;
        Ok(take)
    }

    /// Process everything currently in the log.
    pub fn catch_up(&mut self) -> Result<()> {
        while self.step(usize::MAX)? > 0 {}
        Ok(())
    }

    fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Begin { .. } => {}
            WalRecord::Insert { txn, table, tuple } => {
                if self.deltas.contains_key(table) {
                    self.pending
                        .entry(*txn)
                        .or_default()
                        .push((*table, 1, tuple.clone()));
                }
            }
            WalRecord::Delete { txn, table, tuple } => {
                if self.deltas.contains_key(table) {
                    self.pending
                        .entry(*txn)
                        .or_default()
                        .push((*table, -1, tuple.clone()));
                }
            }
            WalRecord::Commit { txn, csn, .. } => {
                if let Some(changes) = self.pending.remove(txn) {
                    // Group by table, preserving intra-transaction order.
                    let mut by_table: HashMap<TableId, Vec<(i64, Tuple)>> = HashMap::new();
                    for (table, count, tuple) in changes {
                        by_table.entry(table).or_default().push((count, tuple));
                    }
                    for (table, rows) in by_table {
                        self.deltas[&table].append_commit(*csn, rows);
                    }
                }
                // Every commit advances the HWM: deltas ≤ csn are complete
                // whether or not this transaction touched a captured table.
                self.hwm.store(*csn, Ordering::Release);
                self.commits_captured += 1;
            }
            WalRecord::Abort { txn } => {
                self.pending.remove(txn);
            }
            WalRecord::Apply {
                txn,
                table,
                count,
                tuple,
            } => {
                // A consolidated change: one staged record carrying the
                // whole signed multiplicity, so the delta store receives
                // one φ-compact row instead of |count| unit rows.
                if *count != 0 && self.deltas.contains_key(table) {
                    self.pending
                        .entry(*txn)
                        .or_default()
                        .push((*table, *count, tuple.clone()));
                }
            }
            WalRecord::CreateTable { .. }
            | WalRecord::CreateIndex { .. }
            | WalRecord::CreateDeltaIndex { .. } => {}
        }
    }

    /// The capture high-water mark: all base deltas are complete through
    /// this CSN.
    pub fn hwm(&self) -> Csn {
        self.hwm.load(Ordering::Acquire)
    }

    /// How many WAL records remain unprocessed (capture lag, in records).
    pub fn lag_records(&self) -> u64 {
        self.wal.len().saturating_sub(self.pos)
    }

    /// Totals: (records processed, commits captured).
    pub fn totals(&self) -> (u64, u64) {
        (self.records_processed, self.commits_captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::tup;

    fn setup() -> (Arc<Wal>, Capture, Arc<DeltaStore>, Arc<DeltaStore>) {
        let wal = Arc::new(Wal::new());
        let hwm = Arc::new(AtomicU64::new(0));
        let mut cap = Capture::new(wal.clone(), hwm);
        let d1 = Arc::new(DeltaStore::new(TableId(1)));
        let d2 = Arc::new(DeltaStore::new(TableId(2)));
        cap.register(d1.clone());
        cap.register(d2.clone());
        (wal, cap, d1, d2)
    }

    #[test]
    fn captures_committed_changes_with_csn() {
        let (wal, mut cap, d1, d2) = setup();
        wal.append(&WalRecord::Begin { txn: TxnId(1) });
        wal.append(&WalRecord::Insert {
            txn: TxnId(1),
            table: TableId(1),
            tuple: tup![10],
        });
        wal.append(&WalRecord::Delete {
            txn: TxnId(1),
            table: TableId(2),
            tuple: tup![20],
        });
        wal.append(&WalRecord::Commit {
            txn: TxnId(1),
            csn: 7,
            wallclock_micros: 1,
        });
        cap.catch_up().unwrap();
        assert_eq!(cap.hwm(), 7);
        let r1 = d1.range(rolljoin_common::TimeInterval::new(0, 7));
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].count, 1);
        assert_eq!(r1[0].ts, Some(7));
        let r2 = d2.range(rolljoin_common::TimeInterval::new(0, 7));
        assert_eq!(r2[0].count, -1);
    }

    #[test]
    fn apply_records_capture_as_one_counted_row() {
        let (wal, mut cap, d1, _d2) = setup();
        wal.append(&WalRecord::Begin { txn: TxnId(1) });
        wal.append(&WalRecord::Apply {
            txn: TxnId(1),
            table: TableId(1),
            count: 5,
            tuple: tup![10],
        });
        wal.append(&WalRecord::Apply {
            txn: TxnId(1),
            table: TableId(1),
            count: -2,
            tuple: tup![20],
        });
        wal.append(&WalRecord::Commit {
            txn: TxnId(1),
            csn: 4,
            wallclock_micros: 1,
        });
        cap.catch_up().unwrap();
        let rows = d1.range(rolljoin_common::TimeInterval::new(0, 4));
        assert_eq!(rows.len(), 2, "one delta row per Apply record");
        assert_eq!((rows[0].count, rows[1].count), (5, -2));
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let (wal, mut cap, d1, _d2) = setup();
        wal.append(&WalRecord::Insert {
            txn: TxnId(1),
            table: TableId(1),
            tuple: tup![1],
        });
        wal.append(&WalRecord::Abort { txn: TxnId(1) });
        wal.append(&WalRecord::Insert {
            txn: TxnId(2),
            table: TableId(1),
            tuple: tup![2],
        });
        wal.append(&WalRecord::Commit {
            txn: TxnId(2),
            csn: 1,
            wallclock_micros: 2,
        });
        cap.catch_up().unwrap();
        assert_eq!(d1.len(), 1);
        assert_eq!(
            d1.range(rolljoin_common::TimeInterval::new(0, 1))[0].tuple,
            tup![2]
        );
    }

    #[test]
    fn hwm_advances_on_irrelevant_commits_too() {
        let (wal, mut cap, d1, _d2) = setup();
        // A commit touching no captured table (e.g. table 99).
        wal.append(&WalRecord::Insert {
            txn: TxnId(5),
            table: TableId(99),
            tuple: tup![0],
        });
        wal.append(&WalRecord::Commit {
            txn: TxnId(5),
            csn: 3,
            wallclock_micros: 1,
        });
        cap.catch_up().unwrap();
        assert_eq!(cap.hwm(), 3);
        assert!(d1.is_empty());
    }

    #[test]
    fn stepped_capture_exposes_lag() {
        let (wal, mut cap, d1, _d2) = setup();
        for i in 0..10 {
            wal.append(&WalRecord::Insert {
                txn: TxnId(i),
                table: TableId(1),
                tuple: tup![i as i64],
            });
            wal.append(&WalRecord::Commit {
                txn: TxnId(i),
                csn: i + 1,
                wallclock_micros: i,
            });
        }
        assert_eq!(cap.step(6).unwrap(), 6);
        assert_eq!(cap.hwm(), 3);
        assert_eq!(cap.lag_records(), 14);
        cap.catch_up().unwrap();
        assert_eq!(cap.hwm(), 10);
        assert_eq!(d1.len(), 10);
        assert_eq!(cap.totals(), (20, 10));
    }
}
