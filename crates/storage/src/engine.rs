//! The storage engine facade: catalog, transactions, and the glue between
//! WAL, locks, capture, and table stores.
//!
//! This plays the role DB2 plays in the paper's prototype (Fig. 11): it
//! executes transactions under strict 2PL, assigns commit sequence numbers
//! under a commit mutex (so CSN order ≡ commit order ≡ serialization
//! order, the paper's §2 assumption), writes the WAL that the capture
//! process tails, and maintains the unit-of-work table.
//!
//! # Transaction API
//!
//! ```
//! use rolljoin_storage::Engine;
//! use rolljoin_common::{Schema, ColumnType, tup};
//!
//! let engine = Engine::new();
//! let t = engine
//!     .create_table("r", Schema::new([("a", ColumnType::Int)]))
//!     .unwrap();
//! let mut txn = engine.begin();
//! txn.insert(t, tup![1]).unwrap();
//! let csn = txn.commit().unwrap();
//! assert!(csn > 0);
//! ```

use crate::capture::Capture;
use crate::delta::{DeltaStore, VdUndo, ViewDeltaStore};
use crate::lock::{stripe_of, stripes_for, LockGranularity, LockKey, LockManager, LockMode};
use crate::table::BaseTable;
use crate::uow::UnitOfWork;
use crate::wal::{Wal, WalRecord};
use parking_lot::{Mutex, RwLock};
use rolljoin_common::{Csn, DeltaRow, Error, Result, Schema, TableId, TimeInterval, Tuple, TxnId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a catalog entry stores.
enum TableStore {
    /// A base table (or materialized view) with an associated delta store
    /// populated by capture.
    Base {
        table: Mutex<BaseTable>,
        delta: Arc<DeltaStore>,
    },
    /// A view delta table (timestamp-keyed change records).
    ViewDelta(ViewDeltaStore),
}

struct TableEntry {
    name: String,
    schema: Schema,
    store: TableStore,
}

struct EngineInner {
    tables: RwLock<HashMap<TableId, Arc<TableEntry>>>,
    names: RwLock<HashMap<String, TableId>>,
    next_table: AtomicU32,
    next_txn: AtomicU64,
    wal: Arc<Wal>,
    locks: Arc<LockManager>,
    uow: UnitOfWork,
    commit_mutex: Mutex<()>,
    /// Lock granularity: 0 = table, n > 0 = striped with n stripes.
    /// Encoded in an atomic so `Engine` clones share the knob; set it
    /// before concurrent activity starts — changing the stripe count while
    /// transactions hold stripe locks is unsound (`hash % n1` and
    /// `hash % n2` disagree on which stripe a key maps to, so a reader and
    /// a writer of the same key could miss each other's locks).
    granularity: AtomicU32,
    last_csn: AtomicU64,
    capture: Mutex<Capture>,
    capture_hwm: Arc<AtomicU64>,
    clock_origin: Instant,
}

/// Handle to the storage engine. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine with the default 2-second lock timeout.
    pub fn new() -> Self {
        Self::with_lock_timeout(Duration::from_secs(2))
    }

    /// A fresh engine with a configurable lock (deadlock) timeout.
    pub fn with_lock_timeout(timeout: Duration) -> Self {
        let wal = Arc::new(Wal::new());
        let capture_hwm = Arc::new(AtomicU64::new(0));
        Engine {
            inner: Arc::new(EngineInner {
                tables: RwLock::new(HashMap::new()),
                names: RwLock::new(HashMap::new()),
                next_table: AtomicU32::new(1),
                next_txn: AtomicU64::new(1),
                wal: wal.clone(),
                locks: Arc::new(LockManager::new(timeout)),
                uow: UnitOfWork::new(),
                commit_mutex: Mutex::new(()),
                granularity: AtomicU32::new(0),
                last_csn: AtomicU64::new(0),
                capture: Mutex::new(Capture::new(wal, capture_hwm.clone())),
                capture_hwm,
                clock_origin: Instant::now(),
            }),
        }
    }

    fn register_with_id(
        &self,
        id: TableId,
        name: &str,
        schema: Schema,
        is_view_delta: bool,
    ) -> Result<TableId> {
        let mut names = self.inner.names.write();
        if names.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let store = if is_view_delta {
            TableStore::ViewDelta(ViewDeltaStore::new(id))
        } else {
            TableStore::Base {
                table: Mutex::new(BaseTable::new(id, name_of(id), schema.clone())),
                delta: Arc::new(DeltaStore::new(id)),
            }
        };
        let entry = Arc::new(TableEntry {
            name: name.to_string(),
            schema,
            store,
        });
        if let TableStore::Base { delta, .. } = &entry.store {
            self.inner.capture.lock().register(delta.clone());
        }
        self.inner.tables.write().insert(id, entry);
        names.insert(name.to_string(), id);
        Ok(id)
    }

    fn register(&self, name: &str, schema: Schema, is_view_delta: bool) -> Result<TableId> {
        let id = TableId(self.inner.next_table.fetch_add(1, Ordering::Relaxed));
        let id = self.register_with_id(id, name, schema.clone(), is_view_delta)?;
        // DDL is logged so recovery can rebuild the catalog.
        self.inner.wal.append(&WalRecord::CreateTable {
            id,
            name: name.to_string(),
            schema,
            is_view_delta,
        });
        Ok(id)
    }

    /// Create a base table. Its delta store is registered with capture
    /// immediately, so every change ever made is captured.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableId> {
        self.register(name, schema, false)
    }

    /// Create a view delta table with the given (projected view) schema.
    pub fn create_view_delta(&self, name: &str, schema: Schema) -> Result<TableId> {
        self.register(name, schema, true)
    }

    fn entry(&self, table: TableId) -> Result<Arc<TableEntry>> {
        self.inner
            .tables
            .read()
            .get(&table)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(table.to_string()))
    }

    fn base_entry(&self, table: TableId) -> Result<Arc<TableEntry>> {
        let e = self.entry(table)?;
        match e.store {
            TableStore::Base { .. } => Ok(e),
            _ => Err(Error::Invalid(format!("{table} is not a base table"))),
        }
    }

    /// Create a secondary index on a base table column. Existing rows are
    /// indexed immediately; the index is maintained by every later write.
    /// Logged for recovery.
    pub fn create_index(&self, table: TableId, col: usize) -> Result<()> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table: t, .. } => t.lock().create_index(col)?,
            _ => unreachable!("base_entry filters"),
        }
        self.inner.wal.append(&WalRecord::CreateIndex {
            table,
            col: col as u32,
        });
        Ok(())
    }

    /// Does `table` have a secondary index on `col`?
    pub fn has_index(&self, table: TableId, col: usize) -> Result<bool> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().has_index(col)),
            _ => unreachable!("base_entry filters"),
        }
    }

    /// Number of distinct tuples in a base table (planner heuristic).
    pub fn table_distinct(&self, table: TableId) -> Result<usize> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().distinct()),
            _ => unreachable!("base_entry filters"),
        }
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.inner
            .names
            .read()
            .get(name)
            .copied()
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// Schema of a table.
    pub fn schema(&self, table: TableId) -> Result<Schema> {
        Ok(self.entry(table)?.schema.clone())
    }

    /// Name of a table.
    pub fn table_name(&self, table: TableId) -> Result<String> {
        Ok(self.entry(table)?.name.clone())
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        let id = TxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        self.inner.wal.append(&WalRecord::Begin { txn: id });
        Txn {
            engine: self.clone(),
            id,
            active: true,
            undo: Vec::new(),
            locked: Vec::new(),
            lock_wait: Duration::ZERO,
        }
    }

    /// CSN of the most recent commit.
    pub fn current_csn(&self) -> Csn {
        self.inner.last_csn.load(Ordering::Acquire)
    }

    /// Microseconds since engine start (the engine's wallclock).
    pub fn now_micros(&self) -> u64 {
        self.inner.clock_origin.elapsed().as_micros() as u64
    }

    /// The lock manager (exposed for stats and pre-locking).
    pub fn locks(&self) -> &LockManager {
        &self.inner.locks
    }

    /// The lock granularity base-table reads and writes run at.
    pub fn lock_granularity(&self) -> LockGranularity {
        match self.inner.granularity.load(Ordering::Acquire) {
            0 => LockGranularity::Table,
            n => LockGranularity::Striped(n),
        }
    }

    /// Set the lock granularity. Must be called before concurrent
    /// activity: transactions in flight keep the locks they already hold,
    /// and changing the stripe *count* mid-flight would let key-granular
    /// readers and writers hash the same key to different stripes.
    pub fn set_lock_granularity(&self, g: LockGranularity) {
        let enc = match g {
            LockGranularity::Table => 0,
            LockGranularity::Striped(n) => n.max(1),
        };
        self.inner.granularity.store(enc, Ordering::Release);
    }

    /// Columns of a base table with secondary indexes, ascending. Under
    /// striped locking these are the columns whose values a writer must
    /// stripe-lock (they are the columns keyed probes search by).
    pub fn indexed_cols(&self, table: TableId) -> Result<Vec<usize>> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().indexed_cols()),
            _ => unreachable!("base_entry filters"),
        }
    }

    /// The unit-of-work table.
    pub fn uow(&self) -> &UnitOfWork {
        &self.inner.uow
    }

    /// The WAL (exposed for recovery tests and inspection).
    pub fn wal(&self) -> &Wal {
        &self.inner.wal
    }

    // ---- capture control -------------------------------------------------

    /// Run capture until it has processed the whole log.
    pub fn capture_catch_up(&self) -> Result<()> {
        self.inner.capture.lock().catch_up()
    }

    /// Process up to `max_records` WAL records; returns number processed.
    pub fn capture_step(&self, max_records: usize) -> Result<usize> {
        self.inner.capture.lock().step(max_records)
    }

    /// The capture high-water mark: base deltas are complete through here.
    pub fn capture_hwm(&self) -> Csn {
        self.inner.capture_hwm.load(Ordering::Acquire)
    }

    /// Capture lag in WAL records.
    pub fn capture_lag(&self) -> u64 {
        self.inner.capture.lock().lag_records()
    }

    // ---- delta access ----------------------------------------------------

    /// The delta store of a base table.
    pub fn delta_store(&self, table: TableId) -> Result<Arc<DeltaStore>> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { delta, .. } => Ok(delta.clone()),
            _ => unreachable!("base_entry filters"),
        }
    }

    /// Read `σ_{a,b}(Δ^R)`. Requires the capture HWM to have reached the
    /// upper bound, so the range is complete and immutable (lock-free).
    pub fn delta_range(&self, table: TableId, interval: TimeInterval) -> Result<Vec<DeltaRow>> {
        let hwm = self.capture_hwm();
        if interval.hi > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: interval.hi,
                hwm,
            });
        }
        let store = self.delta_store(table)?;
        // The floor covers both pruning and φ-compaction: below it rows
        // were folded away or rewritten to group-minimum timestamps, so a
        // range starting there would be wrong, not merely incomplete.
        let floor = store.floor();
        if interval.lo < floor {
            return Err(Error::HistoryPruned {
                table,
                requested: interval.lo,
                pruned_through: floor,
            });
        }
        Ok(store.range(interval))
    }

    /// Count of delta records in a range (for interval policies). Same
    /// HWM requirement as [`Engine::delta_range`].
    pub fn delta_count(&self, table: TableId, interval: TimeInterval) -> Result<usize> {
        let hwm = self.capture_hwm();
        if interval.hi > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: interval.hi,
                hwm,
            });
        }
        Ok(self.delta_store(table)?.count_in(interval))
    }

    /// Time-travel: the multiset state of `table` at time `t`, reconstructed
    /// from its delta history. Oracle/baseline use only — the maintenance
    /// algorithms never call this.
    pub fn scan_asof(&self, table: TableId, t: Csn) -> Result<HashMap<Tuple, i64>> {
        let hwm = self.capture_hwm();
        if t > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: t,
                hwm,
            });
        }
        self.delta_store(table)?.reconstruct_at(t)
    }

    /// Fold delta history of `table` at or below `through` into a base
    /// snapshot, reclaiming space. Time travel and delta ranges below
    /// `through` become unavailable ([`Error::HistoryPruned`]); callers
    /// must ensure every maintenance frontier and roll target has passed
    /// `through`. Returns the number of records folded.
    pub fn prune_delta_history(&self, table: TableId, through: Csn) -> Result<usize> {
        let hwm = self.capture_hwm();
        if through > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: through,
                hwm,
            });
        }
        Ok(self.delta_store(table)?.prune_through(through))
    }

    /// φ-compact delta history of `table` at or below `lwm`: same-tuple
    /// records merge (counts summed, minimum timestamp kept) and zero-sum
    /// groups are dropped. Unlike pruning the range's *net effect* is
    /// preserved, but timestamps below `lwm` are rewritten, so reads
    /// starting below it are refused like pruned history. `lwm` must be a
    /// global low-water mark: at or below the capture HWM, every
    /// propagation frontier, and the apply position. Returns records
    /// removed.
    pub fn compact_delta_history(&self, table: TableId, lwm: Csn) -> Result<usize> {
        let hwm = self.capture_hwm();
        if lwm > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: lwm,
                hwm,
            });
        }
        Ok(self.delta_store(table)?.compact_through(lwm))
    }

    /// Lifetime φ-compaction counters of a base table's delta store.
    pub fn delta_compaction_stats(&self, table: TableId) -> Result<crate::delta::CompactionStats> {
        Ok(self.delta_store(table)?.compaction_stats())
    }

    // ---- keyed delta indexes ---------------------------------------------

    /// Create a keyed time-range index on `col` of `table`'s delta store.
    /// Existing history is back-filled; capture maintains postings on every
    /// later append. Logged for recovery (the index is re-created before
    /// capture replay rebuilds the delta, so postings come back too).
    pub fn create_delta_index(&self, table: TableId, col: usize) -> Result<()> {
        let arity = self.schema(table)?.arity();
        if col >= arity {
            return Err(Error::Invalid(format!(
                "delta index column {col} out of range for {table} (arity {arity})"
            )));
        }
        self.delta_store(table)?.create_key_index(col);
        self.inner.wal.append(&WalRecord::CreateDeltaIndex {
            table,
            col: col as u32,
        });
        Ok(())
    }

    /// Does `table`'s delta store have a keyed index on `col`?
    pub fn has_delta_index(&self, table: TableId, col: usize) -> Result<bool> {
        Ok(self.delta_store(table)?.has_key_index(col))
    }

    /// `σ_{a,b}(Δ^R) ⋉ keys` on `col`: the keyed slice of a delta range,
    /// in CSN order. Same capture-HWM and floor requirements as
    /// [`Engine::delta_range`]; `None` when `col` has no delta index.
    pub fn delta_range_keyed(
        &self,
        table: TableId,
        interval: TimeInterval,
        col: usize,
        keys: &[rolljoin_common::Value],
    ) -> Result<Option<Vec<DeltaRow>>> {
        let hwm = self.capture_hwm();
        if interval.hi > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: interval.hi,
                hwm,
            });
        }
        let store = self.delta_store(table)?;
        let floor = store.floor();
        if interval.lo < floor {
            return Err(Error::HistoryPruned {
                table,
                requested: interval.lo,
                pruned_through: floor,
            });
        }
        Ok(store.range_keyed(interval, col, keys))
    }

    /// Exact number of rows [`Engine::delta_range_keyed`] would return
    /// (posting-list slice lengths, at binary-search cost) — the planner's
    /// probe-vs-scan estimate. Same HWM requirement; `None` without an
    /// index on `col`.
    pub fn delta_keyed_estimate(
        &self,
        table: TableId,
        interval: TimeInterval,
        col: usize,
        keys: &[rolljoin_common::Value],
    ) -> Result<Option<usize>> {
        let hwm = self.capture_hwm();
        if interval.hi > hwm {
            return Err(Error::CaptureBehind {
                table,
                requested: interval.hi,
                hwm,
            });
        }
        Ok(self
            .delta_store(table)?
            .keyed_count_estimate(interval, col, keys))
    }

    /// Approximate heap bytes held by keyed delta-index postings across
    /// all base tables (feeds a monitoring gauge).
    pub fn delta_postings_bytes(&self) -> u64 {
        let tables = self.inner.tables.read();
        tables
            .values()
            .filter_map(|e| match &e.store {
                TableStore::Base { delta, .. } => Some(delta.postings_bytes()),
                _ => None,
            })
            .sum()
    }

    /// View-delta range read (no transaction required: used by apply after
    /// it has S-locked the table, and by experiments for inspection).
    pub fn vd_range(&self, table: TableId, interval: TimeInterval) -> Result<Vec<DeltaRow>> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.range(interval)),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// Net effect of a view-delta range: `φ(σ_{a,b}(VD))`.
    pub fn vd_net_range(
        &self,
        table: TableId,
        interval: TimeInterval,
    ) -> Result<HashMap<Tuple, i64>> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.net_range(interval)),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// Number of records in a view delta table.
    pub fn vd_len(&self, table: TableId) -> Result<usize> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.len()),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// Prune view-delta records with timestamp ≤ `t` (already applied).
    pub fn vd_prune(&self, table: TableId, t: Csn) -> Result<usize> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.prune_through(t)),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// φ-compact view-delta records with timestamp ≤ `t` (the apply
    /// position): same-tuple records merge at their minimum timestamp and
    /// zero-sum groups vanish. Net ranges spanning the compacted region
    /// are unchanged. Returns records removed.
    pub fn vd_compact(&self, table: TableId, t: Csn) -> Result<usize> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.compact_through(t)),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// Lifetime φ-compaction counters of a view delta store.
    pub fn vd_compaction_stats(&self, table: TableId) -> Result<crate::delta::CompactionStats> {
        let e = self.entry(table)?;
        match &e.store {
            TableStore::ViewDelta(vd) => Ok(vd.compaction_stats()),
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    // ---- non-transactional table inspection (tests/experiments) ----------

    /// Row count of a base table (counting multiplicity). Not
    /// transactional; for reporting.
    pub fn table_len(&self, table: TableId) -> Result<u64> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table, .. } => Ok(table.lock().len()),
            _ => unreachable!(),
        }
    }

    /// Heap pages of a base table; for reporting.
    pub fn table_pages(&self, table: TableId) -> Result<usize> {
        let e = self.base_entry(table)?;
        match &e.store {
            TableStore::Base { table, .. } => Ok(table.lock().page_count()),
            _ => unreachable!(),
        }
    }

    /// Replay a WAL image into per-table multisets, applying only committed
    /// transactions. This is the recovery path: after a crash the base
    /// tables can be rebuilt from the log alone.
    pub fn replay_committed(bytes: &[u8]) -> Result<HashMap<TableId, HashMap<Tuple, i64>>> {
        let records = Wal::recover(bytes)?;
        let mut staged: HashMap<TxnId, Vec<(TableId, i64, Tuple)>> = HashMap::new();
        let mut out: HashMap<TableId, HashMap<Tuple, i64>> = HashMap::new();
        for rec in records {
            match rec {
                WalRecord::Begin { .. } => {}
                WalRecord::Insert { txn, table, tuple } => {
                    staged.entry(txn).or_default().push((table, 1, tuple));
                }
                WalRecord::Delete { txn, table, tuple } => {
                    staged.entry(txn).or_default().push((table, -1, tuple));
                }
                WalRecord::Apply {
                    txn,
                    table,
                    count,
                    tuple,
                } => {
                    staged.entry(txn).or_default().push((table, count, tuple));
                }
                WalRecord::Commit { txn, .. } => {
                    for (table, count, tuple) in staged.remove(&txn).unwrap_or_default() {
                        let m = out.entry(table).or_default();
                        let e = m.entry(tuple.clone()).or_insert(0);
                        *e += count;
                        if *e == 0 {
                            m.remove(&tuple);
                        }
                    }
                }
                WalRecord::Abort { txn } => {
                    staged.remove(&txn);
                }
                WalRecord::CreateTable { .. }
                | WalRecord::CreateIndex { .. }
                | WalRecord::CreateDeltaIndex { .. } => {}
            }
        }
        Ok(out)
    }
}

impl Engine {
    /// Rebuild a full engine from a WAL image: catalog (tables and
    /// indexes), base/MV table contents (committed transactions only),
    /// delta stores (by replaying capture over the whole log), the
    /// unit-of-work table, and the CSN/transaction counters. A torn tail
    /// is dropped.
    ///
    /// View **delta** table contents are intentionally not recovered: they
    /// are soft state (paper Fig. 3 — the delta can always be re-propagated
    /// from the materialization time forward). The control-table layer in
    /// `rolljoin-core` persists each view's materialization time in an
    /// ordinary base table, so it *is* recovered.
    pub fn recover_from_bytes(bytes: &[u8]) -> Result<Engine> {
        let engine = Engine::new();
        let records = Wal::recover(bytes)?;
        // Reconstruct the WAL so the recovered engine appends where the
        // old one stopped.
        engine.inner.wal.replace_from_bytes(bytes)?;

        let mut staged: HashMap<TxnId, Vec<(TableId, i64, Tuple)>> = HashMap::new();
        let mut max_txn = 0u64;
        let mut max_table = 0u32;
        let mut last_csn = 0u64;
        for rec in records {
            match rec {
                WalRecord::CreateTable {
                    id,
                    name,
                    schema,
                    is_view_delta,
                } => {
                    engine.register_with_id(id, &name, schema, is_view_delta)?;
                    max_table = max_table.max(id.0);
                }
                WalRecord::CreateIndex { table, col } => {
                    let e = engine.base_entry(table)?;
                    if let TableStore::Base { table: t, .. } = &e.store {
                        t.lock().create_index(col as usize)?;
                    }
                }
                WalRecord::CreateDeltaIndex { table, col } => {
                    // Register the indexed column now (the delta store is
                    // still empty); the capture replay below re-appends
                    // history and back-fills postings as it goes.
                    engine.delta_store(table)?.create_key_index(col as usize);
                }
                WalRecord::Begin { txn } => {
                    max_txn = max_txn.max(txn.0);
                }
                WalRecord::Insert { txn, table, tuple } => {
                    max_txn = max_txn.max(txn.0);
                    staged.entry(txn).or_default().push((table, 1, tuple));
                }
                WalRecord::Delete { txn, table, tuple } => {
                    max_txn = max_txn.max(txn.0);
                    staged.entry(txn).or_default().push((table, -1, tuple));
                }
                WalRecord::Apply {
                    txn,
                    table,
                    count,
                    tuple,
                } => {
                    max_txn = max_txn.max(txn.0);
                    staged.entry(txn).or_default().push((table, count, tuple));
                }
                WalRecord::Commit {
                    txn,
                    csn,
                    wallclock_micros,
                } => {
                    max_txn = max_txn.max(txn.0);
                    last_csn = last_csn.max(csn);
                    engine.inner.uow.record(txn, csn, wallclock_micros);
                    for (table, count, tuple) in staged.remove(&txn).unwrap_or_default() {
                        let e = engine.base_entry(table)?;
                        if let TableStore::Base { table: t, .. } = &e.store {
                            t.lock().apply_count(&tuple, count)?;
                        }
                    }
                }
                WalRecord::Abort { txn } => {
                    max_txn = max_txn.max(txn.0);
                    staged.remove(&txn);
                }
            }
        }
        // Uncommitted trailing transactions (crash victims) are simply
        // dropped — strict 2PL means none of their effects are visible.
        engine.inner.last_csn.store(last_csn, Ordering::Release);
        engine.inner.next_txn.store(max_txn + 1, Ordering::Release);
        engine
            .inner
            .next_table
            .store(max_table + 1, Ordering::Release);
        // Rebuild the delta stores by replaying capture over the log.
        engine.capture_catch_up()?;
        Ok(engine)
    }

    /// Persist the WAL image to a file.
    pub fn save_wal(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.wal().snapshot_bytes())
            .map_err(|e| Error::Internal(format!("wal write failed: {e}")))
    }

    /// Recover an engine from a WAL file written by [`Engine::save_wal`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Engine> {
        let bytes =
            std::fs::read(path).map_err(|e| Error::Internal(format!("wal read failed: {e}")))?;
        Self::recover_from_bytes(&bytes)
    }
}

fn name_of(id: TableId) -> String {
    format!("{id}")
}

enum UndoOp {
    /// Undo an insert: delete one copy.
    Insert { table: TableId, tuple: Tuple },
    /// Undo a delete: re-insert one copy.
    Delete { table: TableId, tuple: Tuple },
    /// Undo a consolidated apply: apply the negated count.
    Apply {
        table: TableId,
        count: i64,
        tuple: Tuple,
    },
    /// Undo a view-delta insert.
    Vd { table: TableId, undo: VdUndo },
}

/// A strict-2PL transaction handle.
///
/// All reads and writes go through a `Txn`. Locks are acquired as touched
/// and held until [`Txn::commit`] or [`Txn::abort`]. Dropping an active
/// transaction aborts it.
pub struct Txn {
    engine: Engine,
    id: TxnId,
    active: bool,
    undo: Vec<UndoOp>,
    locked: Vec<LockKey>,
    lock_wait: Duration,
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Total time this transaction has spent blocked on locks.
    pub fn lock_wait(&self) -> Duration {
        self.lock_wait
    }

    fn check_active(&self) -> Result<()> {
        if self.active {
            Ok(())
        } else {
            Err(Error::TxnNotActive(self.id))
        }
    }

    /// Explicitly acquire a table-granularity lock (callers lock in
    /// `TableId` order to avoid deadlocks; propagation queries pre-lock
    /// all their tables this way under table granularity).
    pub fn lock(&mut self, table: TableId, mode: LockMode) -> Result<()> {
        self.lock_key(LockKey::table(table), mode)
    }

    /// Acquire a lock on an arbitrary resource (table or stripe),
    /// tracking it for release at commit/abort.
    pub fn lock_key(&mut self, key: LockKey, mode: LockMode) -> Result<()> {
        self.check_active()?;
        let waited = self.engine.inner.locks.lock_key(self.id, key, mode)?;
        self.lock_wait += waited;
        if !self.locked.contains(&key) {
            self.locked.push(key);
        }
        Ok(())
    }

    /// Lock `table` for writing `tuple`. Table granularity: a plain X.
    /// Striped: IX at the table plus X on the stripe of each indexed
    /// column's value — the stripes any keyed probe for this tuple would
    /// S-lock. Stripes are acquired in ascending order (after the table
    /// intention lock), matching the global `(TableId, stripe)` order.
    fn write_lock(&mut self, table: TableId, tuple: &Tuple) -> Result<()> {
        let n = match self.engine.lock_granularity() {
            LockGranularity::Table => return self.lock(table, LockMode::Exclusive),
            LockGranularity::Striped(n) => n.max(1),
        };
        // A table-granularity X (e.g. taken before striping was enabled,
        // or by a whole-table writer) already covers every stripe.
        if self
            .engine
            .inner
            .locks
            .holds_key(self.id, LockKey::table(table), LockMode::Exclusive)
        {
            return Ok(());
        }
        self.lock(table, LockMode::IntentExclusive)?;
        let mut stripes: Vec<u32> = self
            .engine
            .indexed_cols(table)?
            .into_iter()
            .map(|col| stripe_of(col, tuple.get(col), n))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        for s in stripes {
            self.lock_key(LockKey::stripe(table, s), LockMode::Exclusive)?;
        }
        Ok(())
    }

    /// Insert one copy of `tuple` into `table`.
    pub fn insert(&mut self, table: TableId, tuple: Tuple) -> Result<()> {
        self.check_active()?;
        self.write_lock(table, &tuple)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => t.lock().insert(tuple.clone())?,
            _ => unreachable!(),
        }
        self.engine.inner.wal.append(&WalRecord::Insert {
            txn: self.id,
            table,
            tuple: tuple.clone(),
        });
        self.undo.push(UndoOp::Insert { table, tuple });
        Ok(())
    }

    /// Delete one copy of `tuple` from `table`.
    pub fn delete_one(&mut self, table: TableId, tuple: &Tuple) -> Result<()> {
        self.check_active()?;
        self.write_lock(table, tuple)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => t.lock().delete_one(tuple)?,
            _ => unreachable!(),
        }
        self.engine.inner.wal.append(&WalRecord::Delete {
            txn: self.id,
            table,
            tuple: tuple.clone(),
        });
        self.undo.push(UndoOp::Delete {
            table,
            tuple: tuple.clone(),
        });
        Ok(())
    }

    /// Update = delete + insert (paper §2 models updates this way).
    pub fn update(&mut self, table: TableId, old: &Tuple, new: Tuple) -> Result<()> {
        self.delete_one(table, old)?;
        self.insert(table, new)
    }

    /// Scan all tuples of a base table (with multiplicity) under an S lock.
    pub fn scan(&mut self, table: TableId) -> Result<Vec<Tuple>> {
        self.check_active()?;
        self.lock(table, LockMode::Shared)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().scan()),
            _ => unreachable!(),
        }
    }

    /// Scan a base table as a `tuple → count` map under an S lock.
    pub fn scan_counts(&mut self, table: TableId) -> Result<HashMap<Tuple, i64>> {
        self.check_active()?;
        self.lock(table, LockMode::Shared)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().scan_counts()),
            _ => unreachable!(),
        }
    }

    /// Multiplicity of one tuple under an S lock.
    pub fn count_of(&mut self, table: TableId, tuple: &Tuple) -> Result<u64> {
        self.check_active()?;
        self.lock(table, LockMode::Shared)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => Ok(t.lock().count_of(tuple)),
            _ => unreachable!(),
        }
    }

    /// Index probe: all `(tuple, count)` pairs of `table` whose `col`
    /// matches any of `keys`. Requires an index on `col`.
    ///
    /// Table granularity locks the whole table S (the seed behavior).
    /// Striped granularity takes IS at the table plus S on only the
    /// stripes the keys hash to — so the probe conflicts only with writers
    /// of colliding keys, not with every updater of the table. Any write
    /// that adds or removes a row matching one of `keys` must X-lock one
    /// of those same stripes (via the indexed-column write path), which
    /// also makes the probe phantom-safe at stripe precision.
    pub fn lookup_keys(
        &mut self,
        table: TableId,
        col: usize,
        keys: &[rolljoin_common::Value],
    ) -> Result<Vec<(Tuple, i64)>> {
        self.check_active()?;
        match self.engine.lock_granularity() {
            LockGranularity::Table => self.lock(table, LockMode::Shared)?,
            LockGranularity::Striped(_) => self.key_stripe_locks(table, col, keys)?,
        }
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => {
                let t = t.lock();
                if !t.has_index(col) {
                    return Err(Error::Invalid(format!(
                        "no index on column {col} of {table}"
                    )));
                }
                let mut out = Vec::new();
                for key in keys {
                    t.for_each_lookup(col, key, |tuple, count| out.push((tuple.clone(), count)));
                }
                Ok(out)
            }
            _ => unreachable!(),
        }
    }

    /// Take the keyed-probe stripe footprint on `(col, keys)`: IS at the
    /// table plus S on the stripes the keys hash to, in ascending order —
    /// skipped entirely when a table-granularity S (pre-locked by sync
    /// propagation, or taken by an earlier full scan) already covers every
    /// stripe.
    fn key_stripe_locks(
        &mut self,
        table: TableId,
        col: usize,
        keys: &[rolljoin_common::Value],
    ) -> Result<()> {
        if self
            .engine
            .inner
            .locks
            .holds_key(self.id, LockKey::table(table), LockMode::Shared)
        {
            return Ok(());
        }
        let n = self.engine.lock_granularity().stripes().unwrap_or(1).max(1);
        self.lock(table, LockMode::IntentShared)?;
        for s in stripes_for(col, keys, n) {
            self.lock_key(LockKey::stripe(table, s), LockMode::Shared)?;
        }
        Ok(())
    }

    /// Keyed **delta** probe: `σ_{a,b}(Δ^R) ⋉ keys` on `col` of `table`'s
    /// delta store. The read itself is lock-free below the capture HWM
    /// (the range is immutable), but under striped locking the probe takes
    /// the same IS + key-stripe S footprint as a keyed base probe via
    /// [`Txn::lookup_keys`] — the probe's `(col, key)` set conflicts with
    /// writers of colliding keys exactly like the base-table cascade, so
    /// the two probe kinds are interchangeable to the lock hierarchy.
    /// Table granularity takes no lock, matching the plain delta-scan
    /// fetch path. `None` when `col` has no delta index.
    pub fn delta_lookup_keys(
        &mut self,
        table: TableId,
        interval: TimeInterval,
        col: usize,
        keys: &[rolljoin_common::Value],
    ) -> Result<Option<Vec<DeltaRow>>> {
        self.check_active()?;
        if let LockGranularity::Striped(_) = self.engine.lock_granularity() {
            self.key_stripe_locks(table, col, keys)?;
        }
        self.engine.delta_range_keyed(table, interval, col, keys)
    }

    /// Apply a signed count to a base table (the apply process's write
    /// primitive when installing net view deltas into an MV).
    ///
    /// Consolidated: one lock acquisition, one WAL [`WalRecord::Apply`]
    /// record, and one undo entry per `(tuple, count)` — not `|n|` of each
    /// — so capture also stages a single counted delta row.
    pub fn apply_count(&mut self, table: TableId, tuple: &Tuple, n: i64) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        self.check_active()?;
        self.write_lock(table, tuple)?;
        let entry = self.engine.base_entry(table)?;
        match &entry.store {
            TableStore::Base { table: t, .. } => t.lock().apply_count(tuple, n)?,
            _ => unreachable!(),
        }
        self.engine.inner.wal.append(&WalRecord::Apply {
            txn: self.id,
            table,
            count: n,
            tuple: tuple.clone(),
        });
        self.undo.push(UndoOp::Apply {
            table,
            count: n,
            tuple: tuple.clone(),
        });
        Ok(())
    }

    /// Insert a view-delta record under an X lock on the VD table.
    pub fn vd_insert(&mut self, table: TableId, ts: Csn, count: i64, tuple: Tuple) -> Result<()> {
        self.check_active()?;
        self.lock(table, LockMode::Exclusive)?;
        let entry = self.engine.entry(table)?;
        match &entry.store {
            TableStore::ViewDelta(vd) => {
                let undo = vd.insert(ts, count, tuple);
                self.undo.push(UndoOp::Vd { table, undo });
                Ok(())
            }
            _ => Err(Error::Invalid(format!("{table} is not a view delta table"))),
        }
    }

    /// Read a view-delta range under an S lock (transactional read for the
    /// apply process).
    pub fn vd_range(&mut self, table: TableId, interval: TimeInterval) -> Result<Vec<DeltaRow>> {
        self.check_active()?;
        self.lock(table, LockMode::Shared)?;
        self.engine.vd_range(table, interval)
    }

    /// Commit. Returns the commit sequence number, which is also the
    /// paper's "execution time" of a propagation query transaction.
    pub fn commit(mut self) -> Result<Csn> {
        self.check_active()?;
        let csn = {
            let _g = self.engine.inner.commit_mutex.lock();
            let csn = self.engine.inner.last_csn.load(Ordering::Relaxed) + 1;
            let wall = self.engine.now_micros();
            self.engine.inner.wal.append(&WalRecord::Commit {
                txn: self.id,
                csn,
                wallclock_micros: wall,
            });
            self.engine.inner.uow.record(self.id, csn, wall);
            self.engine.inner.last_csn.store(csn, Ordering::Release);
            csn
        };
        self.active = false;
        self.release_locks();
        Ok(csn)
    }

    /// Abort: undo all changes, release locks.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if !self.active {
            return;
        }
        for op in self.undo.drain(..).rev() {
            match op {
                UndoOp::Insert { table, tuple } => {
                    if let Ok(entry) = self.engine.base_entry(table) {
                        if let TableStore::Base { table: t, .. } = &entry.store {
                            t.lock()
                                .delete_one(&tuple)
                                .expect("undo of insert must find the tuple");
                        }
                    }
                }
                UndoOp::Delete { table, tuple } => {
                    if let Ok(entry) = self.engine.base_entry(table) {
                        if let TableStore::Base { table: t, .. } = &entry.store {
                            t.lock()
                                .insert(tuple)
                                .expect("undo of delete must re-insert");
                        }
                    }
                }
                UndoOp::Apply {
                    table,
                    count,
                    tuple,
                } => {
                    if let Ok(entry) = self.engine.base_entry(table) {
                        if let TableStore::Base { table: t, .. } = &entry.store {
                            t.lock()
                                .apply_count(&tuple, -count)
                                .expect("undo of apply must invert cleanly");
                        }
                    }
                }
                UndoOp::Vd { table, undo } => {
                    if let Ok(entry) = self.engine.entry(table) {
                        if let TableStore::ViewDelta(vd) = &entry.store {
                            vd.undo(undo).expect("vd undo applies in reverse order");
                        }
                    }
                }
            }
        }
        self.engine
            .inner
            .wal
            .append(&WalRecord::Abort { txn: self.id });
        self.active = false;
        self.release_locks();
    }

    fn release_locks(&mut self) {
        for key in self.locked.drain(..) {
            self.engine.inner.locks.release_key(self.id, key);
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if self.active {
            self.do_abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolljoin_common::{tup, ColumnType};

    fn engine_with_table() -> (Engine, TableId) {
        let e = Engine::new();
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Str)]),
            )
            .unwrap();
        (e, t)
    }

    #[test]
    fn commit_assigns_increasing_csns() {
        let (e, t) = engine_with_table();
        let mut csns = Vec::new();
        for i in 0..5 {
            let mut txn = e.begin();
            txn.insert(t, tup![i, "x"]).unwrap();
            csns.push(txn.commit().unwrap());
        }
        assert_eq!(csns, vec![1, 2, 3, 4, 5]);
        assert_eq!(e.current_csn(), 5);
        assert_eq!(e.table_len(t).unwrap(), 5);
    }

    #[test]
    fn abort_undoes_all_changes() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        txn.insert(t, tup![1, "a"]).unwrap();
        txn.commit().unwrap();

        let mut txn = e.begin();
        txn.insert(t, tup![2, "b"]).unwrap();
        txn.delete_one(t, &tup![1, "a"]).unwrap();
        txn.update(t, &tup![2, "b"], tup![2, "c"]).unwrap();
        txn.abort();

        let mut reader = e.begin();
        let rows = reader.scan(t).unwrap();
        assert_eq!(rows, vec![tup![1, "a"]]);
    }

    #[test]
    fn dropped_txn_aborts() {
        let (e, t) = engine_with_table();
        {
            let mut txn = e.begin();
            txn.insert(t, tup![1, "a"]).unwrap();
            // dropped without commit
        }
        let mut reader = e.begin();
        assert!(reader.scan(t).unwrap().is_empty());
        drop(reader); // release the S lock
                      // Locks were released — a writer can proceed.
        let mut w = e.begin();
        w.insert(t, tup![1, "a"]).unwrap();
        w.commit().unwrap();
    }

    #[test]
    fn capture_pipeline_end_to_end() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        txn.insert(t, tup![1, "a"]).unwrap();
        txn.insert(t, tup![2, "b"]).unwrap();
        let c1 = txn.commit().unwrap();
        let mut txn = e.begin();
        txn.delete_one(t, &tup![1, "a"]).unwrap();
        let c2 = txn.commit().unwrap();

        e.capture_catch_up().unwrap();
        assert_eq!(e.capture_hwm(), c2);
        let rows = e.delta_range(t, TimeInterval::new(0, c2)).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].ts, Some(c1));
        assert_eq!(rows[2].count, -1);

        // Time travel.
        let at1 = e.scan_asof(t, c1).unwrap();
        assert_eq!(at1.len(), 2);
        let at2 = e.scan_asof(t, c2).unwrap();
        assert_eq!(at2.len(), 1);
        assert_eq!(at2[&tup![2, "b"]], 1);
    }

    #[test]
    fn delta_range_requires_capture() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        txn.insert(t, tup![1, "a"]).unwrap();
        let csn = txn.commit().unwrap();
        let err = e.delta_range(t, TimeInterval::new(0, csn)).unwrap_err();
        assert!(matches!(err, Error::CaptureBehind { .. }));
        e.capture_catch_up().unwrap();
        assert!(e.delta_range(t, TimeInterval::new(0, csn)).is_ok());
    }

    #[test]
    fn aborted_txn_invisible_to_capture() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        txn.insert(t, tup![1, "a"]).unwrap();
        txn.abort();
        let mut txn = e.begin();
        txn.insert(t, tup![2, "b"]).unwrap();
        let csn = txn.commit().unwrap();
        e.capture_catch_up().unwrap();
        let rows = e.delta_range(t, TimeInterval::new(0, csn)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tuple, tup![2, "b"]);
    }

    #[test]
    fn view_delta_transactional_insert_and_abort() {
        let (e, _t) = engine_with_table();
        let vd = e
            .create_view_delta("vd", Schema::new([("a", ColumnType::Int)]))
            .unwrap();
        let mut txn = e.begin();
        txn.vd_insert(vd, 3, 1, tup![1]).unwrap();
        txn.commit().unwrap();
        let mut txn = e.begin();
        txn.vd_insert(vd, 4, -1, tup![1]).unwrap();
        txn.abort();
        assert_eq!(e.vd_len(vd).unwrap(), 1);
        let rows = e.vd_range(vd, TimeInterval::new(0, 10)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ts, Some(3));
    }

    #[test]
    fn uow_records_every_commit() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        let id = txn.id();
        txn.insert(t, tup![1, "a"]).unwrap();
        let csn = txn.commit().unwrap();
        assert_eq!(e.uow().csn_of(id), Some(csn));
        assert!(e.uow().wallclock_of_csn(csn).is_some());
    }

    #[test]
    fn replay_committed_rebuilds_state() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin();
        txn.insert(t, tup![1, "a"]).unwrap();
        txn.insert(t, tup![1, "a"]).unwrap();
        txn.commit().unwrap();
        let mut txn = e.begin();
        txn.delete_one(t, &tup![1, "a"]).unwrap();
        txn.commit().unwrap();
        let mut txn = e.begin();
        txn.insert(t, tup![9, "dead"]).unwrap();
        txn.abort();

        let state = Engine::replay_committed(&e.wal().snapshot_bytes()).unwrap();
        assert_eq!(state[&t][&tup![1, "a"]], 1);
        assert!(!state[&t].contains_key(&tup![9, "dead"]));
    }

    #[test]
    fn striped_writers_on_distinct_keys_do_not_block() {
        use crate::lock::stripe_of;
        let e = Engine::with_lock_timeout(Duration::from_millis(300));
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.set_lock_granularity(LockGranularity::Striped(64));
        // Find two keys in different stripes.
        let k1 = 0i64;
        let s1 = stripe_of(0, &rolljoin_common::Value::Int(k1), 64);
        let k2 = (1i64..)
            .find(|k| stripe_of(0, &rolljoin_common::Value::Int(*k), 64) != s1)
            .unwrap();
        // Two uncommitted writers of distinct keys coexist (IX + disjoint
        // X stripes) — under table granularity the second would block.
        let mut t1 = e.begin();
        t1.insert(t, tup![k1, 1]).unwrap();
        let mut t2 = e.begin();
        t2.insert(t, tup![k2, 2]).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(e.table_len(t).unwrap(), 2);
    }

    #[test]
    fn striped_probe_blocks_on_same_key_writer() {
        let e = Engine::with_lock_timeout(Duration::from_millis(150));
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.set_lock_granularity(LockGranularity::Striped(64));
        let mut w = e.begin();
        w.insert(t, tup![7, 1]).unwrap();
        // Probe for the same key: stripe S vs stripe X → times out while
        // the writer holds it.
        let mut r = e.begin();
        let err = r
            .lookup_keys(t, 0, &[rolljoin_common::Value::Int(7)])
            .unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        drop(r);
        w.commit().unwrap();
        let mut r = e.begin();
        let hits = r
            .lookup_keys(t, 0, &[rolljoin_common::Value::Int(7)])
            .unwrap();
        assert_eq!(hits, vec![(tup![7, 1], 1)]);
    }

    #[test]
    fn striped_full_scan_conflicts_with_key_writer() {
        let e = Engine::with_lock_timeout(Duration::from_millis(150));
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.set_lock_granularity(LockGranularity::Striped(64));
        let mut w = e.begin();
        w.insert(t, tup![7, 1]).unwrap();
        // A full scan takes table S, which is incompatible with the
        // writer's IX — the hierarchy protects scans from key writers.
        let mut r = e.begin();
        assert!(matches!(r.scan(t), Err(Error::LockTimeout { .. })));
        drop(r);
        w.commit().unwrap();
        let mut r = e.begin();
        assert_eq!(r.scan(t).unwrap(), vec![tup![7, 1]]);
    }

    #[test]
    fn delta_index_keyed_range_and_estimate() {
        let e = Engine::new();
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_delta_index(t, 0).unwrap();
        assert!(e.has_delta_index(t, 0).unwrap());
        assert!(!e.has_delta_index(t, 1).unwrap());
        assert!(e.create_delta_index(t, 9).is_err(), "col out of range");
        let mut txn = e.begin();
        txn.insert(t, tup![7, 1]).unwrap();
        txn.insert(t, tup![8, 1]).unwrap();
        txn.commit().unwrap();
        let mut txn = e.begin();
        txn.insert(t, tup![7, 2]).unwrap();
        let c2 = txn.commit().unwrap();
        let iv = TimeInterval::new(0, c2);
        let key = [rolljoin_common::Value::Int(7)];
        // Capture behind: refused like delta_range.
        assert!(matches!(
            e.delta_range_keyed(t, iv, 0, &key),
            Err(Error::CaptureBehind { .. })
        ));
        e.capture_catch_up().unwrap();
        let rows = e.delta_range_keyed(t, iv, 0, &key).unwrap().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r.tuple.get(0) == &rolljoin_common::Value::Int(7)));
        assert_eq!(e.delta_keyed_estimate(t, iv, 0, &key).unwrap(), Some(2));
        assert_eq!(e.delta_range_keyed(t, iv, 1, &key).unwrap(), None);
        assert!(e.delta_postings_bytes() > 0);
        // Keyed probe through a transaction takes no lock at table grain
        // and still serves the slice.
        let mut r = e.begin();
        let got = r.delta_lookup_keys(t, iv, 0, &key).unwrap().unwrap();
        assert_eq!(got, rows);
    }

    #[test]
    fn delta_index_striped_probe_takes_stripe_footprint() {
        let e = Engine::with_lock_timeout(Duration::from_millis(150));
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_index(t, 0).unwrap();
        e.create_delta_index(t, 0).unwrap();
        e.set_lock_granularity(LockGranularity::Striped(64));
        let mut txn = e.begin();
        txn.insert(t, tup![7, 1]).unwrap();
        let c1 = txn.commit().unwrap();
        e.capture_catch_up().unwrap();
        // An uncommitted writer of key 7 holds its stripe X: the keyed
        // delta probe must block exactly like a keyed base probe.
        let mut w = e.begin();
        w.insert(t, tup![7, 2]).unwrap();
        let mut r = e.begin();
        let err = r
            .delta_lookup_keys(
                t,
                TimeInterval::new(0, c1),
                0,
                &[rolljoin_common::Value::Int(7)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        drop(r);
        w.commit().unwrap();
        let mut r = e.begin();
        let rows = r
            .delta_lookup_keys(
                t,
                TimeInterval::new(0, c1),
                0,
                &[rolljoin_common::Value::Int(7)],
            )
            .unwrap()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn recovery_restores_delta_index_with_postings() {
        let e = Engine::new();
        let t = e
            .create_table(
                "r",
                Schema::new([("a", ColumnType::Int), ("b", ColumnType::Int)]),
            )
            .unwrap();
        e.create_delta_index(t, 0).unwrap();
        let mut txn = e.begin();
        txn.insert(t, tup![5, 1]).unwrap();
        txn.commit().unwrap();
        let mut txn = e.begin();
        txn.insert(t, tup![5, 2]).unwrap();
        txn.insert(t, tup![6, 1]).unwrap();
        let c2 = txn.commit().unwrap();

        let r = Engine::recover_from_bytes(&e.wal().snapshot_bytes()).unwrap();
        assert!(r.has_delta_index(t, 0).unwrap());
        let iv = TimeInterval::new(0, c2);
        let rows = r
            .delta_range_keyed(t, iv, 0, &[rolljoin_common::Value::Int(5)])
            .unwrap()
            .unwrap();
        assert_eq!(rows.len(), 2, "capture replay back-filled postings");
        assert_eq!(
            r.delta_keyed_estimate(t, iv, 0, &[rolljoin_common::Value::Int(6)])
                .unwrap(),
            Some(1)
        );
    }

    #[test]
    fn concurrent_writers_serialize() {
        let (e, t) = engine_with_table();
        let mut handles = Vec::new();
        for w in 0..4 {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let mut txn = e.begin();
                    txn.insert(t, tup![w * 1000 + i, "w"]).unwrap();
                    txn.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.table_len(t).unwrap(), 200);
        assert_eq!(e.current_csn(), 200);
        e.capture_catch_up().unwrap();
        assert_eq!(e.delta_store(t).unwrap().len(), 200);
        // CSN order in the delta store is non-decreasing.
        let rows = e.delta_range(t, TimeInterval::new(0, 200)).unwrap();
        let ts: Vec<_> = rows.iter().map(|r| r.ts.unwrap()).collect();
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }
}
