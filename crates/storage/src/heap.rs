//! Heap files: unordered collections of records over slotted pages.

use crate::page::{Page, SlotId, PAGE_SIZE};
use rolljoin_common::{Error, Result};

/// Physical address of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    pub page: u32,
    pub slot: SlotId,
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A growable, in-memory heap file with a tiny free-space map.
///
/// The FSM keeps per-page usable-space estimates so inserts don't scan every
/// page; it is refreshed on insert/delete of that page.
pub struct HeapFile {
    pages: Vec<Page>,
    fsm: Vec<u16>,
    live_rows: u64,
    /// Hint: page most likely to have room (last successful insert).
    hint: usize,
}

impl Default for HeapFile {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> Self {
        HeapFile {
            pages: Vec::new(),
            fsm: Vec::new(),
            live_rows: 0,
            hint: 0,
        }
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.live_rows
    }

    /// True iff no live records.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    fn refresh_fsm(&mut self, page: usize) {
        self.fsm[page] = self.pages[page].usable_space().min(u16::MAX as usize) as u16;
    }

    /// Insert a record, returning its address.
    pub fn insert(&mut self, record: &[u8]) -> RowId {
        let need = record.len() + 8;
        // Try the hint page first, then any page the FSM says has room.
        let mut candidates: Vec<usize> = Vec::new();
        if self.hint < self.pages.len() {
            candidates.push(self.hint);
        }
        candidates.extend(
            (0..self.pages.len()).filter(|&i| i != self.hint && (self.fsm[i] as usize) >= need),
        );
        for i in candidates {
            if let Some(slot) = self.pages[i].insert(record) {
                self.refresh_fsm(i);
                self.hint = i;
                self.live_rows += 1;
                return RowId {
                    page: i as u32,
                    slot,
                };
            }
            self.refresh_fsm(i);
        }
        // Allocate a new page.
        let mut page = Page::new();
        let slot = page.insert(record).unwrap_or_else(|| {
            panic!(
                "record of {} bytes exceeds page size {PAGE_SIZE}",
                record.len()
            )
        });
        self.pages.push(page);
        self.fsm.push(0);
        let i = self.pages.len() - 1;
        self.refresh_fsm(i);
        self.hint = i;
        self.live_rows += 1;
        RowId {
            page: i as u32,
            slot,
        }
    }

    /// Read the record at `rid`.
    pub fn get(&self, rid: RowId) -> Option<&[u8]> {
        self.pages.get(rid.page as usize)?.get(rid.slot)
    }

    /// Delete the record at `rid`.
    pub fn delete(&mut self, rid: RowId) -> Result<()> {
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| Error::Internal(format!("no page {}", rid.page)))?;
        page.delete(rid.slot)?;
        self.live_rows -= 1;
        self.refresh_fsm(rid.page as usize);
        Ok(())
    }

    /// Iterate `(RowId, record)` over all live records.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[u8])> + '_ {
        self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    RowId {
                        page: pi as u32,
                        slot,
                    },
                    rec,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_across_pages() {
        let mut h = HeapFile::new();
        let rec = vec![0u8; 2000];
        let rids: Vec<_> = (0..20).map(|_| h.insert(&rec)).collect();
        assert_eq!(h.len(), 20);
        assert!(h.page_count() >= 5, "2000B records, 4/page → ≥5 pages");
        for rid in rids {
            assert_eq!(h.get(rid).unwrap().len(), 2000);
        }
    }

    #[test]
    fn delete_then_reuse_space() {
        let mut h = HeapFile::new();
        let rec = vec![1u8; 3000];
        let a = h.insert(&rec);
        let _b = h.insert(&rec);
        let pages_before = h.page_count();
        h.delete(a).unwrap();
        let c = h.insert(&rec);
        assert_eq!(h.page_count(), pages_before, "freed space reused");
        assert_eq!(h.get(c).unwrap(), &rec[..]);
        // RowIds are recycled: `c` may land in `a`'s old slot.
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn iter_sees_all_live_records() {
        let mut h = HeapFile::new();
        let a = h.insert(b"a");
        let b = h.insert(b"b");
        let c = h.insert(b"c");
        h.delete(b).unwrap();
        let mut got: Vec<_> = h.iter().map(|(r, _)| r).collect();
        got.sort_by_key(|r| (r.page, r.slot));
        assert_eq!(got, vec![a, c]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn get_of_missing_is_none() {
        let h = HeapFile::new();
        assert!(h.get(RowId { page: 0, slot: 0 }).is_none());
    }
}
