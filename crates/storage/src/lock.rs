//! Hierarchical strict two-phase locking: tables and key stripes.
//!
//! The paper assumes "the transaction history is serializable, and the
//! order of transaction commits is consistent with the serialization order
//! … the case, for example, in any system that used strict two-phase
//! locking" (§2). The seed implemented exactly that at **table**
//! granularity, which makes every `BaseKeyed` index probe — a read of a
//! handful of rows — serialize against every updater write to the table.
//!
//! This module generalizes the manager to a two-level hierarchy
//! (multi-granularity locking, Gray et al.):
//!
//! ```text
//!            table            IS / IX / S / SIX / X
//!           /  |  \
//!      stripe stripe stripe   S / X,  stripe = hash((col, key)) % N
//! ```
//!
//! A transaction that reads or writes *whole tables* locks at table
//! granularity exactly as before (`S`/`X` cover every stripe). A
//! transaction that touches *individual keys* — an updater writing one
//! tuple, or a propagation probe reading a delta's key set — takes an
//! intention lock (`IX`/`IS`) at the table and `X`/`S` on only the stripes
//! its keys hash to. Two key-granular transactions conflict only when
//! their key sets collide in a stripe; a full-table lock still conflicts
//! with everything, because `S`/`X` at the table are incompatible with the
//! intention modes.
//!
//! Stripes are identified by [`LockKey`] `{table, Some(stripe)}` and the
//! table level by `{table, None}`; the derived `Ord` gives the
//! `(TableId, stripe)` lexicographic acquisition order (table intention
//! first, then stripes ascending) that maintenance transactions follow to
//! stay deadlock-free among themselves. Fairness is FIFO with batched
//! grants per key (consecutive compatible waiters are granted together),
//! upgrades go to the front, and deadlocks involving updaters are resolved
//! by timeout exactly as at table granularity: a waiter that cannot be
//! granted within the deadline receives [`Error::LockTimeout`] and its
//! transaction is expected to abort and retry.

use parking_lot::{Condvar, Mutex, RwLock};
use rolljoin_common::{Error, Result, TableId, TxnId, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default stripe count for [`LockGranularity::striped`].
pub const DEFAULT_STRIPES: u32 = 64;

/// Lock granularity an engine runs its base-table reads and writes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockGranularity {
    /// Table-granularity S/X locks (the seed behavior, and the default).
    #[default]
    Table,
    /// Hierarchical: IS/IX at the table plus S/X on `n` key stripes.
    /// Writers lock the stripes of their tuple's indexed-column values;
    /// keyed probes lock the stripes of their key set; full scans fall
    /// back to a table-granularity S lock (which covers every stripe).
    Striped(u32),
}

impl LockGranularity {
    /// `Striped` with the default stripe count.
    pub fn striped() -> Self {
        LockGranularity::Striped(DEFAULT_STRIPES)
    }

    /// Stripe count, if striped.
    pub fn stripes(&self) -> Option<u32> {
        match self {
            LockGranularity::Table => None,
            LockGranularity::Striped(n) => Some((*n).max(1)),
        }
    }
}

impl std::fmt::Display for LockGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockGranularity::Table => write!(f, "table"),
            LockGranularity::Striped(n) => write!(f, "striped({n})"),
        }
    }
}

/// The stripe a `(column, key value)` pair hashes to. Deterministic and
/// process-wide stable, so readers and writers agree on the mapping: a
/// writer locks the stripes of its tuple's indexed-column values, and any
/// probe for one of those `(col, value)` pairs lands on the same stripe.
pub fn stripe_of(col: usize, key: &Value, stripes: u32) -> u32 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    col.hash(&mut h);
    key.hash(&mut h);
    (h.finish() % u64::from(stripes.max(1))) as u32
}

/// The sorted, deduplicated stripe set of a key set on one column — the
/// acquisition order for a keyed probe's stripe locks. Base-table probes
/// and keyed delta probes share this, so their `(col, key)` footprints are
/// identical and a writer's stripe X conflicts with both the same way.
pub fn stripes_for<'a>(
    col: usize,
    keys: impl IntoIterator<Item = &'a Value>,
    stripes: u32,
) -> Vec<u32> {
    let mut out: Vec<u32> = keys
        .into_iter()
        .map(|k| stripe_of(col, k, stripes))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A lockable resource: a table (`stripe: None`) or one of its key
/// stripes. The derived `Ord` is the global acquisition order —
/// `(TableId, stripe)` lexicographic with the table level before its
/// stripes — that keeps ordered acquirers deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockKey {
    pub table: TableId,
    pub stripe: Option<u32>,
}

impl LockKey {
    /// The table-granularity resource.
    pub fn table(table: TableId) -> Self {
        LockKey {
            table,
            stripe: None,
        }
    }

    /// One stripe of a table.
    pub fn stripe(table: TableId, stripe: u32) -> Self {
        LockKey {
            table,
            stripe: Some(stripe),
        }
    }
}

impl std::fmt::Display for LockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stripe {
            None => write!(f, "{}", self.table),
            Some(s) => write!(f, "{}#{s}", self.table),
        }
    }
}

/// Requested/held lock strength (the standard multi-granularity lattice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Intent to take `Shared` at a finer granularity below this resource.
    IntentShared,
    /// Intent to take `Exclusive` at a finer granularity.
    IntentExclusive,
    Shared,
    /// `Shared` + `IntentExclusive`: read the whole resource while writing
    /// parts of it.
    SharedIntentExclusive,
    Exclusive,
}

impl LockMode {
    /// The standard compatibility matrix:
    ///
    /// ```text
    ///       IS  IX   S  SIX   X
    /// IS     ✓   ✓   ✓   ✓
    /// IX     ✓   ✓
    /// S      ✓       ✓
    /// SIX    ✓
    /// X
    /// ```
    pub fn compatible_with(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IntentShared, Exclusive) | (Exclusive, IntentShared) => false,
            (IntentShared, _) | (_, IntentShared) => true,
            (IntentExclusive, IntentExclusive) | (Shared, Shared) => true,
            _ => false,
        }
    }

    /// Least upper bound in the strength lattice
    /// (`IS < {IX, S} < SIX < X`, `sup(IX, S) = SIX`). A holder of `a`
    /// requesting `b` must end up holding `a.sup(b)`.
    pub fn sup(self, other: LockMode) -> LockMode {
        use LockMode::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Exclusive, _) | (_, Exclusive) => Exclusive,
            (SharedIntentExclusive, _) | (_, SharedIntentExclusive) => SharedIntentExclusive,
            (Shared, IntentExclusive) | (IntentExclusive, Shared) => SharedIntentExclusive,
            (IntentShared, b) => b,
            (a, _) => a,
        }
    }

    /// Does holding `self` subsume a request for `want`?
    pub fn covers(self, want: LockMode) -> bool {
        self.sup(want) == self
    }
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LockMode::IntentShared => "IS",
            LockMode::IntentExclusive => "IX",
            LockMode::Shared => "S",
            LockMode::SharedIntentExclusive => "SIX",
            LockMode::Exclusive => "X",
        };
        write!(f, "{s}")
    }
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Default)]
struct LockState {
    granted: HashMap<TxnId, LockMode>,
    queue: VecDeque<Waiter>,
}

impl LockState {
    /// Can `txn` be granted `mode` given current holders (ignoring queue)?
    /// For a holder this is an upgrade check: the *combined* mode
    /// (`held.sup(mode)`) must be compatible with every other holder — so
    /// a sole S-holder upgrades to X immediately, while IS holders upgrade
    /// to IX past each other freely.
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        let want = match self.granted.get(&txn) {
            Some(held) => held.sup(mode),
            None => mode,
        };
        self.granted
            .iter()
            .all(|(t, m)| *t == txn || m.compatible_with(want))
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        let entry = self.granted.entry(txn).or_insert(mode);
        *entry = entry.sup(mode);
    }

    /// Grant queued waiters from the front while compatible.
    fn pump(&mut self) -> bool {
        let mut any = false;
        while let Some(front) = self.queue.front() {
            if self.compatible(front.txn, front.mode) {
                let w = self.queue.pop_front().expect("front exists");
                self.grant(w.txn, w.mode);
                any = true;
            } else {
                break;
            }
        }
        any
    }

    fn holds(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted.get(&txn).is_some_and(|m| m.covers(mode))
    }
}

struct LockEntry {
    state: Mutex<LockState>,
    cond: Condvar,
}

/// Counters for one lock granularity (table level or stripe level).
#[derive(Default)]
pub struct GranStats {
    /// Total nanoseconds spent blocked in `lock`.
    pub wait_nanos: AtomicU64,
    /// Number of `lock` calls that had to block.
    pub waits: AtomicU64,
    /// Number of lock acquisitions (blocked or not).
    pub acquisitions: AtomicU64,
    /// Number of lock timeouts (deadlock resolutions).
    pub timeouts: AtomicU64,
    /// Wait-time histogram: bucket `i` counts waits in `[2^i, 2^{i+1})`
    /// microseconds (bucket 0 also holds sub-microsecond waits; the last
    /// bucket is open-ended).
    pub wait_hist: [AtomicU64; WAIT_HIST_BUCKETS],
}

/// Number of power-of-two wait-time histogram buckets (µs scale: the last
/// bucket starts at `2^15` µs ≈ 33 ms).
pub const WAIT_HIST_BUCKETS: usize = 16;

fn hist_bucket(waited: Duration) -> usize {
    let us = waited.as_micros() as u64;
    if us == 0 {
        0
    } else {
        (63 - us.leading_zeros() as usize).min(WAIT_HIST_BUCKETS - 1)
    }
}

impl GranStats {
    fn record_wait(&self, waited: Duration) {
        self.wait_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.wait_hist[hist_bucket(waited)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> GranStatsSnapshot {
        let mut hist = [0u64; WAIT_HIST_BUCKETS];
        for (o, b) in hist.iter_mut().zip(&self.wait_hist) {
            *o = b.load(Ordering::Relaxed);
        }
        GranStatsSnapshot {
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_hist_us: hist,
        }
    }
}

/// Point-in-time copy of [`GranStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GranStatsSnapshot {
    pub wait_nanos: u64,
    pub waits: u64,
    pub acquisitions: u64,
    pub timeouts: u64,
    pub wait_hist_us: [u64; WAIT_HIST_BUCKETS],
}

impl GranStatsSnapshot {
    /// Mean wait among blocking acquisitions, zero when none blocked.
    pub fn mean_wait(&self) -> Duration {
        self.wait_nanos
            .checked_div(self.waits)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Difference of two snapshots (self − earlier). Saturating: the
    /// counters keep moving while a snapshot's fields are loaded one by
    /// one, so an `earlier` taken concurrently with lock traffic can read
    /// ahead of `self` on individual fields — clamp at zero instead of
    /// wrapping.
    pub fn since(&self, earlier: &GranStatsSnapshot) -> GranStatsSnapshot {
        let mut hist = [0u64; WAIT_HIST_BUCKETS];
        for (i, o) in hist.iter_mut().enumerate() {
            *o = self.wait_hist_us[i].saturating_sub(earlier.wait_hist_us[i]);
        }
        GranStatsSnapshot {
            wait_nanos: self.wait_nanos.saturating_sub(earlier.wait_nanos),
            waits: self.waits.saturating_sub(earlier.waits),
            acquisitions: self.acquisitions.saturating_sub(earlier.acquisitions),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            wait_hist_us: hist,
        }
    }
}

/// Aggregate lock statistics, split by granularity so the contention
/// experiments (E9, E17) can attribute waits to table locks vs stripe
/// locks.
#[derive(Default)]
pub struct LockStats {
    /// Table-granularity resources (including intention locks).
    pub table: GranStats,
    /// Stripe-granularity resources.
    pub stripe: GranStats,
}

impl LockStats {
    fn of(&self, key: &LockKey) -> &GranStats {
        if key.stripe.is_some() {
            &self.stripe
        } else {
            &self.table
        }
    }

    /// Combined snapshot `(wait_nanos, waits, acquisitions, timeouts)`
    /// summed over both granularities (the seed's reporting shape).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        let s = self.snapshot_full();
        (
            s.table.wait_nanos + s.stripe.wait_nanos,
            s.table.waits + s.stripe.waits,
            s.table.acquisitions + s.stripe.acquisitions,
            s.table.timeouts + s.stripe.timeouts,
        )
    }

    /// Per-granularity snapshot with wait-time histograms.
    pub fn snapshot_full(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            table: self.table.snapshot(),
            stripe: self.stripe.snapshot(),
        }
    }
}

/// Point-in-time copy of [`LockStats`], per granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStatsSnapshot {
    pub table: GranStatsSnapshot,
    pub stripe: GranStatsSnapshot,
}

impl LockStatsSnapshot {
    /// Difference of two snapshots (self − earlier).
    pub fn since(&self, earlier: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            table: self.table.since(&earlier.table),
            stripe: self.stripe.since(&earlier.stripe),
        }
    }
}

/// The lock manager: one FIFO queue per [`LockKey`].
pub struct LockManager {
    entries: RwLock<HashMap<LockKey, Arc<LockEntry>>>,
    timeout: Duration,
    stats: LockStats,
}

impl LockManager {
    /// Create a manager with the given deadlock-resolution timeout.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            entries: RwLock::new(HashMap::new()),
            timeout,
            stats: LockStats::default(),
        }
    }

    /// Lock statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn entry(&self, key: LockKey) -> Arc<LockEntry> {
        if let Some(e) = self.entries.read().get(&key) {
            return e.clone();
        }
        self.entries
            .write()
            .entry(key)
            .or_insert_with(|| {
                Arc::new(LockEntry {
                    state: Mutex::new(LockState::default()),
                    cond: Condvar::new(),
                })
            })
            .clone()
    }

    /// Acquire `mode` on `table` (table granularity), blocking up to the
    /// timeout. Returns the time spent blocked.
    pub fn lock(&self, txn: TxnId, table: TableId, mode: LockMode) -> Result<Duration> {
        self.lock_key(txn, LockKey::table(table), mode)
    }

    /// Acquire `mode` on an arbitrary resource, blocking up to the
    /// timeout. Returns the time spent blocked.
    pub fn lock_key(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<Duration> {
        let entry = self.entry(key);
        let gran = self.stats.of(&key);
        let mut state = entry.state.lock();
        gran.acquisitions.fetch_add(1, Ordering::Relaxed);

        if state.holds(txn, mode) {
            return Ok(Duration::ZERO);
        }
        if state.queue.is_empty() && state.compatible(txn, mode) {
            state.grant(txn, mode);
            return Ok(Duration::ZERO);
        }

        // Upgrades go to the front so a holder requesting a stronger mode
        // is not blocked behind unrelated waiters (which could never be
        // granted anyway while it holds its current mode). Competing
        // upgraders deadlock and are resolved by timeout.
        if state.granted.contains_key(&txn) {
            state.queue.push_front(Waiter { txn, mode });
        } else {
            state.queue.push_back(Waiter { txn, mode });
        }
        state.pump();
        if state.holds(txn, mode) {
            entry.cond.notify_all();
            return Ok(Duration::ZERO);
        }

        let started = Instant::now();
        gran.waits.fetch_add(1, Ordering::Relaxed);
        let deadline = started + self.timeout;
        loop {
            let timed_out = entry.cond.wait_until(&mut state, deadline).timed_out();
            if state.holds(txn, mode) {
                let waited = started.elapsed();
                gran.record_wait(waited);
                return Ok(waited);
            }
            if timed_out {
                // Withdraw the request.
                if let Some(pos) = state
                    .queue
                    .iter()
                    .position(|w| w.txn == txn && w.mode == mode)
                {
                    state.queue.remove(pos);
                }
                if state.pump() {
                    entry.cond.notify_all();
                }
                gran.record_wait(started.elapsed());
                gran.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(Error::LockTimeout {
                    txn,
                    table: key.table,
                });
            }
        }
    }

    /// Release `txn`'s lock on `table` at table granularity (no-op if not
    /// held). Stripe locks are released via [`LockManager::release_key`].
    pub fn release(&self, txn: TxnId, table: TableId) {
        self.release_key(txn, LockKey::table(table));
    }

    /// Release `txn`'s lock on one resource (no-op if not held).
    pub fn release_key(&self, txn: TxnId, key: LockKey) {
        let entry = self.entry(key);
        let mut state = entry.state.lock();
        if state.granted.remove(&txn).is_some() {
            state.pump();
            entry.cond.notify_all();
        }
    }

    /// Does `txn` hold at least `mode` on `table` (table granularity)?
    pub fn holds(&self, txn: TxnId, table: TableId, mode: LockMode) -> bool {
        self.holds_key(txn, LockKey::table(table), mode)
    }

    /// Does `txn` hold at least `mode` on a resource?
    pub fn holds_key(&self, txn: TxnId, key: LockKey, mode: LockMode) -> bool {
        let entry = self.entry(key);
        let state = entry.state.lock();
        state.holds(txn, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_millis(200)))
    }

    const T: TableId = TableId(1);

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, LockMode::Shared).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::Shared));
        assert!(m.holds(TxnId(2), T, LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_shared_until_release() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let blocked = Arc::new(AtomicBool::new(true));
        let b2 = blocked.clone();
        let h = thread::spawn(move || {
            m2.lock(TxnId(2), T, LockMode::Shared).unwrap();
            b2.store(false, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(blocked.load(Ordering::SeqCst));
        m.release(TxnId(1), T);
        h.join().unwrap();
        assert!(!blocked.load(Ordering::SeqCst));
    }

    #[test]
    fn reentrant_and_covering() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        // X covers S; repeat requests are free.
        assert_eq!(
            m.lock(TxnId(1), T, LockMode::Shared).unwrap(),
            Duration::ZERO
        );
        assert_eq!(
            m.lock(TxnId(1), T, LockMode::Exclusive).unwrap(),
            Duration::ZERO
        );
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::Exclusive));
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, LockMode::Shared).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(1), T, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        m.release(TxnId(2), T);
        assert!(h.join().unwrap().is_ok());
        assert!(m.holds(TxnId(1), T, LockMode::Exclusive));
    }

    #[test]
    fn timeout_resolves_deadlock() {
        let m = mgr();
        let a = TableId(10);
        let b = TableId(11);
        m.lock(TxnId(1), a, LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), b, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(2), a, LockMode::Exclusive));
        let r1 = m.lock(TxnId(1), b, LockMode::Exclusive);
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one side of the deadlock must time out"
        );
        let (_, _, _, timeouts) = m.stats().snapshot();
        assert!(timeouts >= 1);
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        // Writer queues…
        let mw = m.clone();
        let writer = thread::spawn(move || mw.lock(TxnId(2), T, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // …then a new reader must queue *behind* the writer.
        let mr = m.clone();
        let got_read = Arc::new(AtomicBool::new(false));
        let g2 = got_read.clone();
        let reader = thread::spawn(move || {
            mr.lock(TxnId(3), T, LockMode::Shared).unwrap();
            g2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(
            !got_read.load(Ordering::SeqCst),
            "reader must wait behind queued writer"
        );
        m.release(TxnId(1), T);
        writer.join().unwrap().unwrap();
        m.release(TxnId(2), T);
        reader.join().unwrap();
        assert!(got_read.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_track_waiting() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(2), T, LockMode::Shared));
        thread::sleep(Duration::from_millis(50));
        m.release(TxnId(1), T);
        let waited = h.join().unwrap().unwrap();
        assert!(waited >= Duration::from_millis(30));
        let (nanos, waits, acqs, _) = m.stats().snapshot();
        assert!(nanos > 0);
        assert_eq!(waits, 1);
        assert!(acqs >= 2);
        // The wait landed in the table-granularity histogram, in a bucket
        // at or above ~32 ms (2^15 µs).
        let full = m.stats().snapshot_full();
        assert_eq!(full.table.waits, 1);
        assert_eq!(full.stripe.waits, 0);
        assert_eq!(full.table.wait_hist_us.iter().sum::<u64>(), 1);
        assert!(full.table.mean_wait() >= Duration::from_millis(30));
    }

    // ---- hierarchy / stripe tests ---------------------------------------

    #[test]
    fn mode_lattice_and_matrix() {
        use LockMode::*;
        // Compatibility matrix spot checks.
        assert!(IntentShared.compatible_with(IntentExclusive));
        assert!(IntentShared.compatible_with(SharedIntentExclusive));
        assert!(!IntentShared.compatible_with(Exclusive));
        assert!(IntentExclusive.compatible_with(IntentExclusive));
        assert!(!IntentExclusive.compatible_with(Shared));
        assert!(!SharedIntentExclusive.compatible_with(SharedIntentExclusive));
        assert!(!Exclusive.compatible_with(Shared));
        // Supremum lattice.
        assert_eq!(Shared.sup(IntentExclusive), SharedIntentExclusive);
        assert_eq!(IntentShared.sup(IntentExclusive), IntentExclusive);
        assert_eq!(SharedIntentExclusive.sup(Shared), SharedIntentExclusive);
        assert_eq!(Shared.sup(Exclusive), Exclusive);
        // Covering.
        assert!(Exclusive.covers(SharedIntentExclusive));
        assert!(SharedIntentExclusive.covers(Shared));
        assert!(SharedIntentExclusive.covers(IntentExclusive));
        assert!(Shared.covers(IntentShared));
        assert!(!Shared.covers(IntentExclusive));
        assert!(!IntentExclusive.covers(Shared));
    }

    #[test]
    fn stripe_hash_is_stable_and_in_range() {
        let v = Value::Int(42);
        let a = stripe_of(0, &v, 64);
        assert_eq!(a, stripe_of(0, &v, 64));
        assert!(a < 64);
        // Different columns map the same value independently.
        let b = stripe_of(1, &v, 64);
        assert!(b < 64);
        assert_eq!(stripe_of(7, &Value::Null, 1), 0);
    }

    #[test]
    fn stripes_for_sorts_and_dedups() {
        let keys = [Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(3)];
        let got = stripes_for(0, &keys, 64);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        let mut want: Vec<u32> = keys.iter().map(|k| stripe_of(0, k, 64)).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn lock_key_order_puts_table_before_stripes() {
        let t = LockKey::table(T);
        let s0 = LockKey::stripe(T, 0);
        let s9 = LockKey::stripe(T, 9);
        let u = LockKey::table(TableId(2));
        let mut keys = vec![u, s9, t, s0];
        keys.sort();
        assert_eq!(keys, vec![t, s0, s9, u]);
    }

    #[test]
    fn disjoint_stripes_do_not_conflict() {
        let m = mgr();
        // Writer: IX on the table + X on stripe 3.
        m.lock(TxnId(1), T, LockMode::IntentExclusive).unwrap();
        m.lock_key(TxnId(1), LockKey::stripe(T, 3), LockMode::Exclusive)
            .unwrap();
        // Reader: IS + S on a different stripe — no blocking.
        assert_eq!(
            m.lock(TxnId(2), T, LockMode::IntentShared).unwrap(),
            Duration::ZERO
        );
        assert_eq!(
            m.lock_key(TxnId(2), LockKey::stripe(T, 5), LockMode::Shared)
                .unwrap(),
            Duration::ZERO
        );
        // Same stripe conflicts.
        let m2 = m.clone();
        let h =
            thread::spawn(move || m2.lock_key(TxnId(2), LockKey::stripe(T, 3), LockMode::Shared));
        thread::sleep(Duration::from_millis(30));
        m.release_key(TxnId(1), LockKey::stripe(T, 3));
        assert!(h.join().unwrap().unwrap() >= Duration::from_millis(20));
    }

    #[test]
    fn table_shared_blocks_intent_exclusive() {
        let m = mgr();
        // Full scan: table S. A key-granular writer's IX must wait — the
        // table lock covers every stripe.
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(2), T, LockMode::IntentExclusive));
        thread::sleep(Duration::from_millis(30));
        m.release(TxnId(1), T);
        assert!(h.join().unwrap().unwrap() >= Duration::from_millis(20));
    }

    #[test]
    fn stripe_upgrade_when_sole_holder_and_waits_otherwise() {
        let m = mgr();
        let k = LockKey::stripe(T, 7);
        m.lock_key(TxnId(1), k, LockMode::Shared).unwrap();
        // Sole holder: immediate upgrade.
        m.lock_key(TxnId(1), k, LockMode::Exclusive).unwrap();
        assert!(m.holds_key(TxnId(1), k, LockMode::Exclusive));
        m.release_key(TxnId(1), k);
        // With a second reader the upgrade must wait for its release.
        m.lock_key(TxnId(1), k, LockMode::Shared).unwrap();
        m.lock_key(TxnId(2), k, LockMode::Shared).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock_key(TxnId(1), k, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert!(!m.holds_key(TxnId(1), k, LockMode::Exclusive));
        m.release_key(TxnId(2), k);
        assert!(h.join().unwrap().is_ok());
        assert!(m.holds_key(TxnId(1), k, LockMode::Exclusive));
    }

    #[test]
    fn stripe_timeout_resolves_deadlock() {
        let m = mgr();
        let a = LockKey::stripe(T, 1);
        let b = LockKey::stripe(T, 2);
        m.lock_key(TxnId(1), a, LockMode::Exclusive).unwrap();
        m.lock_key(TxnId(2), b, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock_key(TxnId(2), a, LockMode::Exclusive));
        let r1 = m.lock_key(TxnId(1), b, LockMode::Exclusive);
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one side of the stripe deadlock must time out"
        );
        let full = m.stats().snapshot_full();
        assert!(full.stripe.timeouts >= 1);
        assert_eq!(full.table.timeouts, 0);
    }

    #[test]
    fn stripe_fifo_prevents_writer_starvation() {
        let m = mgr();
        let k = LockKey::stripe(T, 4);
        m.lock_key(TxnId(1), k, LockMode::Shared).unwrap();
        let mw = m.clone();
        let writer = thread::spawn(move || mw.lock_key(TxnId(2), k, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        let mr = m.clone();
        let got_read = Arc::new(AtomicBool::new(false));
        let g2 = got_read.clone();
        let reader = thread::spawn(move || {
            mr.lock_key(TxnId(3), k, LockMode::Shared).unwrap();
            g2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(
            !got_read.load(Ordering::SeqCst),
            "stripe reader must wait behind the queued stripe writer"
        );
        m.release_key(TxnId(1), k);
        writer.join().unwrap().unwrap();
        m.release_key(TxnId(2), k);
        reader.join().unwrap();
        assert!(got_read.load(Ordering::SeqCst));
    }

    #[test]
    fn intent_holders_coexist_and_upgrade() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::IntentShared).unwrap();
        m.lock(TxnId(2), T, LockMode::IntentExclusive).unwrap();
        m.lock(TxnId(3), T, LockMode::IntentShared).unwrap();
        // IS + IX coexist at the table; IS upgrades to IX past other IX.
        m.lock(TxnId(1), T, LockMode::IntentExclusive).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::IntentExclusive));
        // S + IX on the same txn combine to SIX, which excludes new IS+?
        // holders' stronger modes but admits plain IS.
        m.release(TxnId(2), T);
        m.release(TxnId(3), T);
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::SharedIntentExclusive));
        assert_eq!(
            m.lock(TxnId(4), T, LockMode::IntentShared).unwrap(),
            Duration::ZERO
        );
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(5), T, LockMode::IntentExclusive));
        thread::sleep(Duration::from_millis(30));
        m.release(TxnId(1), T);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn granularity_knob_defaults_and_stripes() {
        assert_eq!(LockGranularity::default(), LockGranularity::Table);
        assert_eq!(LockGranularity::striped(), LockGranularity::Striped(64));
        assert_eq!(LockGranularity::Table.stripes(), None);
        assert_eq!(LockGranularity::Striped(8).stripes(), Some(8));
        assert_eq!(LockGranularity::Striped(0).stripes(), Some(1));
        assert_eq!(format!("{}", LockGranularity::Striped(64)), "striped(64)");
    }
}
