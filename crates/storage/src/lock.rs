//! Table-granularity strict two-phase locking.
//!
//! The paper assumes "the transaction history is serializable, and the
//! order of transaction commits is consistent with the serialization order
//! … the case, for example, in any system that used strict two-phase
//! locking" (§2). We implement exactly that: shared/exclusive locks at
//! table granularity, held to commit. Table granularity makes the
//! contention the paper is designed to mitigate (propagation transactions
//! vs. concurrent updaters) directly visible and measurable.
//!
//! Fairness is FIFO with batched grants (consecutive compatible waiters are
//! granted together). Deadlocks are resolved by timeout: a waiter that
//! cannot be granted within the deadline receives [`Error::LockTimeout`]
//! and its transaction is expected to abort and retry.

use parking_lot::{Condvar, Mutex, RwLock};
use rolljoin_common::{Error, Result, TableId, TxnId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requested/held lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

impl LockMode {
    fn covers(self, want: LockMode) -> bool {
        self == LockMode::Exclusive || want == LockMode::Shared
    }
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Default)]
struct LockState {
    granted: HashMap<TxnId, LockMode>,
    queue: VecDeque<Waiter>,
}

impl LockState {
    /// Can `txn` be granted `mode` given current holders (ignoring queue)?
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match self.granted.get(&txn) {
            Some(held) if held.covers(mode) => true,
            Some(_) => {
                // Upgrade S → X: only when sole holder.
                self.granted.len() == 1
            }
            None => match mode {
                LockMode::Shared => self.granted.values().all(|m| *m == LockMode::Shared),
                LockMode::Exclusive => self.granted.is_empty(),
            },
        }
    }

    /// Grant queued waiters from the front while compatible.
    fn pump(&mut self) -> bool {
        let mut any = false;
        while let Some(front) = self.queue.front() {
            if self.compatible(front.txn, front.mode) {
                let w = self.queue.pop_front().expect("front exists");
                let entry = self.granted.entry(w.txn).or_insert(w.mode);
                if w.mode == LockMode::Exclusive {
                    *entry = LockMode::Exclusive;
                }
                any = true;
            } else {
                break;
            }
        }
        any
    }

    fn holds(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted.get(&txn).is_some_and(|m| m.covers(mode))
    }
}

struct LockEntry {
    state: Mutex<LockState>,
    cond: Condvar,
}

/// Aggregate lock statistics, used by the contention experiments (E9).
#[derive(Default)]
pub struct LockStats {
    /// Total nanoseconds spent blocked in `lock`.
    pub wait_nanos: AtomicU64,
    /// Number of `lock` calls that had to block.
    pub waits: AtomicU64,
    /// Number of lock acquisitions (blocked or not).
    pub acquisitions: AtomicU64,
    /// Number of lock timeouts (deadlock resolutions).
    pub timeouts: AtomicU64,
}

impl LockStats {
    /// Snapshot (wait_nanos, waits, acquisitions, timeouts).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.wait_nanos.load(Ordering::Relaxed),
            self.waits.load(Ordering::Relaxed),
            self.acquisitions.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
        )
    }
}

/// The lock manager.
pub struct LockManager {
    entries: RwLock<HashMap<TableId, Arc<LockEntry>>>,
    timeout: Duration,
    stats: LockStats,
}

impl LockManager {
    /// Create a manager with the given deadlock-resolution timeout.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            entries: RwLock::new(HashMap::new()),
            timeout,
            stats: LockStats::default(),
        }
    }

    /// Lock statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn entry(&self, table: TableId) -> Arc<LockEntry> {
        if let Some(e) = self.entries.read().get(&table) {
            return e.clone();
        }
        self.entries
            .write()
            .entry(table)
            .or_insert_with(|| {
                Arc::new(LockEntry {
                    state: Mutex::new(LockState::default()),
                    cond: Condvar::new(),
                })
            })
            .clone()
    }

    /// Acquire `mode` on `table` for `txn`, blocking up to the timeout.
    /// Returns the time spent blocked.
    pub fn lock(&self, txn: TxnId, table: TableId, mode: LockMode) -> Result<Duration> {
        let entry = self.entry(table);
        let mut state = entry.state.lock();
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);

        if state.holds(txn, mode) {
            return Ok(Duration::ZERO);
        }
        if state.queue.is_empty() && state.compatible(txn, mode) {
            let slot = state.granted.entry(txn).or_insert(mode);
            if mode == LockMode::Exclusive {
                *slot = LockMode::Exclusive;
            }
            return Ok(Duration::ZERO);
        }

        // Upgrades go to the front so a sole S-holder requesting X is not
        // blocked behind unrelated waiters (which could never be granted
        // anyway while it holds S). Competing upgraders deadlock and are
        // resolved by timeout.
        if state.granted.contains_key(&txn) {
            state.queue.push_front(Waiter { txn, mode });
        } else {
            state.queue.push_back(Waiter { txn, mode });
        }
        state.pump();
        if state.holds(txn, mode) {
            entry.cond.notify_all();
            return Ok(Duration::ZERO);
        }

        let started = Instant::now();
        self.stats.waits.fetch_add(1, Ordering::Relaxed);
        let deadline = started + self.timeout;
        loop {
            let timed_out = entry.cond.wait_until(&mut state, deadline).timed_out();
            if state.holds(txn, mode) {
                let waited = started.elapsed();
                self.stats
                    .wait_nanos
                    .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
                return Ok(waited);
            }
            if timed_out {
                // Withdraw the request.
                if let Some(pos) = state
                    .queue
                    .iter()
                    .position(|w| w.txn == txn && w.mode == mode)
                {
                    state.queue.remove(pos);
                }
                if state.pump() {
                    entry.cond.notify_all();
                }
                let waited = started.elapsed();
                self.stats
                    .wait_nanos
                    .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(Error::LockTimeout { txn, table });
            }
        }
    }

    /// Release `txn`'s lock on `table` (no-op if not held).
    pub fn release(&self, txn: TxnId, table: TableId) {
        let entry = self.entry(table);
        let mut state = entry.state.lock();
        if state.granted.remove(&txn).is_some() {
            state.pump();
            entry.cond.notify_all();
        }
    }

    /// Does `txn` hold at least `mode` on `table`?
    pub fn holds(&self, txn: TxnId, table: TableId, mode: LockMode) -> bool {
        let entry = self.entry(table);
        let state = entry.state.lock();
        state.holds(txn, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_millis(200)))
    }

    const T: TableId = TableId(1);

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, LockMode::Shared).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::Shared));
        assert!(m.holds(TxnId(2), T, LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_shared_until_release() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let blocked = Arc::new(AtomicBool::new(true));
        let b2 = blocked.clone();
        let h = thread::spawn(move || {
            m2.lock(TxnId(2), T, LockMode::Shared).unwrap();
            b2.store(false, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(blocked.load(Ordering::SeqCst));
        m.release(TxnId(1), T);
        h.join().unwrap();
        assert!(!blocked.load(Ordering::SeqCst));
    }

    #[test]
    fn reentrant_and_covering() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        // X covers S; repeat requests are free.
        assert_eq!(
            m.lock(TxnId(1), T, LockMode::Shared).unwrap(),
            Duration::ZERO
        );
        assert_eq!(
            m.lock(TxnId(1), T, LockMode::Exclusive).unwrap(),
            Duration::ZERO
        );
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        assert!(m.holds(TxnId(1), T, LockMode::Exclusive));
    }

    #[test]
    fn upgrade_waits_for_other_readers() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, LockMode::Shared).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(1), T, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        m.release(TxnId(2), T);
        assert!(h.join().unwrap().is_ok());
        assert!(m.holds(TxnId(1), T, LockMode::Exclusive));
    }

    #[test]
    fn timeout_resolves_deadlock() {
        let m = mgr();
        let a = TableId(10);
        let b = TableId(11);
        m.lock(TxnId(1), a, LockMode::Exclusive).unwrap();
        m.lock(TxnId(2), b, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(2), a, LockMode::Exclusive));
        let r1 = m.lock(TxnId(1), b, LockMode::Exclusive);
        let r2 = h.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one side of the deadlock must time out"
        );
        let (_, _, _, timeouts) = m.stats().snapshot();
        assert!(timeouts >= 1);
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Shared).unwrap();
        // Writer queues…
        let mw = m.clone();
        let writer = thread::spawn(move || mw.lock(TxnId(2), T, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // …then a new reader must queue *behind* the writer.
        let mr = m.clone();
        let got_read = Arc::new(AtomicBool::new(false));
        let g2 = got_read.clone();
        let reader = thread::spawn(move || {
            mr.lock(TxnId(3), T, LockMode::Shared).unwrap();
            g2.store(true, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert!(
            !got_read.load(Ordering::SeqCst),
            "reader must wait behind queued writer"
        );
        m.release(TxnId(1), T);
        writer.join().unwrap().unwrap();
        m.release(TxnId(2), T);
        reader.join().unwrap();
        assert!(got_read.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_track_waiting() {
        let m = mgr();
        m.lock(TxnId(1), T, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.lock(TxnId(2), T, LockMode::Shared));
        thread::sleep(Duration::from_millis(50));
        m.release(TxnId(1), T);
        let waited = h.join().unwrap().unwrap();
        assert!(waited >= Duration::from_millis(30));
        let (nanos, waits, acqs, _) = m.stats().snapshot();
        assert!(nanos > 0);
        assert_eq!(waits, 1);
        assert!(acqs >= 2);
    }
}
