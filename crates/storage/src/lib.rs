//! `rolljoin-storage` — the embedded multiset storage engine underneath the
//! rolling-join-propagation reproduction.
//!
//! The paper's prototype (§5, Fig. 11) ran as external drivers around the
//! DB2 engine plus the DPropR log-capture tool. This crate is the
//! from-scratch substitute for that substrate:
//!
//! * [`page`] / [`heap`] / [`table`] — slotted 8 KiB pages, heap files, and
//!   multiset base tables with a tuple index.
//! * [`wal`] — a CRC-guarded binary write-ahead log with recovery replay.
//! * [`lock`] — hierarchical strict-2PL locks (IS/IX/S/SIX/X at table
//!   granularity plus S/X key stripes) with FIFO queues and timeout-based
//!   deadlock resolution.
//! * [`uow`] — the unit-of-work table mapping transactions to commit
//!   sequence numbers and wallclock times (paper §5).
//! * [`capture`] — the asynchronous log-capture process (DPropR analogue)
//!   that populates base delta stores and publishes a capture high-water
//!   mark.
//! * [`delta`] — base delta stores (`Δ^R`, CSN-ordered) and view delta
//!   stores (timestamp-keyed, out-of-order inserts).
//! * [`engine`] — the transaction API tying it all together.

pub mod capture;
pub mod codec;
pub mod delta;
pub mod engine;
pub mod heap;
pub mod lock;
pub mod page;
pub mod table;
pub mod uow;
pub mod wal;

pub use capture::Capture;
pub use delta::{CompactionStats, DeltaStore, ScanCache, ScanCacheStats, ViewDeltaStore};
pub use engine::{Engine, Txn};
pub use heap::RowId;
pub use lock::{
    stripe_of, GranStats, GranStatsSnapshot, LockGranularity, LockKey, LockManager, LockMode,
    LockStats, LockStatsSnapshot, DEFAULT_STRIPES, WAIT_HIST_BUCKETS,
};
pub use table::BaseTable;
pub use uow::{UnitOfWork, UowEntry};
pub use wal::{Lsn, Wal, WalRecord};
