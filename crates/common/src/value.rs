//! The SQL-ish value model.
//!
//! Values are small, cheap to clone (strings are `Arc<str>`), totally
//! ordered, and hashable so they can serve as hash-join and multiset keys.
//! Floats are ordered via their IEEE-754 total order, which is good enough
//! for grouping and join keys in this system.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value; equal to itself (so it
    /// can be used as a grouping key), but [`Value::sql_eq`] treats it as
    /// unknown like SQL does.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, ordered by IEEE total order.
    Float(f64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`ColumnType`](crate::ColumnType) this value inhabits, or `None`
    /// for NULL (which inhabits every type).
    pub fn column_type(&self) -> Option<crate::ColumnType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(crate::ColumnType::Bool),
            Value::Int(_) => Some(crate::ColumnType::Int),
            Value::Float(_) => Some(crate::ColumnType::Float),
            Value::Str(_) => Some(crate::ColumnType::Str),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL equality: NULL compared to anything is not equal (returns
    /// `None`); otherwise three-valued logic collapses to a boolean.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self == other)
        }
    }

    /// SQL comparison with NULL treated as unknown.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.cmp(other))
        }
    }

    /// Rank used to order values of different runtime types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Integer accessor, for workload/test code that knows the schema.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor, for workload/test code that knows the schema.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_is_by_value() {
        assert_eq!(Value::Int(7), Value::from(7i64));
        assert_eq!(Value::str("x"), Value::from("x"));
        assert_ne!(Value::Int(7), Value::Float(7.0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn nan_is_self_equal_for_grouping() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vs = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(-1));
        assert_eq!(vs[3], Value::Int(3));
        assert_eq!(vs[4], Value::Float(1.5));
        assert_eq!(vs[5], Value::str("b"));
    }

    #[test]
    fn sql_semantics_treat_null_as_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::from("abc")));
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::from(42i64)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
    }
}
