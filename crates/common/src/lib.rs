//! Shared primitives for the `rolljoin` workspace.
//!
//! This crate defines the vocabulary types used by every layer of the
//! reproduction of *"How To Roll a Join: Asynchronous Incremental View
//! Maintenance"* (Salem, Beyer, Lindsay, Cochrane — SIGMOD 2000):
//!
//! * [`Value`] / [`Tuple`] — the data model. Tables are **multisets** of
//!   tuples (paper §2).
//! * [`Schema`] / [`ColumnType`] — column metadata.
//! * [`Csn`] — commit sequence numbers, the logical "time" of the paper.
//!   The paper's prototype "uses commit sequence numbers as times" (§5);
//!   we do exactly the same.
//! * [`DeltaRow`] — a change record `(timestamp, count, tuple)`. A count of
//!   `+n` inserts `n` copies, `-n` deletes `n` copies (paper §2). Base-table
//!   rows are modeled with `count = +1` and a `None` timestamp.
//! * [`Error`] — the workspace-wide error type.

pub mod error;
pub mod row;
pub mod schema;
pub mod time;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use row::DeltaRow;
pub use schema::{ColumnType, Schema};
pub use time::{Csn, TimeInterval, TIME_ZERO};
pub use tuple::Tuple;
pub use value::Value;

/// Identifies a table (base, delta, view, or view-delta) in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies an in-flight or finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}
