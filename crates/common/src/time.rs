//! Logical time.
//!
//! The paper (§2, §5) requires that delta-tuple timestamps reflect the
//! *serialization order* of the committing transactions, and its prototype
//! uses DB2 **commit sequence numbers** internally as times. We adopt the
//! same convention: time is a [`Csn`] — a `u64` allocated at commit under a
//! global commit mutex, so CSN order ≡ commit order ≡ serialization order.
//!
//! Timestamp selections such as `σ_{a,b}` (all tuples with timestamp
//! `> t_a` and `≤ t_b`) are represented by [`TimeInterval`] which is
//! **half-open on the left**: `(a, b]`.

/// A commit sequence number. `0` is the "creation time" `t_0` of the
/// database — no transaction ever commits at CSN 0.
pub type Csn = u64;

/// The database creation time `t_0` from the paper's figures.
pub const TIME_ZERO: Csn = 0;

/// The half-open interval `(lo, hi]` used by the paper's `σ_{a,b}` selection.
///
/// `σ_{a,b}(Δ^R)` selects delta tuples with timestamp `> t_a` and `≤ t_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// Exclusive lower bound `t_a`.
    pub lo: Csn,
    /// Inclusive upper bound `t_b`.
    pub hi: Csn,
}

impl TimeInterval {
    /// Build `(lo, hi]`. Panics if `lo > hi` (an empty interval `lo == hi`
    /// is allowed and contains nothing).
    pub fn new(lo: Csn, hi: Csn) -> Self {
        assert!(lo <= hi, "invalid time interval ({lo}, {hi}]");
        TimeInterval { lo, hi }
    }

    /// Does the interval contain timestamp `t`?
    pub fn contains(&self, t: Csn) -> bool {
        t > self.lo && t <= self.hi
    }

    /// True iff the interval contains no timestamps.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Width in CSNs.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Intersection of two intervals, or `None` when disjoint.
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(TimeInterval { lo, hi })
        } else {
            None
        }
    }

    /// Split at `t` (must lie inside) into `(lo, t]` and `(t, hi]` —
    /// Lemma 4.1's split of a timed delta table.
    pub fn split(&self, t: Csn) -> (TimeInterval, TimeInterval) {
        assert!(
            t >= self.lo && t <= self.hi,
            "split point {t} outside ({}, {}]",
            self.lo,
            self.hi
        );
        (TimeInterval::new(self.lo, t), TimeInterval::new(t, self.hi))
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_is_half_open() {
        let iv = TimeInterval::new(3, 7);
        assert!(!iv.contains(3));
        assert!(iv.contains(4));
        assert!(iv.contains(7));
        assert!(!iv.contains(8));
    }

    #[test]
    fn empty_interval_contains_nothing() {
        let iv = TimeInterval::new(5, 5);
        assert!(iv.is_empty());
        assert!(!iv.contains(5));
        assert_eq!(iv.len(), 0);
    }

    #[test]
    fn intersect_overlapping_and_disjoint() {
        let a = TimeInterval::new(0, 10);
        let b = TimeInterval::new(5, 15);
        assert_eq!(a.intersect(&b), Some(TimeInterval::new(5, 10)));
        let c = TimeInterval::new(10, 20);
        assert_eq!(a.intersect(&c), None); // (0,10] ∩ (10,20] = ∅
    }

    #[test]
    fn split_partitions() {
        let iv = TimeInterval::new(2, 9);
        let (l, r) = iv.split(5);
        assert_eq!(l, TimeInterval::new(2, 5));
        assert_eq!(r, TimeInterval::new(5, 9));
        for t in 0..12 {
            assert_eq!(iv.contains(t), l.contains(t) || r.contains(t));
            assert!(!(l.contains(t) && r.contains(t)));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_interval_panics() {
        let _ = TimeInterval::new(7, 3);
    }
}
