//! Tuples: immutable, cheaply-cloneable rows.

use crate::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable row of [`Value`]s.
///
/// Cloning a `Tuple` is an `Arc` bump, which matters because propagation
/// queries fan the same tuple into many join results and delta records.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// The empty tuple (projection onto zero columns).
    pub fn empty() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Borrow the values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Column accessor. Panics on out-of-range (schema mismatch is a bug).
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Concatenate two tuples (used when composing join results).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(Arc::from(v))
    }

    /// Project onto the given column indexes (in order, duplicates allowed).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple::new(values)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(Arc::from(values))
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// Convenience for tests and examples: `tup![1, "a", Value::Null]`.
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tup![1, "a", 2.5];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t[1], Value::str("a"));
        assert_eq!(t[2], Value::Float(2.5));
    }

    #[test]
    fn concat_joins_rows() {
        let l = tup![1, 2];
        let r = tup!["x"];
        let j = l.concat(&r);
        assert_eq!(j, tup![1, 2, "x"]);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tup![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tup![30, 10, 10]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn clone_is_shallow() {
        let t = tup![1, "abc"];
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(tup![1, "a"].to_string(), "(1, 'a')");
    }
}
