//! Delta rows: the `(timestamp, count, tuple)` change records of paper §2.

use crate::{Csn, Tuple};
use std::fmt;

/// One change record in a delta table (or one logical row of a base table).
///
/// * `count = +n` represents the insertion of `n` copies of `tuple`;
///   `count = -n` the deletion of `n` copies (paper §2).
/// * `ts = Some(c)` is the commit time of the transaction that made the
///   change. Base tables carry the implicit timestamp `None` ("null") — it
///   exists "only for notational convenience" (paper §2) and is never
///   considered when taking minimum timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeltaRow {
    /// Commit timestamp; `None` for implicit base-table rows.
    pub ts: Option<Csn>,
    /// Signed multiplicity.
    pub count: i64,
    /// The attribute values (excluding count/timestamp).
    pub tuple: Tuple,
}

impl DeltaRow {
    /// A timestamped change record.
    pub fn change(ts: Csn, count: i64, tuple: Tuple) -> Self {
        DeltaRow {
            ts: Some(ts),
            count,
            tuple,
        }
    }

    /// An implicit base-table row: `count = +1`, `ts = None`.
    pub fn base(tuple: Tuple) -> Self {
        DeltaRow {
            ts: None,
            count: 1,
            tuple,
        }
    }

    /// Negation `-R` from paper §2: flip the sign of the count.
    pub fn negate(&self) -> DeltaRow {
        DeltaRow {
            ts: self.ts,
            count: -self.count,
            tuple: self.tuple.clone(),
        }
    }

    /// Combine two joined rows per paper §2: count is the **product** of
    /// counts, timestamp is the **minimum** of the (non-null) timestamps.
    pub fn join_combine(&self, other: &DeltaRow) -> DeltaRow {
        let ts = match (self.ts, other.ts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        DeltaRow {
            ts,
            count: self.count * other.count,
            tuple: self.tuple.concat(&other.tuple),
        }
    }
}

impl fmt::Display for DeltaRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ts {
            Some(ts) => write!(f, "[ts={} cnt={:+}] {}", ts, self.count, self.tuple),
            None => write!(f, "[ts=∅ cnt={:+}] {}", self.count, self.tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn join_combine_takes_min_timestamp_and_product_count() {
        let a = DeltaRow::change(5, -1, tup![1]);
        let b = DeltaRow::change(3, -1, tup![2]);
        let j = a.join_combine(&b);
        assert_eq!(j.ts, Some(3));
        assert_eq!(j.count, 1); // (-1) * (-1)
        assert_eq!(j.tuple, tup![1, 2]);
    }

    #[test]
    fn join_combine_ignores_null_base_timestamps() {
        let base = DeltaRow::base(tup!["r"]);
        let delta = DeltaRow::change(9, 2, tup!["s"]);
        assert_eq!(base.join_combine(&delta).ts, Some(9));
        assert_eq!(delta.join_combine(&base).ts, Some(9));
        assert_eq!(base.join_combine(&base.clone()).ts, None);
        assert_eq!(base.join_combine(&delta).count, 2);
    }

    #[test]
    fn negate_flips_count_only() {
        let r = DeltaRow::change(4, 3, tup![7]);
        let n = r.negate();
        assert_eq!(n.count, -3);
        assert_eq!(n.ts, Some(4));
        assert_eq!(n.tuple, r.tuple);
        assert_eq!(n.negate(), r);
    }
}
