//! Table schemas.

use crate::{Error, Result, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Str,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "BOOL",
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STR",
        };
        f.write_str(s)
    }
}

/// An ordered list of named, typed columns.
///
/// Schemas are shared (`Arc` internally) because every tuple-producing
/// operator carries one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[(String, ColumnType)]>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: impl IntoIterator<Item = (impl Into<String>, ColumnType)>) -> Self {
        Schema {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.into(), t))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Schema with zero columns.
    pub fn empty() -> Self {
        Schema::new(Vec::<(String, ColumnType)>::new())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column name at `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Column type at `idx`.
    pub fn column_type(&self, idx: usize) -> ColumnType {
        self.columns[idx].1
    }

    /// All columns as `(name, type)` pairs.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Concatenate two schemas (join output), prefixing clashes is the
    /// caller's concern; names are kept as-is.
    pub fn concat(&self, other: &Schema) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .chain(other.columns.iter())
                .map(|(n, t)| (n.clone(), *t)),
        )
    }

    /// Project onto the given column indexes.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|&c| (self.columns[c].0.clone(), self.columns[c].1)),
        )
    }

    /// Verify a tuple conforms: right arity, each value NULL or of the
    /// declared type.
    pub fn check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(Error::SchemaMismatch(format!(
                "arity {} != schema arity {}",
                tuple.arity(),
                self.arity()
            )));
        }
        for (i, v) in tuple.values().iter().enumerate() {
            if let Some(t) = v.column_type() {
                if t != self.column_type(i) {
                    return Err(Error::SchemaMismatch(format!(
                        "column {} ({}): value {} is {}, expected {}",
                        i,
                        self.name(i),
                        v,
                        t,
                        self.column_type(i)
                    )));
                }
            }
        }
        Ok(())
    }

    /// A default NULL tuple of this schema's arity (handy in tests).
    pub fn null_tuple(&self) -> Tuple {
        Tuple::new(std::iter::repeat_n(Value::Null, self.arity()))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, t)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn rs() -> Schema {
        Schema::new([("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    #[test]
    fn lookup_by_name() {
        let s = rs();
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
    }

    #[test]
    fn check_accepts_conforming_and_null() {
        let s = rs();
        assert!(s.check(&tup![1, "x"]).is_ok());
        assert!(s.check(&tup![1, Value::Null]).is_ok());
    }

    #[test]
    fn check_rejects_wrong_arity_and_type() {
        let s = rs();
        assert!(s.check(&tup![1]).is_err());
        assert!(s.check(&tup![1, 2]).is_err());
    }

    #[test]
    fn concat_and_project() {
        let s = rs().concat(&Schema::new([("c", ColumnType::Float)]));
        assert_eq!(s.arity(), 3);
        let p = s.project(&[2, 0]);
        assert_eq!(p.name(0), "c");
        assert_eq!(p.name(1), "a");
    }

    #[test]
    fn display() {
        assert_eq!(rs().to_string(), "(a INT, b STR)");
    }
}
