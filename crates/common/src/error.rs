//! The workspace-wide error type.

use crate::{TableId, TxnId};
use std::fmt;

/// Result alias used across all `rolljoin` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage engine, executor, and maintenance
/// algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tuple did not conform to a table's schema.
    SchemaMismatch(String),
    /// Unknown table id or name.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Lock could not be granted within the deadlock-avoidance timeout; the
    /// transaction should abort and retry.
    LockTimeout { txn: TxnId, table: TableId },
    /// Operation on a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// Attempt to delete a tuple that is not present.
    TupleNotFound { table: TableId, detail: String },
    /// The WAL contained bytes that do not decode to a record.
    WalCorrupt(String),
    /// A delta range was requested beyond the capture high-water mark, so
    /// its contents would not yet be complete.
    CaptureBehind {
        table: TableId,
        requested: crate::Csn,
        hwm: crate::Csn,
    },
    /// A delta range or time-travel target falls below the pruned portion
    /// of a table's delta history.
    HistoryPruned {
        table: TableId,
        requested: crate::Csn,
        pruned_through: crate::Csn,
    },
    /// Point-in-time refresh requested beyond the view-delta high-water
    /// mark (paper Fig. 3: the apply process may roll only up to the HWM).
    BeyondHighWaterMark {
        requested: crate::Csn,
        hwm: crate::Csn,
    },
    /// Roll target is before the view's current materialization time; the
    /// apply process only rolls forward.
    RollBackward {
        requested: crate::Csn,
        current: crate::Csn,
    },
    /// An invariant of the maintenance algorithms was violated (a bug).
    Internal(String),
    /// Invalid configuration or argument.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            Error::NoSuchTable(s) => write!(f, "no such table: {s}"),
            Error::TableExists(s) => write!(f, "table already exists: {s}"),
            Error::LockTimeout { txn, table } => {
                write!(f, "{txn} timed out waiting for lock on {table}")
            }
            Error::TxnNotActive(t) => write!(f, "{t} is not active"),
            Error::TupleNotFound { table, detail } => {
                write!(f, "tuple not found in {table}: {detail}")
            }
            Error::WalCorrupt(s) => write!(f, "WAL corrupt: {s}"),
            Error::CaptureBehind {
                table,
                requested,
                hwm,
            } => write!(
                f,
                "capture for {table} is at CSN {hwm}, behind requested {requested}"
            ),
            Error::HistoryPruned {
                table,
                requested,
                pruned_through,
            } => write!(
                f,
                "history of {table} below CSN {pruned_through} is pruned (requested {requested})"
            ),
            Error::BeyondHighWaterMark { requested, hwm } => write!(
                f,
                "roll target {requested} is beyond the view-delta high-water mark {hwm}"
            ),
            Error::RollBackward { requested, current } => write!(
                f,
                "roll target {requested} is before the materialization time {current}"
            ),
            Error::Internal(s) => write!(f, "internal invariant violated: {s}"),
            Error::Invalid(s) => write!(f, "invalid argument: {s}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::LockTimeout {
            txn: TxnId(3),
            table: TableId(1),
        };
        assert!(e.to_string().contains("txn3"));
        assert!(e.to_string().contains("T1"));
        let e = Error::BeyondHighWaterMark {
            requested: 10,
            hwm: 7,
        };
        assert!(e.to_string().contains("high-water"));
    }
}
